//! The NPF engine: the IOprovider driver of Figure 2.
//!
//! Owns the host [`MemoryManager`] and the [`Iommu`] and implements both
//! flows of Figure 2:
//!
//! * **NPF flow (1–4):** the NIC raises a fault; the driver queries the
//!   OS (allocating / swapping in pages), batch-updates the I/O page
//!   tables, and tells the NIC to resume. Batching and pre-faulting of
//!   whole scatter-gather ranges is the paper's third optimization; the
//!   firmware-bypass resume is the second; the per-channel concurrency
//!   limit (four outstanding faults) is the first.
//! * **Invalidation flow (a–d):** when the OS reclaims a page (an MMU
//!   notifier in Linux), the driver removes the IOMMU mapping — cheap
//!   when the page was never mapped, since ODP maps lazily.
//!
//! The engine is sans-IO: `begin_fault` computes *when* the fault will
//! be resolved and `complete_fault` applies the IOMMU update; the
//! testbed schedules the completion event.

use std::collections::HashMap;

use iommu::{DomainId, Iommu, TableMode};
use memsim::manager::{Invalidation, MemError, MemoryManager};
use memsim::types::{PageRange, SpaceId, VirtAddr, Vpn};
use memsim::FrameId;
use simcore::chaos::{invariant, ChaosEngine, NpfFate};
use simcore::journal;
use simcore::rng::SimRng;
use simcore::stats::{Counters, DurationHistogram};
use simcore::time::{SimDuration, SimTime};
use simcore::trace::{self, ArgValue};

use crate::backend::{trace_child_name, BackendKind, BackendSelect, FaultRequest, OdpBackend};
use crate::cost::{CostModel, NpfBreakdown};

/// Engine configuration: the paper's optimizations as toggles, for the
/// ablation benches.
///
/// Non-exhaustive: construct via [`NpfConfig::default`] and the
/// `with_*` setters so new knobs (arbitration, slot pools) are not
/// breaking changes.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct NpfConfig {
    /// Costs in force.
    pub cost: CostModel,
    /// Maximum concurrently-serviced faults per channel (the prototype
    /// uses four, §4). Extra faults queue behind outstanding ones.
    pub concurrent_faults_per_channel: u32,
    /// Resolve the NIC-provided *entire* scatter-gather range per fault
    /// event (`true`, the paper's design) or one page per event (ATS/PRI
    /// discipline — the ablation showing >220 ms cold 4 MB messages).
    pub batch_resolution: bool,
    /// Use the firmware-bypass fast resume.
    pub firmware_bypass: bool,
    /// Cross-channel arbitration over the engine-wide fault-servicing
    /// capacity. [`ArbiterPolicy::ChannelOnly`] reproduces the paper's
    /// prototype (per-channel limits only, no global pool).
    pub arbiter: ArbiterPolicy,
    /// Engine-wide concurrent-fault capacity shared by every channel.
    /// `0` means unbounded (per-channel limits still apply); ignored
    /// under [`ArbiterPolicy::ChannelOnly`].
    pub total_fault_slots: u32,
    /// IOTLB capacity. The prototype's 4096 entries thrash with
    /// hundreds of tenant domains, so scale-out scenarios raise it.
    pub iotlb_entries: usize,
    /// Which ODP backend services faults: the paper's firmware NPF
    /// path (default), the NP-RDMA-style driver-level software
    /// emulation, or the pinned-only baseline.
    pub backend: BackendSelect,
    /// Fold runs of 512 resident 4 KiB pages into 2 MiB leaves in the
    /// IOMMU page tables, with IOTLB superpage caching. Promotion and
    /// demotion maintenance is charged to the next fault's OS span.
    pub huge_pages: bool,
    /// Speculative NPF prefetch depth in pages (0 disables). When a
    /// per-channel stride detector trains on the fault stream, each
    /// demand fault issues one bounded speculative pre-fault for the
    /// predicted next window. Speculative faults never occupy arbiter
    /// or per-channel fault slots and draw no RNG.
    pub prefetch_depth: u32,
}

impl Default for NpfConfig {
    fn default() -> Self {
        NpfConfig {
            cost: CostModel::default(),
            concurrent_faults_per_channel: 4,
            batch_resolution: true,
            firmware_bypass: false,
            arbiter: ArbiterPolicy::ChannelOnly,
            total_fault_slots: 0,
            iotlb_entries: 4096,
            backend: BackendSelect::Firmware,
            huge_pages: false,
            prefetch_depth: 0,
        }
    }
}

impl NpfConfig {
    /// Replaces the cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the per-channel concurrent-fault limit.
    #[must_use]
    pub fn with_concurrent_faults_per_channel(mut self, limit: u32) -> Self {
        self.concurrent_faults_per_channel = limit;
        self
    }

    /// Toggles whole-scatter-gather-range fault resolution.
    #[must_use]
    pub fn with_batch_resolution(mut self, on: bool) -> Self {
        self.batch_resolution = on;
        self
    }

    /// Toggles the firmware-bypass fast resume.
    #[must_use]
    pub fn with_firmware_bypass(mut self, on: bool) -> Self {
        self.firmware_bypass = on;
        self
    }

    /// Selects the cross-channel arbitration policy.
    #[must_use]
    pub fn with_arbiter(mut self, policy: ArbiterPolicy) -> Self {
        self.arbiter = policy;
        self
    }

    /// Sets the engine-wide concurrent-fault capacity (0 = unbounded).
    #[must_use]
    pub fn with_total_fault_slots(mut self, slots: u32) -> Self {
        self.total_fault_slots = slots;
        self
    }

    /// Sets the IOTLB capacity.
    #[must_use]
    pub fn with_iotlb_entries(mut self, entries: usize) -> Self {
        self.iotlb_entries = entries;
        self
    }

    /// Selects the ODP backend.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendSelect) -> Self {
        self.backend = backend;
        self
    }

    /// Toggles 2 MiB huge-page folding in the IOMMU.
    #[must_use]
    pub fn with_huge_pages(mut self, on: bool) -> Self {
        self.huge_pages = on;
        self
    }

    /// Sets the speculative prefetch depth in pages (0 disables).
    #[must_use]
    pub fn with_prefetch_depth(mut self, pages: u32) -> Self {
        self.prefetch_depth = pages;
        self
    }
}

/// How channels contend for the engine-wide fault-servicing capacity
/// ([`NpfConfig::total_fault_slots`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArbiterPolicy {
    /// Legacy prototype behavior: each channel is limited to
    /// `concurrent_faults_per_channel`, channels never contend with one
    /// another, and the global pool is ignored.
    #[default]
    ChannelOnly,
    /// One global pool of slots granted in arrival order. Combined with
    /// the per-channel cap this round-robins between contending
    /// channels: no channel can occupy more than its per-channel limit,
    /// so waiting channels interleave — but a burst of many channels
    /// can still queue a late arrival behind everyone.
    RoundRobin,
    /// Global pool with per-channel occupancy capped at the channel's
    /// *registered* weight share, `max(1, total · w / Σw)`. Reservation
    /// semantics: a channel never occupies beyond its share even when
    /// the pool is otherwise idle, so every other channel's share stays
    /// available and no tenant's wait depends on another's backlog —
    /// starvation is bounded by the drain time of the channel's own
    /// share.
    WeightedFair,
}

impl ArbiterPolicy {
    /// Parses the CLI spellings used by the bench bins.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "channel" | "channel-only" | "none" => Ok(ArbiterPolicy::ChannelOnly),
            "rr" | "round-robin" => Ok(ArbiterPolicy::RoundRobin),
            "wfq" | "weighted-fair" => Ok(ArbiterPolicy::WeightedFair),
            other => Err(other.to_owned()),
        }
    }
}

/// Per-domain starvation accounting for the fault arbiter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArbiterStats {
    /// Faults admitted for this domain.
    pub grants: u64,
    /// Grants that had to wait on arbitration (beyond any per-channel
    /// queueing).
    pub queued: u64,
    /// Total arbitration wait across all grants.
    pub total_wait: SimDuration,
    /// Worst single arbitration wait.
    pub max_wait: SimDuration,
}

/// Cross-channel fault arbiter: models the engine-wide fault-servicing
/// capacity as `total_fault_slots` slot servers, each with a busy-until
/// time and a last owner.
///
/// Sans-IO like the engine: `admit` picks a slot and returns the
/// service start time; the caller commits the completion time so later
/// admissions see it. Under [`ArbiterPolicy::RoundRobin`] every fault
/// takes the earliest-free slot (arrival order); under
/// [`ArbiterPolicy::WeightedFair`] a domain already holding its weight
/// share of busy slots serializes on its own slots instead of spreading
/// further — heavy tenants stack depth-wise on their share and the
/// remaining slots stay available to light tenants.
#[derive(Debug)]
pub struct FaultArbiter {
    policy: ArbiterPolicy,
    total_slots: u32,
    /// Registered weight per domain, indexed by the dense domain id
    /// (0 = unregistered; registered weights are clamped to ≥ 1).
    weights: Vec<u32>,
    /// Σ of registered weights (kept incrementally; the share divisor).
    weight_sum: u64,
    /// Per-slot `(busy_until, last_owner)`.
    servers: Vec<(SimTime, Option<DomainId>)>,
    /// Slot chosen by the in-flight `admit`, consumed by `commit`.
    pending_slot: Option<usize>,
    /// Starvation accounting, indexed by the dense domain id. `None`
    /// until the domain's first admission (so reports only list domains
    /// that actually faulted).
    stats: Vec<Option<ArbiterStats>>,
}

impl FaultArbiter {
    fn new(policy: ArbiterPolicy, total_slots: u32) -> Self {
        let slots = if policy == ArbiterPolicy::ChannelOnly {
            0
        } else {
            total_slots as usize
        };
        FaultArbiter {
            policy,
            total_slots,
            weights: Vec::new(),
            weight_sum: 0,
            servers: vec![(SimTime::ZERO, None); slots],
            pending_slot: None,
            stats: Vec::new(),
        }
    }

    /// Grows a dense per-domain table to cover `domain`.
    fn ensure_len<T: Clone + Default>(v: &mut Vec<T>, domain: DomainId) -> &mut T {
        let idx = domain.0 as usize;
        if idx >= v.len() {
            v.resize(idx + 1, T::default());
        }
        &mut v[idx]
    }

    /// Whether the global pool is actually in force.
    fn active(&self) -> bool {
        self.policy != ArbiterPolicy::ChannelOnly && self.total_slots > 0
    }

    /// Registers a domain at the default weight 1 (no-op if already
    /// registered). Channels register at creation.
    pub fn register(&mut self, domain: DomainId) {
        let w = Self::ensure_len(&mut self.weights, domain);
        if *w == 0 {
            *w = 1;
            self.weight_sum += 1;
        }
    }

    /// Sets a domain's weight (clamped to ≥ 1). Only
    /// [`ArbiterPolicy::WeightedFair`] consults weights.
    pub fn set_weight(&mut self, domain: DomainId, weight: u32) {
        let w = weight.max(1);
        let slot = Self::ensure_len(&mut self.weights, domain);
        let old = *slot;
        *slot = w;
        self.weight_sum = self.weight_sum - u64::from(old) + u64::from(w);
    }

    /// Whether a domain has been registered (or explicitly weighted).
    fn registered(&self, domain: DomainId) -> bool {
        self.weights.get(domain.0 as usize).is_some_and(|&w| w != 0)
    }

    /// A domain's weight (default 1).
    #[must_use]
    pub fn weight(&self, domain: DomainId) -> u32 {
        match self.weights.get(domain.0 as usize) {
            Some(&w) if w != 0 => w,
            _ => 1,
        }
    }

    /// Starvation accounting for one domain.
    #[must_use]
    pub fn stats(&self, domain: DomainId) -> ArbiterStats {
        self.stats
            .get(domain.0 as usize)
            .copied()
            .flatten()
            .unwrap_or_default()
    }

    /// All per-domain stats, in domain order (deterministic). Only
    /// domains that admitted at least one fault appear.
    #[must_use]
    pub fn stats_sorted(&self) -> Vec<(DomainId, ArbiterStats)> {
        self.stats
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|s| (DomainId(u32::try_from(i).expect("dense id")), s)))
            .collect()
    }

    /// The worst arbitration wait seen by any domain.
    #[must_use]
    pub fn max_wait(&self) -> SimDuration {
        self.stats
            .iter()
            .flatten()
            .map(|s| s.max_wait)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The mutable stats cell for `domain`, created on first touch.
    fn stats_mut(&mut self, domain: DomainId) -> &mut ArbiterStats {
        Self::ensure_len(&mut self.stats, domain).get_or_insert_with(ArbiterStats::default)
    }

    /// Earliest time a fault for `domain` (already cleared for service
    /// at `chan_start` by the per-channel limiter) may start under the
    /// global policy. Records starvation stats and remembers the chosen
    /// slot for `commit`.
    fn admit(&mut self, _now: SimTime, domain: DomainId, chan_start: SimTime) -> SimTime {
        self.pending_slot = None;
        if !self.active() {
            self.stats_mut(domain).grants += 1;
            return chan_start;
        }
        // Earliest-free slot, lowest index on ties (deterministic).
        let global_best = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|&(i, &(t, _))| (t, i))
            .map(|(i, _)| i)
            .expect("total_slots > 0");
        let chosen = if self.policy == ArbiterPolicy::WeightedFair {
            // Reservation share over the registered weights: the cap
            // holds even when other channels are idle, so their shares
            // stay available to them (non-work-conserving by design).
            let w_d = u64::from(self.weight(domain));
            let w_sum = if self.registered(domain) {
                self.weight_sum
            } else {
                self.weight_sum + w_d
            };
            let share = usize::try_from((u64::from(self.total_slots) * w_d / w_sum.max(1)).max(1))
                .unwrap_or(usize::MAX);
            let mine: Vec<usize> = self
                .servers
                .iter()
                .enumerate()
                .filter(|&(_, &(t, d))| t > chan_start && d == Some(domain))
                .map(|(i, _)| i)
                .collect();
            if mine.len() >= share {
                // At the weight share: serialize on the soonest-free of
                // this domain's own slots rather than spreading wider.
                mine.into_iter()
                    .min_by_key(|&i| (self.servers[i].0, i))
                    .expect("nonempty")
            } else {
                global_best
            }
        } else {
            global_best
        };
        let start = chan_start.max(self.servers[chosen].0);
        self.pending_slot = Some(chosen);
        let wait = start.saturating_since(chan_start);
        let s = self.stats_mut(domain);
        s.grants += 1;
        if wait > SimDuration::ZERO {
            s.queued += 1;
        }
        s.total_wait += wait;
        if wait > s.max_wait {
            s.max_wait = wait;
        }
        start
    }

    /// Registers an admitted fault's completion time on its slot.
    fn commit(&mut self, domain: DomainId, ready_at: SimTime) {
        if let Some(i) = self.pending_slot.take() {
            self.servers[i] = (ready_at, Some(domain));
        }
    }
}

/// A fault in flight.
#[derive(Debug, Clone)]
pub struct FaultRecord {
    /// Correlation id.
    pub id: u64,
    /// Faulting channel's IOMMU domain.
    pub domain: DomainId,
    /// Owning address space.
    pub space: SpaceId,
    /// Pages being resolved by this event.
    pub range: PageRange,
    /// Write access?
    pub write: bool,
    /// When resolution completes and the NIC may resume.
    pub ready_at: SimTime,
    /// Cost breakdown (for Figure 3 / Table 4).
    pub breakdown: NpfBreakdown,
    /// Driver-initiated speculative pre-fault (no NIC event behind it).
    pub speculative: bool,
    /// Mappings to install at completion.
    mappings: Vec<(Vpn, FrameId)>,
}

/// Per-channel stride detector state for speculative prefetch.
#[derive(Debug, Clone, Copy, Default)]
struct StrideStream {
    /// Whether `last_start` holds a real observation yet.
    primed: bool,
    /// Start page of the previous demand fault on this channel.
    last_start: u64,
    /// Last observed start-to-start stride in pages.
    stride: i64,
    /// Consecutive faults that repeated `stride`.
    streak: u32,
}

/// Strides this large stop looking like a stream and are not prefetched.
const MAX_PREFETCH_STRIDE: i64 = 64;

/// The NPF engine.
#[derive(Debug)]
pub struct NpfEngine {
    config: NpfConfig,
    mm: MemoryManager,
    iommu: Iommu,
    /// Domain → bound space, indexed by the dense domain id.
    bindings: Vec<Option<SpaceId>>,
    /// In-flight faults, sorted by id (ids are monotone, so pushes keep
    /// the order). Lookups binary-search; overlap scans iterate in id
    /// order, which makes "lowest covering id" the first hit.
    pending: Vec<FaultRecord>,
    /// Completion times of outstanding faults, per dense domain id
    /// (concurrency limiting).
    outstanding: Vec<Vec<SimTime>>,
    arbiter: FaultArbiter,
    next_fault: u64,
    rng: SimRng,
    /// Invariant-note namespace: salts fault ids (and, via the
    /// allocator and IOMMU, frame/domain ids) so engines never alias
    /// inside one process-global checker.
    chaos_ns: u64,
    /// Fault injector for the NPF resolution path (None = chaos off).
    chaos: Option<ChaosEngine>,
    /// The ODP backend servicing faults, built from
    /// [`NpfConfig::backend`].
    backend: Box<dyn OdpBackend>,
    counters: Counters,
    fault_latency: DurationHistogram,
    fault_latency_by_tag: HashMap<&'static str, DurationHistogram>,
    last_breakdown: Option<NpfBreakdown>,
    /// Stride-detector state per dense domain id.
    streams: Vec<StrideStream>,
    /// Speculative faults issued since the last drain; the testbed
    /// schedules a completion event for each.
    spawned_prefetches: Vec<(u64, SimTime)>,
    /// Pages mapped by completed speculative faults and not yet touched
    /// by DMA, keyed `(domain, vpn)`. Interior mutability because hit
    /// detection happens inside the read-only `dma_ready` probe; only
    /// membership is ever queried, so iteration order cannot leak.
    prefetched: std::cell::RefCell<std::collections::HashSet<(u32, u64)>>,
    /// Hits observed by `dma_ready` awaiting transfer into `counters`.
    prefetch_hits_pending: std::cell::Cell<u64>,
    /// `Iommu::huge_stats` promotions seen and charged so far.
    seen_promotions: u64,
    /// `Iommu::huge_stats` demotions seen and charged so far.
    seen_demotions: u64,
    /// Page-table maintenance cost (folds/splits) accrued since the
    /// last fault, drained into the next fault's OS span.
    pending_huge_cost: SimDuration,
}

impl NpfEngine {
    /// Creates an engine over `mm` with an IOTLB of
    /// [`NpfConfig::iotlb_entries`] entries.
    #[must_use]
    pub fn new(config: NpfConfig, mut mm: MemoryManager, rng: SimRng) -> Self {
        // One shared note namespace per engine: the allocator's frame
        // ids and the IOMMU's domain/frame ids must agree with each
        // other but never alias another node's.
        let ns = invariant::fresh_namespace();
        mm.set_chaos_namespace(ns);
        let mut iommu = Iommu::new(config.iotlb_entries);
        iommu.set_chaos_namespace(ns);
        iommu.set_huge_pages(config.huge_pages);
        NpfEngine {
            config,
            mm,
            iommu,
            bindings: Vec::new(),
            pending: Vec::new(),
            outstanding: Vec::new(),
            arbiter: FaultArbiter::new(config.arbiter, config.total_fault_slots),
            next_fault: 0,
            rng,
            chaos_ns: ns,
            chaos: None,
            backend: config.backend.build(),
            counters: Counters::new(),
            fault_latency: DurationHistogram::new(),
            fault_latency_by_tag: HashMap::new(),
            last_breakdown: None,
            streams: Vec::new(),
            spawned_prefetches: Vec::new(),
            prefetched: std::cell::RefCell::new(std::collections::HashSet::new()),
            prefetch_hits_pending: std::cell::Cell::new(0),
            seen_promotions: 0,
            seen_demotions: 0,
            pending_huge_cost: SimDuration::ZERO,
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &NpfConfig {
        &self.config
    }

    /// The host memory manager.
    #[must_use]
    pub fn memory(&self) -> &MemoryManager {
        &self.mm
    }

    /// Mutable host memory access — for CPU-side workload touches. Use
    /// [`NpfEngine::touch`] instead when invalidation propagation is
    /// needed (it almost always is).
    pub fn memory_mut(&mut self) -> &mut MemoryManager {
        &mut self.mm
    }

    /// The IOMMU.
    #[must_use]
    pub fn iommu(&self) -> &Iommu {
        &self.iommu
    }

    /// Mutable IOMMU access.
    pub fn iommu_mut(&mut self) -> &mut Iommu {
        &mut self.iommu
    }

    /// Statistics: `npf_events`, `npf_pages`, `npf_major`,
    /// `invalidations`, `invalidations_mapped`.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// End-to-end fault latency histogram (Table 4).
    pub fn fault_latency(&mut self) -> &mut DurationHistogram {
        &mut self.fault_latency
    }

    /// Latency histogram for faults recorded under `tag` (e.g. one per
    /// message size).
    pub fn fault_latency_tagged(&mut self, tag: &'static str) -> &mut DurationHistogram {
        self.fault_latency_by_tag.entry(tag).or_default()
    }

    /// The breakdown of the most recent fault (Figure 3a plumbing).
    #[must_use]
    pub fn last_breakdown(&self) -> Option<NpfBreakdown> {
        self.last_breakdown
    }

    /// The cross-channel fault arbiter (starvation accounting).
    #[must_use]
    pub fn arbiter(&self) -> &FaultArbiter {
        &self.arbiter
    }

    /// Which ODP backend is servicing this engine's faults.
    #[must_use]
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Sets a channel's weight for [`ArbiterPolicy::WeightedFair`]
    /// arbitration (clamped to ≥ 1).
    pub fn set_channel_weight(&mut self, domain: DomainId, weight: u32) {
        self.arbiter.set_weight(domain, weight);
    }

    /// Creates an IOchannel: a page-fault-capable IOMMU domain bound to
    /// `space`.
    pub fn create_channel(&mut self, space: SpaceId) -> DomainId {
        let d = self.iommu.create_domain(TableMode::PageFaultCapable);
        self.bind(d, space);
        self.arbiter.register(d);
        d
    }

    /// Records a domain → space binding in the dense table.
    fn bind(&mut self, domain: DomainId, space: SpaceId) {
        let idx = domain.0 as usize;
        if idx >= self.bindings.len() {
            self.bindings.resize(idx + 1, None);
        }
        self.bindings[idx] = Some(space);
    }

    /// Creates a legacy (pinned-only) channel for baseline
    /// configurations.
    pub fn create_pinned_channel(&mut self, space: SpaceId) -> DomainId {
        let d = self.iommu.create_domain(TableMode::PinnedOnly);
        self.bind(d, space);
        self.arbiter.register(d);
        d
    }

    /// The space a domain is bound to.
    ///
    /// # Panics
    ///
    /// Panics for unbound domains (wiring bug).
    #[must_use]
    pub fn space_of(&self, domain: DomainId) -> SpaceId {
        self.bindings
            .get(domain.0 as usize)
            .copied()
            .flatten()
            .expect("unbound domain")
    }

    /// Whether a DMA of `len` bytes at `addr` would currently succeed.
    #[must_use]
    pub fn dma_ready(&self, domain: DomainId, addr: VirtAddr, len: u64, write: bool) -> bool {
        let range = PageRange::covering(addr, len.max(1));
        let ready = self.iommu.probe_range(domain, range, write);
        if ready {
            // Prefetch-accuracy accounting: a successful probe of a page
            // a speculative fault mapped is a hit (counted once — the
            // page leaves the set). Interior mutability because probes
            // are read-only to the simulation.
            let mut set = self.prefetched.borrow_mut();
            if !set.is_empty() {
                let mut hits = 0;
                for vpn in range.iter() {
                    if set.remove(&(domain.0, vpn.0)) {
                        hits += 1;
                    }
                }
                if hits > 0 {
                    self.prefetch_hits_pending
                        .set(self.prefetch_hits_pending.get() + hits);
                }
            }
        }
        ready
    }

    /// Moves hit counts observed by the read-only `dma_ready` probe into
    /// the counters (called on the mutating paths, so `counters()` is
    /// up to date whenever the simulation can observe it).
    fn sync_prefetch_hits(&mut self) {
        let hits = self.prefetch_hits_pending.take();
        if hits > 0 {
            self.counters.add("prefetch_hits", hits);
            if trace::enabled() {
                trace::metrics(|m| m.counter_add("npf.prefetch_hits", hits));
            }
        }
    }

    /// Pages a completed speculative fault mapped that DMA has since
    /// used (the prefetch-accuracy numerator).
    #[must_use]
    pub fn prefetch_hits(&self) -> u64 {
        self.counters.get("prefetch_hits") + self.prefetch_hits_pending.get()
    }

    /// Is any pending fault already covering `addr..addr+len`? Returns
    /// its id — the NIC's in-flight-fault bitmap (§4's second
    /// optimization) maps onto this: repeated faults on the same range
    /// do not raise new events.
    #[must_use]
    pub fn pending_fault_covering(
        &self,
        domain: DomainId,
        addr: VirtAddr,
        len: u64,
    ) -> Option<u64> {
        let r = PageRange::covering(addr, len.max(1));
        // `pending` is sorted by id, so the first overlap is the lowest
        // id — the earliest fault raised, which is the one the hardware
        // bitmap would have kept.
        self.pending
            .iter()
            .find(|f| f.domain == domain && f.range.overlaps(r))
            .map(|f| f.id)
    }

    /// A pending fault by id.
    #[must_use]
    pub fn pending_fault(&self, id: u64) -> Option<&FaultRecord> {
        self.pending
            .binary_search_by_key(&id, |f| f.id)
            .ok()
            .map(|i| &self.pending[i])
    }

    /// Number of unresolved faults.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Begins resolving an NPF for `addr..addr+len` in `domain`,
    /// optionally tagging the latency sample. Returns the fault record;
    /// the caller schedules `complete_fault(id)` at `record.ready_at`.
    ///
    /// The OS work (allocation, swap-in, reclaim) happens *now*; the
    /// IOMMU mappings are installed at completion. Invalidation costs of
    /// any reclaim are folded into the driver component.
    ///
    /// # Errors
    ///
    /// Propagates memory errors (OOM, swap full).
    pub fn begin_fault(
        &mut self,
        now: SimTime,
        domain: DomainId,
        addr: VirtAddr,
        len: u64,
        write: bool,
        tag: Option<&'static str>,
    ) -> Result<&FaultRecord, MemError> {
        self.sync_prefetch_hits();
        let space = self.space_of(domain);
        let full_range = PageRange::covering(addr, len.max(1));
        // ATS/PRI ablation: one page per fault event.
        let range = if self.config.batch_resolution {
            full_range
        } else {
            PageRange::new(full_range.start, 1)
        };

        // Resolve all non-resident pages and collect mappings for the
        // whole (possibly batched) range.
        let mut os_cost = SimDuration::ZERO;
        let mut tier_cost = SimDuration::ZERO;
        let mut mappings = Vec::new();
        let mut invalidation_cost = SimDuration::ZERO;
        let mut major = false;
        // One pass over the page tables for the whole scatter-gather
        // range (the VMA and each PTE leaf are resolved once), then the
        // per-page fault logic runs on the collected entries.
        let mut ptes = Vec::with_capacity(range.pages as usize);
        self.mm
            .space(space)?
            .for_each_pte(range, |vpn, pte| ptes.push((vpn, pte)))?;
        for (vpn, pte) in ptes {
            let frame = if let Some(f) = pte.frame() {
                if write && pte.cow {
                    // A DMA write to a COW-shared page must break the
                    // sharing first (otherwise the device would scribble
                    // on the other sharers' frame).
                    let access = self.mm.touch(space, vpn, true)?;
                    let broke = access.fault.expect("COW break reports a fault");
                    os_cost += broke.cost;
                    for inv in &broke.invalidations {
                        invalidation_cost += self.run_invalidation(*inv);
                    }
                    broke.frame
                } else {
                    f
                }
            } else {
                let res = self.mm.resolve_fault(space, vpn, write)?;
                // Only the I/O share: the driver's own software costs
                // (per-page translation, PT updates) come from the
                // calibrated cost model below.
                os_cost += res.io_cost;
                tier_cost += res.tier_cost;
                major |= res.kind == memsim::FaultKind::Major;
                if res.kind == memsim::FaultKind::Major {
                    self.counters.bump("npf_major");
                }
                if res.tier_cost > SimDuration::ZERO {
                    self.counters.bump("npf_tier_fetches");
                }
                // Reclaim may have revoked other pages: purge their
                // IOMMU mappings now (Figure 2 a–d).
                for inv in &res.invalidations {
                    invalidation_cost += self.run_invalidation(*inv);
                }
                res.frame
            };
            mappings.push((vpn, frame));
        }

        // The backend prices the fault: an ordered phase plan plus the
        // synthesized Figure 3 breakdown. The firmware backend draws
        // its hardware jitter from the engine RNG exactly where the
        // direct cost-model call used to, so firmware runs stay
        // byte-identical to the pre-refactor engine.
        // Page-table maintenance from huge-page folds/splits since the
        // last fault lands on this fault's OS span.
        let huge_cost = std::mem::replace(&mut self.pending_huge_cost, SimDuration::ZERO);
        let request = FaultRequest {
            // Charge for what the speculation will actually map, not the
            // nominal window (which may have been clamped above).
            pages: mappings.len() as u64,
            os_cost: os_cost + invalidation_cost + huge_cost,
            write,
            firmware_bypass: self.config.firmware_bypass,
            speculative: false,
            tier_cost,
        };
        let plan = self.backend.plan(
            &request,
            &self.config.cost,
            &mut self.rng,
            &mut self.counters,
        );
        let breakdown = plan.breakdown;

        // Concurrency limiting: if the channel already has the maximum
        // outstanding faults, this one starts after the earliest
        // completes.
        let chan_start = {
            let idx = domain.0 as usize;
            if idx >= self.outstanding.len() {
                self.outstanding.resize_with(idx + 1, Vec::new);
            }
            let slots = &mut self.outstanding[idx];
            slots.retain(|&t| t > now);
            if slots.len() >= self.config.concurrent_faults_per_channel as usize {
                let (idx, &earliest) = slots
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, t)| *t)
                    .expect("nonempty");
                slots.remove(idx);
                earliest
            } else {
                now
            }
        };
        // Cross-channel arbitration over the engine-wide slot pool.
        let arb_start = self.arbiter.admit(now, domain, chan_start);
        if arb_start > chan_start {
            self.counters.bump("arb_waits");
        }
        // Backend-side admission: the software emulation may hold the
        // fault here waiting for a bounce buffer (backpressure, never
        // a drop); firmware passes through.
        let start = self.backend.admit(arb_start, &mut self.counters);
        let ready_at = start + breakdown.total();
        // Chaos: NPF resolution delay / transient-failure / retry. The
        // perturbed time extends the outstanding slot too, so the
        // concurrency limiter sees the real completion.
        let ready_at = match self.chaos.as_mut().map(ChaosEngine::npf_fate) {
            None | Some(NpfFate::Normal) => ready_at,
            Some(NpfFate::Delay { extra }) => {
                self.counters.bump("npf_chaos_delays");
                ready_at + extra
            }
            Some(NpfFate::Transient {
                retries,
                retry_delay,
            }) => {
                self.counters.add("npf_chaos_retries", u64::from(retries));
                if self.backend.kind() == BackendKind::SoftEmu {
                    self.counters.add("softemu_retries", u64::from(retries));
                }
                ready_at + self.backend.transient_penalty(retries, retry_delay)
            }
        };
        self.outstanding[domain.0 as usize].push(ready_at);
        self.arbiter.commit(domain, ready_at);
        self.backend.commit(ready_at);

        let id = self.next_fault;
        self.next_fault += 1;
        self.counters.bump("npf_events");
        self.counters.add("npf_pages", range.pages);
        let latency = ready_at.saturating_since(now);
        self.fault_latency.record(latency);
        if let Some(t) = tag {
            self.fault_latency_by_tag
                .entry(t)
                .or_default()
                .record(latency);
        }
        self.last_breakdown = Some(breakdown);

        if trace::enabled() {
            // The fault lifecycle span, decomposed into the backend's
            // service plan: Figure 3's five components (i)–(v) under
            // firmware, validate/bounce/copy under the software
            // emulation. The children tile the parent exactly.
            let parent = trace::span(
                start,
                breakdown.total(),
                "npf",
                "npf",
                vec![
                    ("fault_id", ArgValue::U64(id)),
                    ("pages", ArgValue::U64(range.pages)),
                    ("write", ArgValue::Bool(write)),
                    ("major", ArgValue::Bool(major)),
                    (
                        "queued_us",
                        ArgValue::F64(start.saturating_since(now).as_micros_f64()),
                    ),
                ],
            );
            if let Some(parent) = parent {
                let mut at = start;
                for &(phase, d) in &plan.slices {
                    trace::child_span(at, d, "npf", trace_child_name(phase), parent, Vec::new());
                    at += d;
                }
            }
            trace::counter(
                now,
                "npf",
                "pending_faults",
                (self.pending.len() + 1) as f64,
            );
            trace::metrics(|m| {
                m.counter_add("npf.events", 1);
                m.counter_add("npf.pages", range.pages);
                m.duration_record("npf.latency", latency);
            });
        }

        if journal::enabled() {
            // The causal journal records the same decomposition as the
            // trace span above, plus the pre-admission waits, as typed
            // phases that tile `[now, ready_at]` exactly: their sum IS
            // the end-to-end latency, by construction.
            let chaos_extra = ready_at.saturating_since(start + breakdown.total());
            let key = (self.chaos_ns << 32) | id;
            let slices = &plan.slices;
            journal::with(|j| {
                j.fault_begun(key, u64::from(domain.0), range.pages, major, now, ready_at);
                j.phase(
                    key,
                    journal::Phase::QueueWait,
                    now,
                    chan_start.saturating_since(now),
                );
                j.phase(
                    key,
                    journal::Phase::ArbWait,
                    chan_start,
                    arb_start.saturating_since(chan_start),
                );
                // Bounce-pool backpressure (zero-width under firmware).
                j.phase(
                    key,
                    journal::Phase::BounceWait,
                    arb_start,
                    start.saturating_since(arb_start),
                );
                let mut at = start;
                for &(phase, d) in slices {
                    j.phase(key, phase, at, d);
                    at += d;
                }
                j.phase(key, journal::Phase::ChaosExtra, at, chaos_extra);
            });
        }

        let record = FaultRecord {
            id,
            domain,
            space,
            range,
            write,
            ready_at,
            breakdown,
            speculative: false,
            mappings,
        };
        invariant::note_fault_begun((self.chaos_ns << 32) | id, now);
        self.pending.push(record); // ids are monotone: stays sorted
        let demand_idx = self.pending.len() - 1;
        // The demand fault is fully recorded; train the stride detector
        // and (possibly) issue one speculative pre-fault for the
        // predicted next window. Prefetch ids are allocated after the
        // demand id, so `pending` stays sorted.
        self.maybe_prefetch(now, domain, range, write);
        Ok(&self.pending[demand_idx])
    }

    /// Trains the per-channel stride detector on a demand fault and
    /// issues a bounded speculative pre-fault once a stream is
    /// established. Speculative faults skip the per-channel slots, the
    /// arbiter, backend admission and chaos — they model driver-side
    /// pre-validation, not NIC events — and draw no RNG, so enabling
    /// prefetch never perturbs the demand path's draw sites.
    fn maybe_prefetch(&mut self, now: SimTime, domain: DomainId, range: PageRange, write: bool) {
        let depth = self.config.prefetch_depth;
        if depth == 0 {
            return;
        }
        let idx = domain.0 as usize;
        if idx >= self.streams.len() {
            self.streams.resize(idx + 1, StrideStream::default());
        }
        let s = &mut self.streams[idx];
        let stride = range.start.0 as i64 - s.last_start as i64;
        // A trained stream keeps its streak when the observed stride is
        // a multiple of the base stride: our own prefetches absorb
        // intermediate windows, so the next *demand* fault lands several
        // strides ahead. That gap is continuation, not a new pattern.
        let continuation = s.primed
            && stride > 0
            && stride <= MAX_PREFETCH_STRIDE
            && (stride == s.stride || (s.streak >= 2 && s.stride > 0 && stride % s.stride == 0));
        if continuation {
            s.streak += 1;
        } else {
            s.stride = stride;
            s.streak = 0;
        }
        s.last_start = range.start.0;
        s.primed = true;
        if s.streak < 2 {
            return;
        }
        // Predicted next window: one stride ahead, but never inside the
        // range the demand fault just resolved.
        let stride = s.stride as u64;
        let first = (range.start.0 + stride).max(range.start.0 + range.pages);
        let target = PageRange::new(Vpn(first), u64::from(depth));
        if self.iommu.probe_range(domain, target, write) {
            return; // already mapped (e.g. by an earlier prefetch)
        }
        if self
            .pending
            .iter()
            .any(|f| f.domain == domain && f.range.overlaps(target))
        {
            return; // a demand or speculative fault already covers it
        }
        if let Some((id, ready_at)) = self.issue_prefetch(now, domain, target, write) {
            self.spawned_prefetches.push((id, ready_at));
        }
    }

    /// Issues one speculative pre-fault over `range`. Returns `None`
    /// (with no fault raised) when the range is unmapped VMA space or
    /// memory cannot be found — speculation must never surface errors.
    fn issue_prefetch(
        &mut self,
        now: SimTime,
        domain: DomainId,
        range: PageRange,
        write: bool,
    ) -> Option<(u64, SimTime)> {
        let space = self.space_of(domain);
        let mut ptes = Vec::with_capacity(range.pages as usize);
        // The predicted window may run past the covering VMA (the end of
        // an rx ring, say): `for_each_pte` reports the covered prefix
        // before erroring, and speculation clamps to that prefix rather
        // than giving up — it must never surface errors.
        let _ = self
            .mm
            .space(space)
            .ok()?
            .for_each_pte(range, |vpn, pte| ptes.push((vpn, pte)));
        if ptes.is_empty() {
            return None;
        }
        let mut os_cost = SimDuration::ZERO;
        let mut tier_cost = SimDuration::ZERO;
        let mut invalidation_cost = SimDuration::ZERO;
        let mut mappings = Vec::new();
        for (vpn, pte) in ptes {
            let frame = if let Some(f) = pte.frame() {
                if write && pte.cow {
                    // Never break COW speculatively: leave the page to a
                    // demand fault that knows the write really happened.
                    continue;
                }
                f
            } else {
                let Ok(res) = self.mm.resolve_fault(space, vpn, write) else {
                    // Out of memory: stop speculating, keep what we have.
                    break;
                };
                os_cost += res.io_cost;
                tier_cost += res.tier_cost;
                for inv in &res.invalidations {
                    invalidation_cost += self.run_invalidation(*inv);
                }
                res.frame
            };
            mappings.push((vpn, frame));
        }
        if mappings.is_empty() {
            return None;
        }
        let huge_cost = std::mem::replace(&mut self.pending_huge_cost, SimDuration::ZERO);
        let request = FaultRequest {
            // Charge for what the speculation will actually map, not the
            // nominal window (which may have been clamped above).
            pages: mappings.len() as u64,
            os_cost: os_cost + invalidation_cost + huge_cost,
            write,
            firmware_bypass: self.config.firmware_bypass,
            speculative: true,
            tier_cost,
        };
        // Speculative plans draw no RNG (pinned by the backend tests),
        // so the demand path's draw sites are untouched.
        let plan = self.backend.plan(
            &request,
            &self.config.cost,
            &mut self.rng,
            &mut self.counters,
        );
        let breakdown = plan.breakdown;
        let ready_at = now + breakdown.total();
        let id = self.next_fault;
        self.next_fault += 1;
        self.counters.bump("prefetch_issued");
        self.counters.add("prefetch_pages", mappings.len() as u64);

        if trace::enabled() {
            let parent = trace::span(
                now,
                breakdown.total(),
                "npf",
                "npf_prefetch",
                vec![
                    ("fault_id", ArgValue::U64(id)),
                    ("pages", ArgValue::U64(range.pages)),
                    ("write", ArgValue::Bool(write)),
                ],
            );
            if let Some(parent) = parent {
                let mut at = now;
                for &(phase, d) in &plan.slices {
                    trace::child_span(at, d, "npf", trace_child_name(phase), parent, Vec::new());
                    at += d;
                }
            }
            trace::metrics(|m| m.counter_add("npf.prefetches", 1));
        }
        if journal::enabled() {
            // Same exact-tiling contract as demand faults: no waits and
            // no chaos, so the plan slices alone tile `[now, ready_at]`.
            let key = (self.chaos_ns << 32) | id;
            let slices = &plan.slices;
            journal::with(|j| {
                j.fault_begun(key, u64::from(domain.0), range.pages, false, now, ready_at);
                let mut at = now;
                for &(phase, d) in slices {
                    j.phase(key, phase, at, d);
                    at += d;
                }
            });
        }
        let record = FaultRecord {
            id,
            domain,
            space,
            range,
            write,
            ready_at,
            breakdown,
            speculative: true,
            mappings,
        };
        invariant::note_fault_begun((self.chaos_ns << 32) | id, now);
        self.pending.push(record);
        Some((id, ready_at))
    }

    /// Drains the speculative faults issued since the last call; the
    /// testbed schedules `complete_fault(id)` at each `ready_at`.
    pub fn drain_spawned_prefetches(&mut self) -> Vec<(u64, SimTime)> {
        std::mem::take(&mut self.spawned_prefetches)
    }

    /// Completes a fault: installs the IOMMU mappings so subsequent DMA
    /// succeeds. Call at `ready_at`.
    ///
    /// # Panics
    ///
    /// Panics for unknown fault ids.
    pub fn complete_fault(&mut self, id: u64) -> FaultRecord {
        self.sync_prefetch_hits();
        let idx = self
            .pending
            .binary_search_by_key(&id, |f| f.id)
            .expect("unknown fault id");
        let record = self.pending.remove(idx);
        invariant::note_fault_resolved((self.chaos_ns << 32) | id);
        journal::with(|j| j.fault_resolved((self.chaos_ns << 32) | id));
        if trace::enabled() {
            trace::instant(
                record.ready_at,
                "npf",
                "fault_complete",
                vec![
                    ("fault_id", ArgValue::U64(id)),
                    ("pages", ArgValue::U64(record.range.pages)),
                ],
            );
            trace::counter(
                record.ready_at,
                "npf",
                "pending_faults",
                self.pending.len() as f64,
            );
        }
        // Pages may have been reclaimed again between fault start and
        // completion under extreme pressure; map only what is still
        // resident (the next access faults again, which is correct).
        let still_resident: Vec<(Vpn, FrameId)> = match self.mm.space(record.space) {
            Ok(s) => record
                .mappings
                .iter()
                .copied()
                .filter(|&(vpn, frame)| s.frame_of(vpn) == Some(frame))
                .collect(),
            Err(_) => Vec::new(),
        };
        if record.speculative {
            // No NIC event and no bounce buffer behind a speculative
            // fault: skip backend completion accounting, and remember
            // the mapped pages for prefetch-accuracy hit detection.
            let mut set = self.prefetched.borrow_mut();
            for &(vpn, _) in &still_resident {
                set.insert((record.domain.0, vpn.0));
            }
        } else {
            // Backend completion accounting: the software emulation
            // copies bounced data out to the still-resident pages and
            // skips the evicted ones (never a stale-frame copy).
            self.backend.on_complete(
                still_resident.len() as u64,
                record.range.pages,
                &mut self.counters,
            );
        }
        self.iommu.map_batch(record.domain, &still_resident, true);
        self.absorb_huge_deltas();
        record
    }

    /// Folds the IOMMU's promotion/demotion deltas since the last check
    /// into counters and the pending maintenance cost (drained into the
    /// next fault's OS span — deterministic, no RNG).
    fn absorb_huge_deltas(&mut self) {
        if !self.config.huge_pages {
            return;
        }
        let (promotions, demotions) = self.iommu.huge_stats();
        if promotions > self.seen_promotions {
            let delta = promotions - self.seen_promotions;
            self.seen_promotions = promotions;
            self.counters.add("huge_promotions", delta);
            self.pending_huge_cost += self.config.cost.huge_promote() * delta;
            if trace::enabled() {
                trace::metrics(|m| m.counter_add("npf.huge_promotions", delta));
            }
        }
        if demotions > self.seen_demotions {
            let delta = demotions - self.seen_demotions;
            self.seen_demotions = demotions;
            self.counters.add("huge_demotions", delta);
            self.pending_huge_cost += self.config.cost.huge_demote() * delta;
            if trace::enabled() {
                trace::metrics(|m| m.counter_add("npf.huge_demotions", delta));
            }
        }
    }

    /// Arms the NPF-resolution fault injector. The engine draws one
    /// [`NpfFate`] per fault from the injector's dedicated stream.
    pub fn set_chaos(&mut self, chaos: ChaosEngine) {
        self.chaos = Some(chaos);
    }

    /// The engine's fault injector, when armed.
    #[must_use]
    pub fn chaos(&self) -> Option<&ChaosEngine> {
        self.chaos.as_ref()
    }

    /// Chaos memory pressure: forcibly reclaims up to `pages` pages and
    /// runs the Figure 2 invalidation flow for every revoked mapping,
    /// exactly as organic reclaim would. Returns pages invalidated.
    pub fn chaos_evict(&mut self, pages: u64) -> u64 {
        let invalidations = self.mm.reclaim(pages);
        let n = invalidations.len() as u64;
        for inv in invalidations {
            self.run_invalidation(inv);
        }
        n
    }

    /// Chaos IOTLB shootdown: flushes every cached translation, racing
    /// any in-flight resolution. Returns entries flushed.
    pub fn chaos_shootdown(&mut self) -> u64 {
        self.iommu.shootdown_all()
    }

    /// Runs the Figure 2 invalidation flow for one revoked page,
    /// returning its cost.
    fn run_invalidation(&mut self, inv: Invalidation) -> SimDuration {
        self.counters.bump("invalidations");
        // Find the domains bound to the space that lost the page. The
        // dense table iterates in domain-id order, so the cost
        // attribution order is deterministic by construction.
        let domains: Vec<DomainId> = self
            .bindings
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == Some(inv.space))
            .map(|(d, _)| DomainId(u32::try_from(d).expect("dense id")))
            .collect();
        let mut cost = SimDuration::ZERO;
        for d in domains {
            let was_mapped = self.iommu.invalidate(d, inv.vpn);
            if was_mapped {
                self.counters.bump("invalidations_mapped");
            }
            // A revoked page can no longer be a prefetch hit.
            self.prefetched.get_mut().remove(&(d.0, inv.vpn.0));
            cost += self.config.cost.invalidation(1, was_mapped).total();
            if trace::enabled() {
                // No `now` in scope (invalidations arrive from MMU
                // notifier callbacks); stamp with the recorder clock.
                trace::instant_now(
                    "npf",
                    "invalidation",
                    vec![
                        ("vpn", ArgValue::U64(inv.vpn.0)),
                        ("was_mapped", ArgValue::Bool(was_mapped)),
                    ],
                );
                trace::metrics(|m| m.counter_add("npf.invalidations", 1));
            }
        }
        // Partial unmaps may have split folded leaves; price them.
        self.absorb_huge_deltas();
        cost
    }

    /// Forks an IOuser's address space with COW sharing and runs the
    /// resulting invalidation storm against the IOMMU (§5 names forking
    /// as a cause of cold sequences: every formerly-mapped page must be
    /// re-faulted before the NIC can DMA again). Returns the child space
    /// and the total invalidation cost.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn fork_iouser(&mut self, parent: SpaceId) -> Result<(SpaceId, SimDuration), MemError> {
        let (child, invalidations) = self.mm.fork_space(parent)?;
        let mut cost = SimDuration::ZERO;
        for inv in invalidations {
            cost += self.run_invalidation(inv);
        }
        Ok((child, cost))
    }

    /// CPU-side touch with invalidation propagation: workloads use this
    /// instead of raw `MemoryManager::touch`.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn touch(
        &mut self,
        space: SpaceId,
        vpn: Vpn,
        write: bool,
    ) -> Result<SimDuration, MemError> {
        let access = self.mm.touch(space, vpn, write)?;
        let mut cost = access.cost();
        for inv in access.invalidations().to_vec() {
            cost += self.run_invalidation(inv);
        }
        Ok(cost)
    }

    /// Touches a whole byte range (see [`NpfEngine::touch`]).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn touch_range(
        &mut self,
        space: SpaceId,
        addr: VirtAddr,
        len: u64,
        write: bool,
    ) -> Result<SimDuration, MemError> {
        let (cpu, io) = self.touch_range_split(space, addr, len, write)?;
        Ok(cpu + io)
    }

    /// Like [`NpfEngine::touch_range`] but splits the cost into a CPU
    /// share and a blocking-I/O share (major-fault disk waits). Hosts
    /// with a CPU model charge only the CPU share to a core; the I/O
    /// share is wall-clock sleep.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn touch_range_split(
        &mut self,
        space: SpaceId,
        addr: VirtAddr,
        len: u64,
        write: bool,
    ) -> Result<(SimDuration, SimDuration), MemError> {
        let mut cpu = SimDuration::ZERO;
        let mut io = SimDuration::ZERO;
        for vpn in PageRange::covering(addr, len.max(1)).iter() {
            let access = self.mm.touch(space, vpn, write)?;
            let total = access.cost();
            let fault_io = access
                .fault
                .as_ref()
                .map_or(SimDuration::ZERO, |res| res.io_cost);
            cpu += total.saturating_sub(fault_io);
            io += fault_io;
            for inv in access.invalidations().to_vec() {
                cpu += self.run_invalidation(inv);
            }
        }
        Ok((cpu, io))
    }

    /// Pins a range and maps it in the IOMMU (registration-time work of
    /// the pinning strategies). Returns the total cost.
    ///
    /// # Errors
    ///
    /// Propagates memory errors, including `RLIMIT_MEMLOCK`.
    pub fn pin_and_map(
        &mut self,
        domain: DomainId,
        range: PageRange,
    ) -> Result<SimDuration, MemError> {
        let space = self.space_of(domain);
        let outcome = self.mm.pin_range(space, range)?;
        let mut cost = outcome.cost;
        for inv in outcome.invalidations {
            cost += self.run_invalidation(inv);
        }
        let mut mappings = Vec::with_capacity(range.pages as usize);
        {
            let s = self.mm.space(space)?;
            for vpn in range.iter() {
                let frame = s.frame_of(vpn).expect("pinned page is resident");
                mappings.push((vpn, frame));
            }
        }
        self.iommu.map_batch(domain, &mappings, true);
        self.absorb_huge_deltas();
        cost += self.config.cost.register_pinned(range.pages);
        Ok(cost)
    }

    /// Unpins and unmaps a range, returning the cost.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn unpin_and_unmap(
        &mut self,
        domain: DomainId,
        range: PageRange,
    ) -> Result<SimDuration, MemError> {
        let space = self.space_of(domain);
        self.mm.unpin_range(space, range)?;
        self.iommu.invalidate_range(domain, range);
        self.absorb_huge_deltas();
        Ok(self.config.cost.deregister_pinned(range.pages))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::manager::MemConfig;
    use memsim::space::Backing;
    use simcore::units::ByteSize;

    fn engine() -> (NpfEngine, SpaceId, DomainId, PageRange) {
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(16),
            ..MemConfig::default()
        });
        let mut e = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(1));
        let space = e.memory_mut().create_space();
        let range = e
            .memory_mut()
            .mmap(space, ByteSize::mib(4), Backing::Anonymous)
            .expect("mmap");
        let domain = e.create_channel(space);
        (e, space, domain, range)
    }

    #[test]
    fn fault_lifecycle_installs_mappings() {
        let (mut e, _s, d, r) = engine();
        let addr = r.start.base();
        assert!(!e.dma_ready(d, addr, 4096, true));
        let rec = e
            .begin_fault(SimTime::ZERO, d, addr, 4096, true, None)
            .expect("fault")
            .clone();
        assert!(rec.ready_at > SimTime::ZERO);
        assert!(
            !e.dma_ready(d, addr, 4096, true),
            "mapping invisible until completion"
        );
        e.complete_fault(rec.id);
        assert!(e.dma_ready(d, addr, 4096, true));
        assert_eq!(e.counters().get("npf_events"), 1);
    }

    #[test]
    fn minor_4kb_fault_latency_matches_paper() {
        let (mut e, _s, d, r) = engine();
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 4096, true, None)
            .expect("fault")
            .clone();
        let us = rec.ready_at.saturating_since(SimTime::ZERO).as_micros_f64();
        assert!((150.0..350.0).contains(&us), "got {us:.1} us");
    }

    #[test]
    fn batched_fault_resolves_whole_range() {
        let (mut e, _s, d, r) = engine();
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 4 << 20, true, None)
            .expect("fault")
            .clone();
        assert_eq!(rec.range.pages, 1024);
        e.complete_fault(rec.id);
        assert!(e.dma_ready(d, r.start.base(), 4 << 20, true));
        assert_eq!(e.counters().get("npf_pages"), 1024);
    }

    #[test]
    fn unbatched_mode_resolves_one_page() {
        let mm = MemoryManager::new(MemConfig::default());
        let mut e = NpfEngine::new(
            NpfConfig {
                batch_resolution: false,
                ..NpfConfig::default()
            },
            mm,
            SimRng::new(1),
        );
        let s = e.memory_mut().create_space();
        let r = e
            .memory_mut()
            .mmap(s, ByteSize::mib(4), Backing::Anonymous)
            .expect("mmap");
        let d = e.create_channel(s);
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 4 << 20, true, None)
            .expect("fault")
            .clone();
        assert_eq!(rec.range.pages, 1);
        e.complete_fault(rec.id);
        assert!(!e.dma_ready(d, r.start.base(), 4 << 20, true));
        assert!(e.dma_ready(d, r.start.base(), 4096, true));
    }

    #[test]
    fn concurrency_limit_queues_fifth_fault() {
        let (mut e, _s, d, r) = engine();
        let mut readies = Vec::new();
        for i in 0..5 {
            let rec = e
                .begin_fault(
                    SimTime::ZERO,
                    d,
                    Vpn(r.start.0 + i).base(),
                    4096,
                    true,
                    None,
                )
                .expect("fault")
                .clone();
            readies.push(rec.ready_at);
        }
        let min_first_four = readies[..4].iter().min().copied().expect("four");
        assert!(
            readies[4] >= min_first_four + SimDuration::from_micros(150),
            "fifth fault must wait for a slot: {readies:?}"
        );
    }

    fn contended_engine(
        policy: ArbiterPolicy,
        total_slots: u32,
    ) -> (NpfEngine, Vec<(SpaceId, DomainId, PageRange)>) {
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(64),
            ..MemConfig::default()
        });
        let cfg = NpfConfig::default()
            .with_arbiter(policy)
            .with_total_fault_slots(total_slots);
        let mut e = NpfEngine::new(cfg, mm, SimRng::new(1));
        let mut tenants = Vec::new();
        for _ in 0..4 {
            let space = e.memory_mut().create_space();
            let range = e
                .memory_mut()
                .mmap(space, ByteSize::mib(4), Backing::Anonymous)
                .expect("mmap");
            let domain = e.create_channel(space);
            tenants.push((space, domain, range));
        }
        (e, tenants)
    }

    #[test]
    fn round_robin_pool_caps_global_concurrency() {
        let (mut e, tenants) = contended_engine(ArbiterPolicy::RoundRobin, 4);
        // Four channels × 3 faults each at t=0: only 4 may run at once,
        // so later admissions wait even though no channel exceeds its
        // own per-channel limit of 4.
        let mut readies = Vec::new();
        for i in 0..3u64 {
            for &(_, d, r) in &tenants {
                let rec = e
                    .begin_fault(
                        SimTime::ZERO,
                        d,
                        Vpn(r.start.0 + i).base(),
                        4096,
                        true,
                        None,
                    )
                    .expect("fault")
                    .clone();
                readies.push(rec.ready_at);
            }
        }
        let first_wave = readies[..4].iter().max().copied().expect("four");
        assert!(
            readies[11] > first_wave,
            "12th fault must queue behind the pool: {readies:?}"
        );
        assert!(e.counters().get("arb_waits") >= 8);
        let total_queued: u64 = tenants
            .iter()
            .map(|&(_, d, _)| e.arbiter().stats(d).queued)
            .sum();
        assert!(total_queued >= 8, "got {total_queued}");
    }

    /// Sustained mixed load: a heavy tenant (weight 1) oversubscribing
    /// the pool with 12 faults per 300 us round against a light tenant
    /// (weight 3) issuing one. The heavy arrival rate exceeds the
    /// pool's drain rate, so its backlog grows round over round.
    /// Returns the light tenant's worst arbitration wait.
    fn light_tenant_wait(policy: ArbiterPolicy) -> SimDuration {
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(64),
            ..MemConfig::default()
        });
        let cfg = NpfConfig::default()
            .with_arbiter(policy)
            .with_total_fault_slots(8)
            .with_concurrent_faults_per_channel(16);
        let mut e = NpfEngine::new(cfg, mm, SimRng::new(1));
        let mk = |e: &mut NpfEngine| {
            let space = e.memory_mut().create_space();
            let range = e
                .memory_mut()
                .mmap(space, ByteSize::mib(4), Backing::Anonymous)
                .expect("mmap");
            (e.create_channel(space), range)
        };
        let (heavy, heavy_r) = mk(&mut e);
        let (light, light_r) = mk(&mut e);
        e.set_channel_weight(heavy, 1);
        e.set_channel_weight(light, 3);
        for round in 0..6u64 {
            let now = SimTime::ZERO + SimDuration::from_micros(300 * round);
            for i in 0..12u64 {
                e.begin_fault(
                    now,
                    heavy,
                    Vpn(heavy_r.start.0 + round * 12 + i).base(),
                    4096,
                    true,
                    None,
                )
                .expect("fault");
            }
            e.begin_fault(
                now,
                light,
                Vpn(light_r.start.0 + round).base(),
                4096,
                true,
                None,
            )
            .expect("fault");
        }
        e.arbiter().stats(light).max_wait
    }

    #[test]
    fn weighted_fair_bounds_light_tenant_wait() {
        let wf = light_tenant_wait(ArbiterPolicy::WeightedFair);
        let rr = light_tenant_wait(ArbiterPolicy::RoundRobin);
        // Under round-robin the light tenant queues in FIFO behind the
        // heavy tenant's growing backlog; weighted-fair caps the heavy
        // tenant at its share so the light tenant starts within about
        // one service generation (a minor 4 KB fault is 150-350 us).
        assert!(
            wf < rr,
            "weighted-fair must beat round-robin for the light tenant: {wf} vs {rr}"
        );
        assert!(
            wf <= SimDuration::from_micros(400),
            "light tenant starved under weighted-fair: {wf}"
        );
    }

    #[test]
    fn channel_only_ignores_pool() {
        let (mut e, tenants) = contended_engine(ArbiterPolicy::ChannelOnly, 1);
        // Pool of 1 would serialize everything — but ChannelOnly must
        // ignore it: two channels' first faults both start at t=0.
        let (_, d0, r0) = tenants[0];
        let (_, d1, r1) = tenants[1];
        let a = e
            .begin_fault(SimTime::ZERO, d0, r0.start.base(), 4096, true, None)
            .expect("fault")
            .clone();
        let b = e
            .begin_fault(SimTime::ZERO, d1, r1.start.base(), 4096, true, None)
            .expect("fault")
            .clone();
        assert!(a.ready_at < SimTime::from_millis(1));
        assert!(b.ready_at < SimTime::from_millis(1));
        assert_eq!(e.counters().get("arb_waits"), 0);
        assert_eq!(e.arbiter().max_wait(), SimDuration::ZERO);
    }

    #[test]
    fn pending_fault_covering_suppresses_duplicates() {
        let (mut e, _s, d, r) = engine();
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 8192, true, None)
            .expect("fault")
            .clone();
        assert_eq!(
            e.pending_fault_covering(d, r.start.base(), 4096),
            Some(rec.id)
        );
        assert_eq!(
            e.pending_fault_covering(d, Vpn(r.start.0 + 100).base(), 1),
            None
        );
        e.complete_fault(rec.id);
        assert_eq!(e.pending_fault_covering(d, r.start.base(), 4096), None);
    }

    #[test]
    fn reclaim_invalidates_iommu_mappings() {
        // Tiny memory: faulting in new pages evicts old ones, whose
        // IOMMU mappings must disappear.
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::kib(32), // 8 frames
            ..MemConfig::default()
        });
        let mut e = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(1));
        let s = e.memory_mut().create_space();
        let r = e
            .memory_mut()
            .mmap(s, ByteSize::kib(64), Backing::Anonymous)
            .expect("mmap");
        let d = e.create_channel(s);
        // Map the first page via a fault.
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 4096, true, None)
            .expect("fault")
            .clone();
        e.complete_fault(rec.id);
        assert!(e.dma_ready(d, r.start.base(), 1, true));
        // Touch every other page from the CPU until the first is
        // evicted.
        for vpn in r.iter().skip(1) {
            e.touch(s, vpn, true).expect("touch");
        }
        assert!(
            !e.dma_ready(d, r.start.base(), 1, true),
            "stale IOMMU mapping survived reclaim"
        );
        assert!(e.counters().get("invalidations_mapped") >= 1);
    }

    #[test]
    fn pin_and_map_makes_dma_ready() {
        let (mut e, _s, d, r) = engine();
        let sub = PageRange::new(r.start, 16);
        let cost = e.pin_and_map(d, sub).expect("pin");
        assert!(cost > SimDuration::ZERO);
        assert!(e.dma_ready(d, r.start.base(), 16 * 4096, true));
        let uncost = e.unpin_and_unmap(d, sub).expect("unpin");
        assert!(uncost > SimDuration::ZERO);
        assert!(!e.dma_ready(d, r.start.base(), 1, true));
    }

    #[test]
    fn major_faults_cost_disk_time() {
        // Force swapping with tiny memory, then fault a swapped page
        // back via the NPF path.
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::kib(16),
            ..MemConfig::default()
        });
        let mut e = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(1));
        let s = e.memory_mut().create_space();
        let r = e
            .memory_mut()
            .mmap(s, ByteSize::kib(64), Backing::Anonymous)
            .expect("mmap");
        let d = e.create_channel(s);
        for vpn in r.iter() {
            e.touch(s, vpn, true).expect("touch");
        }
        // The first page was swapped out; an NPF on it is major.
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 1, true, None)
            .expect("fault")
            .clone();
        assert!(
            rec.breakdown.total() > SimDuration::from_millis(4),
            "major fault must include disk latency, got {}",
            rec.breakdown.total()
        );
        assert_eq!(e.counters().get("npf_major"), 1);
    }

    fn softemu_engine(
        cfg: crate::backend::SoftEmuConfig,
    ) -> (NpfEngine, SpaceId, DomainId, PageRange) {
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(16),
            ..MemConfig::default()
        });
        let mut e = NpfEngine::new(
            NpfConfig::default().with_backend(BackendSelect::SoftEmu(cfg)),
            mm,
            SimRng::new(1),
        );
        let space = e.memory_mut().create_space();
        let range = e
            .memory_mut()
            .mmap(space, ByteSize::mib(4), Backing::Anonymous)
            .expect("mmap");
        let domain = e.create_channel(space);
        (e, space, domain, range)
    }

    #[test]
    fn softemu_fault_has_no_firmware_events_and_is_faster() {
        let (mut e, _s, d, r) = softemu_engine(crate::backend::SoftEmuConfig::default());
        assert_eq!(e.backend_kind(), BackendKind::SoftEmu);
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 4096, true, None)
            .expect("fault")
            .clone();
        // No firmware: no trigger interrupt, no resume round trip —
        // the software path is far faster than the ~220 us NPF.
        assert_eq!(rec.breakdown.trigger_interrupt, SimDuration::ZERO);
        assert!(
            rec.ready_at < SimTime::from_micros(150),
            "software emulation beats firmware NPF: {}",
            rec.ready_at
        );
        e.complete_fault(rec.id);
        assert!(e.dma_ready(d, r.start.base(), 4096, true));
        assert_eq!(e.counters().get("npf_events"), 1);
        assert_eq!(e.counters().get("softemu_bounces"), 1);
        assert_eq!(e.counters().get("fw_npf_events"), 0);
        assert_eq!(e.counters().get("softemu_copyouts"), 1);
    }

    #[test]
    fn firmware_fault_has_no_softemu_counters() {
        let (mut e, _s, d, r) = engine();
        assert_eq!(e.backend_kind(), BackendKind::Firmware);
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 4096, true, None)
            .expect("fault")
            .clone();
        e.complete_fault(rec.id);
        assert_eq!(e.counters().get("fw_npf_events"), 1);
        assert_eq!(e.counters().get("softemu_bounces"), 0);
        assert_eq!(e.counters().get("softemu_copyouts"), 0);
    }

    #[test]
    fn softemu_pool_exhaustion_backpressures_without_drops() {
        let cfg = crate::backend::SoftEmuConfig::default().with_bounce_buffers(1);
        let (mut e, _s, d, r) = softemu_engine(cfg);
        let mut readies = Vec::new();
        for i in 0..3u64 {
            let rec = e
                .begin_fault(
                    SimTime::ZERO,
                    d,
                    Vpn(r.start.0 + i).base(),
                    4096,
                    true,
                    None,
                )
                .expect("fault")
                .clone();
            readies.push((rec.id, rec.ready_at));
        }
        // Every fault is admitted (no drops), serialized on the single
        // bounce buffer.
        assert_eq!(e.counters().get("npf_events"), 3);
        assert!(readies[0].1 < readies[1].1 && readies[1].1 < readies[2].1);
        assert!(e.counters().get("softemu_pool_waits") >= 2);
        for (id, _) in readies {
            e.complete_fault(id);
        }
        assert_eq!(e.counters().get("softemu_copyouts"), 3);
    }

    #[test]
    fn softemu_copyout_skips_pages_evicted_mid_bounce() {
        // Tiny memory: by the time the bounced fault completes, its
        // target page has been reclaimed — the copy-out must skip it
        // rather than scribble on a reused frame.
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::kib(32), // 8 frames
            ..MemConfig::default()
        });
        let mut e = NpfEngine::new(
            NpfConfig::default().with_backend(BackendSelect::SoftEmu(
                crate::backend::SoftEmuConfig::default(),
            )),
            mm,
            SimRng::new(1),
        );
        let s = e.memory_mut().create_space();
        let r = e
            .memory_mut()
            .mmap(s, ByteSize::kib(64), Backing::Anonymous)
            .expect("mmap");
        let d = e.create_channel(s);
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 4096, true, None)
            .expect("fault")
            .clone();
        // Evict the target page while the bounce is in flight.
        for vpn in r.iter().skip(1) {
            e.touch(s, vpn, true).expect("touch");
        }
        e.complete_fault(rec.id);
        assert_eq!(e.counters().get("softemu_copy_skipped"), 1);
        assert_eq!(e.counters().get("softemu_copyouts"), 0);
        assert!(
            !e.dma_ready(d, r.start.base(), 1, true),
            "no stale mapping may be installed for the evicted page"
        );
    }

    #[test]
    fn pinned_backend_counts_unexpected_faults() {
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(16),
            ..MemConfig::default()
        });
        let mut e = NpfEngine::new(
            NpfConfig::default().with_backend(BackendSelect::Pinned),
            mm,
            SimRng::new(1),
        );
        let s = e.memory_mut().create_space();
        let r = e
            .memory_mut()
            .mmap(s, ByteSize::mib(1), Backing::Anonymous)
            .expect("mmap");
        let d = e.create_channel(s);
        // A properly pinned scenario never faults...
        e.pin_and_map(d, PageRange::new(r.start, 16)).expect("pin");
        assert!(e.dma_ready(d, r.start.base(), 16 * 4096, true));
        assert_eq!(e.counters().get("pinned_unexpected_faults"), 0);
        // ...and a cold access it forgot to pin is visible.
        let rec = e
            .begin_fault(
                SimTime::ZERO,
                d,
                Vpn(r.start.0 + 32).base(),
                4096,
                true,
                None,
            )
            .expect("fault")
            .clone();
        e.complete_fault(rec.id);
        assert_eq!(e.counters().get("pinned_unexpected_faults"), 1);
    }
}

#[cfg(test)]
mod cow_fork_tests {
    use super::*;
    use memsim::manager::MemConfig;
    use memsim::space::Backing;
    use simcore::units::ByteSize;

    /// §5's fork-causes-cold-sequences story, end to end: a DMA-ready
    /// channel loses its mappings when the IOuser forks, and the next
    /// DMA takes an NPF instead of corrupting the now-shared frame.
    #[test]
    fn fork_invalidates_dma_mappings() {
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(32),
            ..MemConfig::default()
        });
        let mut e = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(5));
        let parent = e.memory_mut().create_space();
        let r = e
            .memory_mut()
            .mmap(parent, ByteSize::kib(64), Backing::Anonymous)
            .expect("mmap");
        let d = e.create_channel(parent);
        // Warm the channel: DMA-ready across the whole buffer.
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 64 * 1024, true, None)
            .expect("fault")
            .clone();
        e.complete_fault(rec.id);
        assert!(e.dma_ready(d, r.start.base(), 64 * 1024, true));

        // Fork: the invalidation storm purges the parent's mappings.
        let (child, cost) = e.fork_iouser(parent).expect("fork");
        assert!(
            cost > SimDuration::from_micros(100),
            "16 invalidations cost time"
        );
        assert!(
            !e.dma_ready(d, r.start.base(), 1, true),
            "stale writable mapping must not survive the fork"
        );
        assert!(e.counters().get("invalidations_mapped") >= 16);

        // The cold sequence: the next DMA faults; resolution breaks COW
        // (write fault on a shared page) and the channel re-warms.
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 4096, true, None)
            .expect("refault")
            .clone();
        e.complete_fault(rec.id);
        assert!(e.dma_ready(d, r.start.base(), 4096, true));
        // The child still shares the remaining pages untouched.
        assert_eq!(e.memory().space(child).expect("child").resident_pages(), 16);
    }
}

#[cfg(test)]
mod cow_dma_tests {
    use super::*;
    use memsim::manager::MemConfig;
    use memsim::space::Backing;
    use simcore::units::ByteSize;

    /// A DMA write fault on a COW page breaks the sharing: the channel
    /// maps a *private* frame, never the shared one.
    #[test]
    fn dma_write_fault_breaks_cow() {
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(8),
            ..MemConfig::default()
        });
        let mut e = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(6));
        let parent = e.memory_mut().create_space();
        let r = e
            .memory_mut()
            .mmap(parent, ByteSize::kib(4), Backing::Anonymous)
            .expect("mmap");
        e.memory_mut()
            .touch(parent, r.start, true)
            .expect("populate");
        let (child, _cost) = e.fork_iouser(parent).expect("fork");
        let shared = e.memory().space(child).expect("child").frame_of(r.start);

        // The parent's channel DMA-writes the page.
        let d = e.create_channel(parent);
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 4096, true, None)
            .expect("fault")
            .clone();
        e.complete_fault(rec.id);
        let parent_frame = e.memory().space(parent).expect("parent").frame_of(r.start);
        assert_ne!(
            parent_frame, shared,
            "the DMA target must be a private copy, not the shared frame"
        );
        assert_eq!(
            e.memory().space(child).expect("child").frame_of(r.start),
            shared,
            "the child keeps the original"
        );
        assert!(e.dma_ready(d, r.start.base(), 4096, true));
        assert!(e.counters().get("npf_events") >= 1);
        assert_eq!(e.memory().counters().get("cow_breaks"), 1);
    }
}

#[cfg(test)]
mod huge_prefetch_tests {
    use super::*;
    use memsim::manager::MemConfig;
    use memsim::space::Backing;
    use simcore::units::ByteSize;

    fn engine_with(config: NpfConfig) -> (NpfEngine, SpaceId, DomainId, PageRange) {
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(64),
            ..MemConfig::default()
        });
        let mut e = NpfEngine::new(config, mm, SimRng::new(1));
        let space = e.memory_mut().create_space();
        let range = PageRange::new(Vpn(0), 4096); // 16 MiB, 2 MiB aligned
        e.memory_mut()
            .mmap_fixed(space, range, Backing::Anonymous)
            .expect("mmap");
        let domain = e.create_channel(space);
        (e, space, domain, range)
    }

    #[test]
    fn huge_fault_folds_chunk_and_charges_next_fault() {
        let run = |huge: bool| {
            let (mut e, _s, d, r) = engine_with(NpfConfig::default().with_huge_pages(huge));
            // One batched 2 MiB fault: sequential frame allocation makes
            // the chunk promotable at completion time.
            let rec = e
                .begin_fault(SimTime::ZERO, d, r.start.base(), 2 << 20, true, None)
                .expect("fault")
                .clone();
            e.complete_fault(rec.id);
            let folded = e.counters().get("huge_promotions");
            // The next fault carries the fold's page-table maintenance.
            let rec2 = e
                .begin_fault(
                    SimTime::from_micros(10_000),
                    d,
                    Vpn(512).base(),
                    4096,
                    true,
                    None,
                )
                .expect("fault")
                .clone();
            let latency = rec2.ready_at.saturating_since(SimTime::from_micros(10_000));
            (folded, latency)
        };
        let (folded_on, latency_on) = run(true);
        let (folded_off, latency_off) = run(false);
        assert_eq!(folded_on, 1, "512 resident siblings fold exactly once");
        assert_eq!(folded_off, 0);
        // Same RNG seed and draw sites: the only difference is the
        // deterministic promotion charge (~21 us).
        let delta = latency_on.saturating_sub(latency_off);
        assert!(
            delta >= SimDuration::from_micros(15) && delta <= SimDuration::from_micros(30),
            "promotion charge out of range: {delta}"
        );
    }

    #[test]
    fn folded_translations_serve_dma_and_survive_partial_invalidation() {
        let (mut e, s, d, r) = engine_with(NpfConfig::default().with_huge_pages(true));
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 2 << 20, true, None)
            .expect("fault")
            .clone();
        e.complete_fault(rec.id);
        assert!(e.dma_ready(d, r.start.base(), 2 << 20, true));
        // Revoking one page splits the leaf; the rest stay mapped.
        let cost = e.touch(s, Vpn(7), true).expect("touch");
        let _ = cost;
        let n = e.chaos_evict(1);
        assert!(n >= 1);
        assert_eq!(e.counters().get("huge_demotions"), 1);
        assert!(!e.dma_ready(d, r.start.base(), 2 << 20, true));
    }

    #[test]
    fn stride_stream_prefetches_and_halves_demand_faults() {
        let depth = 32;
        let (mut e, _s, d, _r) = engine_with(NpfConfig::default().with_prefetch_depth(depth));
        let pages_per_fault = 16u64;
        let mut demand = 0u64;
        let mut now = SimTime::ZERO;
        for i in 0..32u64 {
            let addr = Vpn(i * pages_per_fault).base();
            let len = pages_per_fault * 4096;
            now += SimDuration::from_millis(1);
            if e.dma_ready(d, addr, len, true) {
                continue; // prefetched: no NIC fault at all
            }
            if e.pending_fault_covering(d, addr, len).is_some() {
                continue; // in-flight speculative fault absorbs it
            }
            let rec = e
                .begin_fault(now, d, addr, len, true, None)
                .expect("fault")
                .clone();
            demand += 1;
            e.complete_fault(rec.id);
            for (id, _ready) in e.drain_spawned_prefetches() {
                e.complete_fault(id);
            }
        }
        assert!(
            e.counters().get("prefetch_issued") > 0,
            "stride detector must train on a sequential stream"
        );
        assert!(
            demand <= 16,
            "prefetch must absorb at least half the faults: {demand}"
        );
        assert_eq!(e.counters().get("npf_events"), demand);
        assert_eq!(
            e.counters().get("fw_npf_events"),
            demand,
            "speculative faults must not raise firmware NPF events"
        );
        assert!(e.prefetch_hits() > 0);
        e.sync_prefetch_hits();
        assert!(e.counters().get("prefetch_hits") > 0);
    }

    #[test]
    fn prefetch_draws_no_rng_and_skips_fault_slots() {
        // Two identical engines, same seed: one prefetching, one not.
        // The demand faults' jitter draws must align exactly.
        let run = |depth: u32| {
            let (mut e, _s, d, _r) = engine_with(NpfConfig::default().with_prefetch_depth(depth));
            let mut latencies = Vec::new();
            for i in 0..8u64 {
                let now = SimTime::from_micros(i * 1000);
                let rec = e
                    .begin_fault(now, d, Vpn(i * 4).base(), 4 * 4096, true, None)
                    .expect("fault")
                    .clone();
                latencies.push(rec.ready_at.saturating_since(now));
                e.complete_fault(rec.id);
                for (id, _ready) in e.drain_spawned_prefetches() {
                    e.complete_fault(id);
                }
            }
            latencies
        };
        let with_prefetch = run(8);
        let without = run(0);
        assert_eq!(
            with_prefetch, without,
            "speculative faults must not perturb demand draw sites or slots"
        );
    }
}
