//! Registration strategies: the pinning landscape of §2.2.
//!
//! The paper positions NPFs against three zero-copy alternatives plus
//! copying (Table 3):
//!
//! * **static pinning** — pin everything up front; simple, kills the
//!   canonical memory optimizations,
//! * **fine-grained pinning** — pin/map around every DMA; safe and
//!   memory-friendly but slow and it complicates the programming model,
//! * **coarse-grained pinning (pin-down cache)** — a bounded cache of
//!   pinned regions with eviction; fast when it hits, complex, and the
//!   cached memory is unusable by the OS,
//! * **copying** — bounce through a small pre-registered buffer,
//!   paying CPU bandwidth per byte,
//! * **ODP/NPF** — register instantly; page faults resolve on demand.
//!
//! [`Registrar`] prices all five against the shared [`NpfEngine`], so
//! every experiment compares them on identical memory state.

use memsim::lru::LruTracker;
use memsim::manager::MemError;
use memsim::types::{PageRange, SpaceId, VirtAddr, Vpn};
use simcore::time::SimDuration;
use simcore::units::ByteSize;

use iommu::DomainId;

use crate::npf::NpfEngine;

/// The strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Pin the whole registered region at registration time.
    StaticPin,
    /// Pin and map immediately before each transfer; unpin after.
    FineGrained,
    /// Keep a bounded cache of pinned ranges with LRU eviction.
    PinDownCache {
        /// Upper bound on pinned bytes.
        capacity: ByteSize,
    },
    /// On-demand paging: no pinning; NPFs resolve access.
    Odp,
    /// Copy through a pinned bounce buffer.
    Copy,
}

/// Statistics of a registrar.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegistrarStats {
    /// Transfers prepared.
    pub transfers: u64,
    /// Pin-down-cache hits.
    pub cache_hits: u64,
    /// Pin-down-cache misses (pin performed).
    pub cache_misses: u64,
    /// Cache evictions (unpins to make room).
    pub cache_evictions: u64,
    /// Bytes copied (Copy strategy).
    pub bytes_copied: u64,
    /// Pages currently pinned by this registrar.
    pub pinned_pages: u64,
}

/// The pin-down cache tracks one domain's pages; the [`LruTracker`]
/// key space is unused.
const CACHE_SPACE: SpaceId = SpaceId(0);

/// Applies one [`Strategy`] against the NPF engine.
#[derive(Debug)]
pub struct Registrar {
    strategy: Strategy,
    domain: DomainId,
    /// Pin-down cache of pinned pages: O(1) touch and LRU eviction.
    cache: LruTracker,
    stats: RegistrarStats,
}

impl Registrar {
    /// Creates a registrar applying `strategy` to DMAs of `domain`.
    #[must_use]
    pub fn new(strategy: Strategy, domain: DomainId) -> Self {
        Registrar {
            strategy,
            domain,
            cache: LruTracker::new(),
            stats: RegistrarStats::default(),
        }
    }

    /// The strategy in force.
    #[must_use]
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> RegistrarStats {
        self.stats
    }

    /// Registration-time work for a region the application will use for
    /// I/O. Returns the cost.
    ///
    /// # Errors
    ///
    /// Propagates memory errors (e.g. pinning more than physical
    /// memory under `StaticPin`).
    pub fn register_region(
        &mut self,
        engine: &mut NpfEngine,
        range: PageRange,
    ) -> Result<SimDuration, MemError> {
        match self.strategy {
            Strategy::StaticPin => {
                let cost = engine.pin_and_map(self.domain, range)?;
                self.stats.pinned_pages += range.pages;
                Ok(cost)
            }
            Strategy::FineGrained | Strategy::PinDownCache { .. } => {
                // Registration is lazy; work happens per transfer.
                Ok(engine.config().cost.mr_register_base)
            }
            Strategy::Odp => {
                // ODP registration is instant: no pages touched.
                Ok(engine.config().cost.mr_register_base)
            }
            Strategy::Copy => {
                // The bounce buffer is registered once; treat the region
                // itself as unregistered.
                Ok(engine.config().cost.mr_register_base)
            }
        }
    }

    /// Pre-transfer work for `addr..addr+len`. Returns the cost charged
    /// before the DMA may start.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn prepare_transfer(
        &mut self,
        engine: &mut NpfEngine,
        addr: VirtAddr,
        len: u64,
    ) -> Result<SimDuration, MemError> {
        self.stats.transfers += 1;
        let range = PageRange::covering(addr, len.max(1));
        match self.strategy {
            Strategy::StaticPin | Strategy::Odp => Ok(SimDuration::ZERO),
            Strategy::FineGrained => {
                let cost = engine.pin_and_map(self.domain, range)?;
                self.stats.pinned_pages += range.pages;
                Ok(cost)
            }
            Strategy::PinDownCache { capacity } => {
                let capacity_pages = capacity.bytes() / memsim::PAGE_SIZE;
                let mut cost = engine.config().cost.pindown_lookup;
                // Which pages miss?
                let missing: Vec<Vpn> = range
                    .iter()
                    .filter(|&v| !self.cache.contains(CACHE_SPACE, v))
                    .collect();
                if missing.is_empty() {
                    self.stats.cache_hits += 1;
                    for vpn in range.iter() {
                        self.cache.touch(CACHE_SPACE, vpn);
                    }
                    return Ok(cost);
                }
                self.stats.cache_misses += 1;
                // Evict LRU pages until the new ones fit.
                while self.cache.len() as u64 + missing.len() as u64 > capacity_pages {
                    let Some((_, victim)) = self.cache.pop_oldest() else {
                        break;
                    };
                    cost += engine.unpin_and_unmap(self.domain, PageRange::new(victim, 1))?;
                    self.stats.cache_evictions += 1;
                    self.stats.pinned_pages -= 1;
                }
                for vpn in missing {
                    cost += engine.pin_and_map(self.domain, PageRange::new(vpn, 1))?;
                    self.cache.touch(CACHE_SPACE, vpn);
                    self.stats.pinned_pages += 1;
                }
                // Refresh the recency of the hit pages too.
                for vpn in range.iter() {
                    self.cache.touch(CACHE_SPACE, vpn);
                }
                Ok(cost)
            }
            Strategy::Copy => {
                // Touch the source (CPU copy faults it in via the MMU,
                // not the NIC) and pay memcpy bandwidth.
                let touch =
                    engine.touch_range(engine.space_of(self.domain), addr, len.max(1), false)?;
                self.stats.bytes_copied += len;
                Ok(touch + engine.config().cost.memcpy(len))
            }
        }
    }

    /// Post-transfer work (fine-grained unpinning; copy-out for
    /// receives under `Copy`). `inbound` marks receive completions.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn finish_transfer(
        &mut self,
        engine: &mut NpfEngine,
        addr: VirtAddr,
        len: u64,
        inbound: bool,
    ) -> Result<SimDuration, MemError> {
        if len == 0 {
            return Ok(SimDuration::ZERO);
        }
        let range = PageRange::covering(addr, len);
        match self.strategy {
            Strategy::FineGrained => {
                let cost = engine.unpin_and_unmap(self.domain, range)?;
                self.stats.pinned_pages = self.stats.pinned_pages.saturating_sub(range.pages);
                Ok(cost)
            }
            Strategy::Copy if inbound => {
                let touch =
                    engine.touch_range(engine.space_of(self.domain), addr, len.max(1), true)?;
                self.stats.bytes_copied += len;
                Ok(touch + engine.config().cost.memcpy(len))
            }
            _ => Ok(SimDuration::ZERO),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::npf::{NpfConfig, NpfEngine};
    use memsim::manager::{MemConfig, MemoryManager};
    use memsim::space::Backing;
    use simcore::rng::SimRng;

    fn setup(strategy: Strategy) -> (NpfEngine, Registrar, PageRange) {
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(64),
            ..MemConfig::default()
        });
        let mut e = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(1));
        let s = e.memory_mut().create_space();
        let r = e
            .memory_mut()
            .mmap(s, ByteSize::mib(8), Backing::Anonymous)
            .expect("mmap");
        let d = e.create_channel(s);
        (e, Registrar::new(strategy, d), r)
    }

    #[test]
    fn static_pin_front_loads_cost() {
        let (mut e, mut reg, r) = setup(Strategy::StaticPin);
        let reg_cost = reg.register_region(&mut e, r).expect("register");
        assert!(
            reg_cost > SimDuration::from_micros(100),
            "2048 pages pinned"
        );
        let prep = reg
            .prepare_transfer(&mut e, r.start.base(), 64 * 1024)
            .expect("prepare");
        assert_eq!(prep, SimDuration::ZERO, "transfers are free after");
        assert_eq!(
            e.memory()
                .space(e.space_of(reg.domain))
                .unwrap()
                .pinned_pages(),
            2048
        );
    }

    #[test]
    fn odp_registration_is_instant_and_pins_nothing() {
        let (mut e, mut reg, r) = setup(Strategy::Odp);
        let cost = reg.register_region(&mut e, r).expect("register");
        assert!(cost < SimDuration::from_micros(10));
        assert_eq!(
            e.memory()
                .space(e.space_of(reg.domain))
                .unwrap()
                .pinned_pages(),
            0
        );
    }

    #[test]
    fn fine_grained_pays_per_transfer() {
        let (mut e, mut reg, r) = setup(Strategy::FineGrained);
        reg.register_region(&mut e, r).expect("register");
        let addr = r.start.base();
        let prep = reg.prepare_transfer(&mut e, addr, 64 * 1024).expect("prep");
        assert!(prep > SimDuration::ZERO);
        assert!(e.dma_ready(reg.domain, addr, 64 * 1024, true));
        let fin = reg
            .finish_transfer(&mut e, addr, 64 * 1024, false)
            .expect("finish");
        assert!(fin > SimDuration::ZERO);
        assert!(!e.dma_ready(reg.domain, addr, 1, true), "unmapped after");
    }

    #[test]
    fn pindown_cache_hits_after_warmup() {
        let (mut e, mut reg, r) = setup(Strategy::PinDownCache {
            capacity: ByteSize::mib(4),
        });
        reg.register_region(&mut e, r).expect("register");
        let addr = r.start.base();
        let cold = reg
            .prepare_transfer(&mut e, addr, 128 * 1024)
            .expect("prep");
        let warm = reg
            .prepare_transfer(&mut e, addr, 128 * 1024)
            .expect("prep");
        assert!(
            warm < cold / 10,
            "warm hit must be far cheaper: cold {cold}, warm {warm}"
        );
        assert_eq!(reg.stats().cache_hits, 1);
        assert_eq!(reg.stats().cache_misses, 1);
    }

    #[test]
    fn pindown_cache_evicts_at_capacity() {
        let (mut e, mut reg, r) = setup(Strategy::PinDownCache {
            capacity: ByteSize::kib(64), // 16 pages
        });
        reg.register_region(&mut e, r).expect("register");
        // Two disjoint 64 KiB buffers thrash a 64 KiB cache.
        let a = r.start.base();
        let b = Vpn(r.start.0 + 256).base();
        reg.prepare_transfer(&mut e, a, 64 * 1024).expect("prep");
        reg.prepare_transfer(&mut e, b, 64 * 1024).expect("prep");
        assert!(reg.stats().cache_evictions >= 16);
        assert!(reg.stats().pinned_pages <= 16);
        // The evicted range no longer translates.
        assert!(!e.dma_ready(reg.domain, a, 64 * 1024, true));
    }

    #[test]
    fn copy_strategy_prices_bytes() {
        let (mut e, mut reg, r) = setup(Strategy::Copy);
        reg.register_region(&mut e, r).expect("register");
        let small = reg
            .prepare_transfer(&mut e, r.start.base(), 16 * 1024)
            .expect("prep");
        // Fresh pages beyond the first transfer.
        let big = reg
            .prepare_transfer(&mut e, Vpn(r.start.0 + 512).base(), 128 * 1024)
            .expect("prep");
        assert!(big > small, "copy cost scales with bytes");
        assert_eq!(reg.stats().bytes_copied, (16 + 128) * 1024);
        // Inbound finish pays the copy-out.
        let fin = reg
            .finish_transfer(&mut e, r.start.base(), 16 * 1024, true)
            .expect("finish");
        assert!(fin > SimDuration::ZERO);
    }
}
