//! # npf-core — network page fault support
//!
//! The paper's contribution, reproduced in simulation: an IOprovider
//! driver that lets direct-I/O NIC DMAs take page faults instead of
//! requiring pinned memory.
//!
//! * [`npf::NpfEngine`] — the Figure 2 flows: fault resolution (with
//!   batching, firmware-bypass resume, and per-channel concurrency
//!   limits — the §4 optimizations) and MMU-notifier invalidation.
//! * [`backup_driver::BackupDriver`] — the §5 Ethernet design: the
//!   IOprovider half of the backup ring (software queues + resolver
//!   thread), keeping IOusers unaware of rNPFs.
//! * [`pinning::Registrar`] — the competing registration strategies of
//!   §2.2 (static, fine-grained, pin-down cache, copy) priced against
//!   the same engine, for apples-to-apples comparisons.
//! * [`cost::CostModel`] — constants calibrated to Figure 3/Table 4.
//!
//! # Examples
//!
//! ```
//! use npf_core::npf::{NpfConfig, NpfEngine};
//! use memsim::manager::{MemConfig, MemoryManager};
//! use memsim::space::Backing;
//! use simcore::{SimRng, SimTime, ByteSize};
//!
//! let mm = MemoryManager::new(MemConfig::default());
//! let mut engine = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(7));
//! let space = engine.memory_mut().create_space();
//! let range = engine.memory_mut().mmap(space, ByteSize::mib(1), Backing::Anonymous)?;
//! let channel = engine.create_channel(space);
//!
//! // A DMA to the cold buffer faults; the engine resolves it.
//! assert!(!engine.dma_ready(channel, range.start.base(), 4096, true));
//! let fault = engine
//!     .begin_fault(SimTime::ZERO, channel, range.start.base(), 4096, true, None)?
//!     .clone();
//! engine.complete_fault(fault.id);
//! assert!(engine.dma_ready(channel, range.start.base(), 4096, true));
//! # Ok::<(), memsim::manager::MemError>(())
//! ```

pub mod backend;
pub mod backup_driver;
pub mod cost;
pub mod npf;
pub mod pinning;

pub use backend::{
    BackendKind, BackendSelect, FaultPlan, FaultRequest, FirmwareBackend, OdpBackend,
    PinnedBackend, SoftEmuBackend, SoftEmuConfig,
};
pub use backup_driver::{BackupDriver, ResolveStep, RingStats};
pub use cost::{CostModel, InvalidationBreakdown, NpfBreakdown};
pub use npf::{ArbiterPolicy, ArbiterStats, FaultArbiter, FaultRecord, NpfConfig, NpfEngine};
pub use pinning::{Registrar, RegistrarStats, Strategy};

/// Testbed convention: every IOuser maps its RX packet buffers as a
/// page-per-slot array at this virtual address (the NIC metadata lets
/// the backup driver reconstruct slot addresses from indices).
pub const RX_BUFFER_BASE: u64 = 0x4000_0000;
