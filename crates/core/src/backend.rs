//! Pluggable ODP backends: how a not-present DMA target gets serviced.
//!
//! The paper's design assumes firmware NPF support in the NIC
//! ([`FirmwareBackend`], Figure 2/3). NP-RDMA shows the same
//! pinning-free programming model is reachable on commodity NICs with
//! *driver-level software emulation*: validate every DMA address before
//! posting, bounce not-present accesses through a bounded bounce-buffer
//! pool, copy out on resolution, and retry transient misses with
//! exponential backoff ([`SoftEmuBackend`]). [`PinnedBackend`] is the
//! no-ODP baseline: every buffer registered up front, faults are a
//! scenario bug.
//!
//! The [`OdpBackend`] trait carves the fault path of
//! [`crate::npf::NpfEngine::begin_fault`] into the backend-specific
//! parts:
//!
//! * **admission** ([`OdpBackend::admit`]/[`OdpBackend::commit`]) —
//!   backend-side service resources. The software emulation holds a
//!   bounded bounce-buffer pool here; exhaustion is *backpressure*
//!   (the fault waits for a buffer), never a drop.
//! * **the service plan** ([`OdpBackend::plan`]) — an ordered list of
//!   journal [`Phase`] slices whose durations sum to the synthesized
//!   [`NpfBreakdown`]'s total. The firmware plan is Figure 3's
//!   trigger → driver → translate → PT-update → resume chain; the
//!   software plan is validate → driver → translate → PT-update →
//!   copy-out, with no firmware involvement at all.
//! * **transient-miss policy** ([`OdpBackend::transient_penalty`]) —
//!   firmware retries linearly (hardware replays at a fixed cadence);
//!   the emulation backs off exponentially, doubling the driver's
//!   re-validation delay per retry.
//! * **completion** ([`OdpBackend::on_complete`]) — copy-out
//!   accounting: pages evicted mid-bounce are *skipped* (the next
//!   access faults again, which is correct), never copied to a stale
//!   frame.
//!
//! Every backend must uphold the engine's invariants: deterministic
//! given the engine RNG, phase slices that tile the service interval
//! exactly (the journal's exact-sum check), and explainable counters —
//! `fw_npf_events` only ever moves under firmware, `softemu_bounces`
//! only under the emulation.

use simcore::journal::Phase;
use simcore::rng::SimRng;
use simcore::stats::Counters;
use simcore::time::{SimDuration, SimTime};

use crate::cost::{CostModel, NpfBreakdown};

/// Which ODP backend a scenario runs — the CLI-facing tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Firmware NPF support in the NIC (the paper's design).
    Firmware,
    /// Driver-level software emulation (NP-RDMA-style bounce + retry).
    SoftEmu,
    /// No ODP: all buffers pinned and registered up front.
    Pinned,
}

impl BackendKind {
    /// Parses the CLI spellings used by the bench bins
    /// (`--backend firmware|softemu|pinned`).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "firmware" | "fw" | "npf" => Ok(BackendKind::Firmware),
            "softemu" | "soft" | "emu" => Ok(BackendKind::SoftEmu),
            "pinned" | "pin" => Ok(BackendKind::Pinned),
            other => Err(other.to_owned()),
        }
    }

    /// Stable short name (bench cell keys, reports).
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            BackendKind::Firmware => "firmware",
            BackendKind::SoftEmu => "softemu",
            BackendKind::Pinned => "pinned",
        }
    }
}

/// Tunables of the software-emulation backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftEmuConfig {
    /// Bounce-buffer pool depth. A fault holds one buffer from service
    /// start to copy-out; an empty pool backpressures (the fault waits
    /// for the earliest release — no drops). Must be ≥ 1; the scenario
    /// builder rejects 0.
    pub bounce_buffers: u32,
    /// Fixed cost of the pre-post address validation check.
    pub validate_base: SimDuration,
    /// Per-page component of the validation walk.
    pub validate_per_page: SimDuration,
    /// Cap on exponential-backoff doublings for transient-miss
    /// retries (bounds the worst-case penalty).
    pub max_backoff_doublings: u32,
}

impl Default for SoftEmuConfig {
    fn default() -> Self {
        SoftEmuConfig {
            bounce_buffers: 64,
            validate_base: SimDuration::from_micros(2),
            validate_per_page: SimDuration::from_nanos(60),
            max_backoff_doublings: 10,
        }
    }
}

impl SoftEmuConfig {
    /// Sets the bounce-buffer pool depth.
    #[must_use]
    pub fn with_bounce_buffers(mut self, n: u32) -> Self {
        self.bounce_buffers = n;
        self
    }

    /// Sets the backoff-doubling cap.
    #[must_use]
    pub fn with_max_backoff_doublings(mut self, n: u32) -> Self {
        self.max_backoff_doublings = n;
        self
    }
}

/// Backend selection, carried by [`crate::npf::NpfConfig`]. `Copy` so
/// the config stays `Copy`; the boxed backend is built from this at
/// engine construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendSelect {
    /// The paper's firmware NPF path.
    #[default]
    Firmware,
    /// Driver-level software emulation with the given tunables.
    SoftEmu(SoftEmuConfig),
    /// Pinned-only baseline.
    Pinned,
}

impl BackendSelect {
    /// The selection's kind tag.
    #[must_use]
    pub const fn kind(self) -> BackendKind {
        match self {
            BackendSelect::Firmware => BackendKind::Firmware,
            BackendSelect::SoftEmu(_) => BackendKind::SoftEmu,
            BackendSelect::Pinned => BackendKind::Pinned,
        }
    }

    /// A selection of `kind` with default tunables.
    #[must_use]
    pub const fn of(kind: BackendKind) -> Self {
        match kind {
            BackendKind::Firmware => BackendSelect::Firmware,
            BackendKind::SoftEmu => BackendSelect::SoftEmu(SoftEmuConfig {
                bounce_buffers: 64,
                validate_base: SimDuration::from_micros(2),
                validate_per_page: SimDuration::from_nanos(60),
                max_backoff_doublings: 10,
            }),
            BackendKind::Pinned => BackendSelect::Pinned,
        }
    }

    /// Builds the backend implementation.
    #[must_use]
    pub fn build(self) -> Box<dyn OdpBackend> {
        match self {
            BackendSelect::Firmware => Box::new(FirmwareBackend),
            BackendSelect::SoftEmu(cfg) => Box::new(SoftEmuBackend::new(cfg)),
            BackendSelect::Pinned => Box::new(PinnedBackend),
        }
    }
}

/// One fault's inputs, backend-agnostic: what the engine resolved from
/// the OS before asking the backend to price the service.
#[derive(Debug, Clone, Copy)]
pub struct FaultRequest {
    /// Pages the fault covers (post-batching).
    pub pages: u64,
    /// The memory subsystem's own cost (zero-fill, swap-in,
    /// invalidation propagation), attributed to the OS-translate slice.
    pub os_cost: SimDuration,
    /// Write access?
    pub write: bool,
    /// Firmware-bypass fast resume requested (firmware backend only).
    pub firmware_bypass: bool,
    /// Driver-initiated speculative pre-fault (stride prefetch): no
    /// NIC interrupt, no firmware resume, and — critically — no RNG
    /// draws, so the speculative path leaves the engine's jitter
    /// stream untouched and demand faults price identically whether
    /// or not prefetch is on.
    pub speculative: bool,
    /// Share of `os_cost` spent fetching from the slow memory tier
    /// (NVM); journalled as its own [`Phase::TierMigrate`] slice carved
    /// out of the OS-translate span.
    pub tier_cost: SimDuration,
}

/// A backend's service plan for one fault: ordered phase slices whose
/// durations sum exactly to `breakdown.total()` — the engine lays them
/// down back-to-back from the service start, so the journal's
/// exact-sum invariant holds by construction.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Lifecycle slices, in order. Zero-duration slices are kept (the
    /// trace still shows the child span, the critical path skips it).
    pub slices: Vec<(Phase, SimDuration)>,
    /// The Figure 3 breakdown synthesized for reporting. For the
    /// software emulation, `resume` holds the copy-out and
    /// `trigger_interrupt` is zero (no firmware involvement).
    pub breakdown: NpfBreakdown,
}

impl FaultPlan {
    /// Total service time; equals the sum of the slice durations.
    #[must_use]
    pub fn service_time(&self) -> SimDuration {
        self.breakdown.total()
    }
}

/// The backend half of the NPF engine's fault path. See the module
/// docs for the contract each implementation must uphold.
pub trait OdpBackend: std::fmt::Debug {
    /// The backend's kind tag.
    fn kind(&self) -> BackendKind;

    /// Earliest service start for a fault cleared (by the per-channel
    /// limiter and the cross-channel arbiter) at `cleared_at`, after
    /// any backend-side admission resource is available. The wait, if
    /// any, is journalled as [`Phase::BounceWait`].
    fn admit(&mut self, cleared_at: SimTime, counters: &mut Counters) -> SimTime;

    /// Prices the fault. Firmware draws its hardware jitter from `rng`
    /// (the engine's stream — draw order is part of the determinism
    /// contract); the software emulation is jitter-free.
    fn plan(
        &mut self,
        req: &FaultRequest,
        cost: &CostModel,
        rng: &mut SimRng,
        counters: &mut Counters,
    ) -> FaultPlan;

    /// Reserves the admission resource chosen by the last
    /// [`OdpBackend::admit`] until `ready_at`.
    fn commit(&mut self, ready_at: SimTime);

    /// Extra latency for a chaos-injected transient miss of `retries`
    /// attempts at base cadence `retry_delay`.
    fn transient_penalty(&self, retries: u32, retry_delay: SimDuration) -> SimDuration;

    /// Completion-side accounting. `resident_pages` of `total_pages`
    /// survived to resolution; the software emulation copies those out
    /// of the bounce buffer and *skips* pages evicted mid-bounce.
    fn on_complete(&mut self, resident_pages: u64, total_pages: u64, counters: &mut Counters);
}

/// Chrome-trace child-span name for a plan slice. The firmware names
/// predate the backend split and are pinned by the golden traces.
#[must_use]
pub const fn trace_child_name(phase: Phase) -> &'static str {
    match phase {
        Phase::Trigger => "fault_trigger",
        Phase::PtUpdate => "update_hw_pt",
        other => other.name(),
    }
}

/// The paper's firmware NPF path: Figure 3's five components with
/// log-normal hardware jitter, linear transient retries, no admission
/// resource beyond the engine's own limits.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirmwareBackend;

/// Appends the OS-translate span, carving out the slow-tier fetch as
/// its own slice when the memory manager reported one. The TierMigrate
/// slice is only emitted when non-zero, so runs without tiering keep
/// their exact golden slice lists.
fn push_os_slices(
    slices: &mut Vec<(Phase, SimDuration)>,
    os_span: SimDuration,
    tier_cost: SimDuration,
) {
    let tier = if tier_cost < os_span {
        tier_cost
    } else {
        os_span
    };
    slices.push((Phase::OsTranslate, os_span - tier));
    if tier > SimDuration::ZERO {
        slices.push((Phase::TierMigrate, tier));
    }
}

/// Builds the firmware service plan — shared with [`PinnedBackend`],
/// whose unexpected-fault slow path services faults identically.
fn firmware_plan(req: &FaultRequest, cost: &CostModel, rng: &mut SimRng) -> FaultPlan {
    let breakdown = cost.npf(req.pages, req.os_cost, req.firmware_bypass, rng);
    // `driver` = pure driver software + the OS translation work it
    // blocks on; split so trace and journal show both.
    let driver_sw = breakdown.driver.saturating_sub(req.os_cost);
    let os_span = breakdown.driver - driver_sw;
    let mut slices = vec![
        (Phase::Trigger, breakdown.trigger_interrupt),
        (Phase::DriverSw, driver_sw),
    ];
    push_os_slices(&mut slices, os_span, req.tier_cost);
    slices.push((Phase::PtUpdate, breakdown.update_hw_pt));
    slices.push((Phase::Resume, breakdown.resume));
    FaultPlan { slices, breakdown }
}

/// Service plan for a driver-initiated speculative pre-fault. The
/// driver pre-validates and pre-maps ahead of the DMA stream (the
/// NP-RDMA idiom): no NIC interrupt, no firmware resume, no hardware
/// jitter — and **no RNG draws**, shared by every backend so the
/// speculative path is invisible to the demand faults' jitter stream.
fn speculative_plan(req: &FaultRequest, cost: &CostModel) -> FaultPlan {
    let pages = req.pages.max(1);
    let issue = cost.prefetch_issue(pages);
    let driver_sw = cost.driver_sw_base + cost.driver_sw_per_page * pages;
    let os_span = req.os_cost;
    let pt_update = cost.update_pt_base + cost.update_pt_per_page * pages;
    let mut slices = vec![(Phase::Prefetch, issue), (Phase::DriverSw, driver_sw)];
    push_os_slices(&mut slices, os_span, req.tier_cost);
    slices.push((Phase::PtUpdate, pt_update));
    FaultPlan {
        slices,
        breakdown: NpfBreakdown {
            trigger_interrupt: SimDuration::ZERO,
            driver: issue + driver_sw + os_span,
            update_hw_pt: pt_update,
            resume: SimDuration::ZERO,
        },
    }
}

impl OdpBackend for FirmwareBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Firmware
    }

    fn admit(&mut self, cleared_at: SimTime, _counters: &mut Counters) -> SimTime {
        cleared_at
    }

    fn plan(
        &mut self,
        req: &FaultRequest,
        cost: &CostModel,
        rng: &mut SimRng,
        counters: &mut Counters,
    ) -> FaultPlan {
        if req.speculative {
            // Driver-level pre-validation: the NIC never saw a fault,
            // so the firmware event counter must not move.
            counters.bump("fw_prefetch_events");
            return speculative_plan(req, cost);
        }
        counters.bump("fw_npf_events");
        firmware_plan(req, cost, rng)
    }

    fn commit(&mut self, _ready_at: SimTime) {}

    fn transient_penalty(&self, retries: u32, retry_delay: SimDuration) -> SimDuration {
        // Hardware replays at a fixed cadence: linear in the retry
        // count.
        SimDuration::from_nanos(retry_delay.as_nanos() * u64::from(retries))
    }

    fn on_complete(&mut self, _resident: u64, _total: u64, _counters: &mut Counters) {}
}

/// NP-RDMA-style driver-level software emulation: validate before
/// posting, bounce through a bounded buffer pool, copy out on
/// resolution, exponential backoff on transient misses. No firmware
/// NPF events at all.
#[derive(Debug)]
pub struct SoftEmuBackend {
    config: SoftEmuConfig,
    /// Per-buffer release times (busy-until), like the arbiter's slot
    /// servers: earliest-free wins, lowest index on ties.
    pool: Vec<SimTime>,
    /// Buffer chosen by the in-flight `admit`, consumed by `commit`.
    pending_slot: Option<usize>,
}

impl SoftEmuBackend {
    /// Creates the backend with `config` (pool depth clamped to ≥ 1 —
    /// the builder rejects 0 up front, this is the engine-level
    /// backstop).
    #[must_use]
    pub fn new(config: SoftEmuConfig) -> Self {
        SoftEmuBackend {
            config,
            pool: vec![SimTime::ZERO; config.bounce_buffers.max(1) as usize],
            pending_slot: None,
        }
    }

    /// The backend's tunables.
    #[must_use]
    pub fn config(&self) -> SoftEmuConfig {
        self.config
    }
}

impl OdpBackend for SoftEmuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::SoftEmu
    }

    fn admit(&mut self, cleared_at: SimTime, counters: &mut Counters) -> SimTime {
        // Earliest-free bounce buffer, lowest index on ties
        // (deterministic). Exhaustion backpressures: the fault waits
        // for the earliest release instead of dropping.
        let (idx, &busy) = self
            .pool
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .expect("pool is non-empty");
        self.pending_slot = Some(idx);
        let start = cleared_at.max(busy);
        if start > cleared_at {
            counters.bump("softemu_pool_waits");
        }
        start
    }

    fn plan(
        &mut self,
        req: &FaultRequest,
        cost: &CostModel,
        rng: &mut SimRng,
        counters: &mut Counters,
    ) -> FaultPlan {
        let _ = rng; // the software path is jitter-free by design
        if req.speculative {
            // Pre-validation needs no bounce buffer: no DMA is in
            // flight, the driver is mapping ahead of the stream.
            counters.bump("softemu_prefetches");
            return speculative_plan(req, cost);
        }
        counters.bump("softemu_bounces");
        let pages = req.pages.max(1);
        let validate = self.config.validate_base + self.config.validate_per_page * pages;
        let driver_sw = cost.driver_sw_base + cost.driver_sw_per_page * pages;
        let os_span = req.os_cost;
        // Host IOMMU table update only — no NIC coherency traffic, no
        // hardware jitter.
        let pt_update = cost.update_pt_base + cost.update_pt_per_page * pages;
        let copy_out = cost.memcpy(pages * 4096);
        let mut slices = vec![(Phase::Validate, validate), (Phase::DriverSw, driver_sw)];
        push_os_slices(&mut slices, os_span, req.tier_cost);
        slices.push((Phase::PtUpdate, pt_update));
        slices.push((Phase::CopyOut, copy_out));
        FaultPlan {
            slices,
            breakdown: NpfBreakdown {
                trigger_interrupt: SimDuration::ZERO,
                driver: validate + driver_sw + os_span,
                update_hw_pt: pt_update,
                resume: copy_out,
            },
        }
    }

    fn commit(&mut self, ready_at: SimTime) {
        if let Some(i) = self.pending_slot.take() {
            self.pool[i] = ready_at;
        }
    }

    fn transient_penalty(&self, retries: u32, retry_delay: SimDuration) -> SimDuration {
        // Exponential backoff: the driver doubles its re-validation
        // delay per miss, capped to bound the worst case.
        // Σ_{i=0}^{n-1} retry_delay·2^i = retry_delay·(2^n − 1).
        let n = retries.min(self.config.max_backoff_doublings);
        SimDuration::from_nanos(retry_delay.as_nanos().saturating_mul((1u64 << n) - 1))
    }

    fn on_complete(&mut self, resident: u64, total: u64, counters: &mut Counters) {
        counters.add("softemu_copyouts", resident);
        if total > resident {
            // Target pages evicted mid-bounce: never copy to a stale
            // frame — skip, and let the next access fault again.
            counters.add("softemu_copy_skipped", total - resident);
        }
    }
}

/// The no-ODP baseline: every buffer pinned and registered up front,
/// so `begin_fault` should never run. When it does (a cold access a
/// scenario forgot to pin), the fault is serviced on the firmware slow
/// path and counted as `pinned_unexpected_faults` so conformance
/// checks can assert the scenario really was pinned.
#[derive(Debug, Clone, Copy, Default)]
pub struct PinnedBackend;

impl OdpBackend for PinnedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Pinned
    }

    fn admit(&mut self, cleared_at: SimTime, _counters: &mut Counters) -> SimTime {
        cleared_at
    }

    fn plan(
        &mut self,
        req: &FaultRequest,
        cost: &CostModel,
        rng: &mut SimRng,
        counters: &mut Counters,
    ) -> FaultPlan {
        if req.speculative {
            // A pinned scenario has nothing to pre-map; price it as a
            // plain speculative no-op plan without touching the
            // unexpected-fault counter.
            counters.bump("pinned_prefetches");
            return speculative_plan(req, cost);
        }
        counters.bump("pinned_unexpected_faults");
        firmware_plan(req, cost, rng)
    }

    fn commit(&mut self, _ready_at: SimTime) {}

    fn transient_penalty(&self, retries: u32, retry_delay: SimDuration) -> SimDuration {
        SimDuration::from_nanos(retry_delay.as_nanos() * u64::from(retries))
    }

    fn on_complete(&mut self, _resident: u64, _total: u64, _counters: &mut Counters) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(pages: u64) -> FaultRequest {
        FaultRequest {
            pages,
            os_cost: SimDuration::from_micros(3),
            write: true,
            firmware_bypass: false,
            speculative: false,
            tier_cost: SimDuration::ZERO,
        }
    }

    #[test]
    fn kind_parse_roundtrips() {
        for kind in [
            BackendKind::Firmware,
            BackendKind::SoftEmu,
            BackendKind::Pinned,
        ] {
            assert_eq!(BackendKind::parse(kind.as_str()), Ok(kind));
        }
        assert_eq!(BackendKind::parse("fw"), Ok(BackendKind::Firmware));
        assert_eq!(BackendKind::parse("pin"), Ok(BackendKind::Pinned));
        assert!(BackendKind::parse("quantum").is_err());
    }

    #[test]
    fn plans_tile_their_breakdown_exactly() {
        let cost = CostModel::default();
        let mut rng = SimRng::new(7);
        let mut counters = Counters::new();
        for select in [
            BackendSelect::Firmware,
            BackendSelect::SoftEmu(SoftEmuConfig::default()),
            BackendSelect::Pinned,
        ] {
            let mut b = select.build();
            for pages in [1, 16, 1024] {
                let plan = b.plan(&req(pages), &cost, &mut rng, &mut counters);
                let sum = plan
                    .slices
                    .iter()
                    .fold(SimDuration::ZERO, |acc, &(_, d)| acc + d);
                assert_eq!(sum, plan.service_time(), "{select:?} pages={pages}");
            }
        }
    }

    #[test]
    fn firmware_plan_matches_cost_model_draws() {
        // The backend must consume the RNG exactly like the direct
        // CostModel call — the golden traces depend on it.
        let cost = CostModel::default();
        let mut counters = Counters::new();
        let mut rng_a = SimRng::new(42);
        let mut rng_b = SimRng::new(42);
        let mut fw = FirmwareBackend;
        let plan = fw.plan(&req(4), &cost, &mut rng_a, &mut counters);
        let direct = cost.npf(4, SimDuration::from_micros(3), false, &mut rng_b);
        assert_eq!(plan.breakdown, direct);
        assert_eq!(counters.get("fw_npf_events"), 1);
        assert_eq!(counters.get("softemu_bounces"), 0);
    }

    #[test]
    fn softemu_is_deterministic_and_firmware_free() {
        let cost = CostModel::default();
        let mut counters = Counters::new();
        let mut b = SoftEmuBackend::new(SoftEmuConfig::default());
        let mut rng = SimRng::new(1);
        let p1 = b.plan(&req(8), &cost, &mut rng, &mut counters);
        let p2 = b.plan(&req(8), &cost, &mut rng, &mut counters);
        assert_eq!(p1.breakdown, p2.breakdown, "jitter-free");
        assert_eq!(p1.breakdown.trigger_interrupt, SimDuration::ZERO);
        assert_eq!(counters.get("softemu_bounces"), 2);
        assert_eq!(counters.get("fw_npf_events"), 0);
        // The synthesized resume slot holds the copy-out.
        assert_eq!(p1.breakdown.resume, cost.memcpy(8 * 4096));
    }

    #[test]
    fn bounce_pool_backpressures_without_drops() {
        let mut counters = Counters::new();
        let mut b = SoftEmuBackend::new(SoftEmuConfig::default().with_bounce_buffers(2));
        let t0 = SimTime::ZERO;
        // Two buffers absorb two faults immediately...
        let s1 = b.admit(t0, &mut counters);
        b.commit(SimTime::from_micros(100));
        let s2 = b.admit(t0, &mut counters);
        b.commit(SimTime::from_micros(150));
        assert_eq!(s1, t0);
        assert_eq!(s2, t0);
        // ...the third waits for the earliest release — backpressure,
        // not a drop.
        let s3 = b.admit(t0, &mut counters);
        assert_eq!(s3, SimTime::from_micros(100));
        assert_eq!(counters.get("softemu_pool_waits"), 1);
        b.commit(SimTime::from_micros(220));
    }

    #[test]
    fn transient_backoff_is_exponential_and_capped() {
        let b = SoftEmuBackend::new(SoftEmuConfig::default());
        let d = SimDuration::from_micros(10);
        assert_eq!(b.transient_penalty(0, d), SimDuration::ZERO);
        assert_eq!(b.transient_penalty(1, d), d);
        assert_eq!(b.transient_penalty(3, d), SimDuration::from_micros(70));
        // Capped at 2^10 − 1 doublings' worth.
        assert_eq!(
            b.transient_penalty(40, d),
            SimDuration::from_micros(10 * 1023)
        );
        let fw = FirmwareBackend;
        assert_eq!(fw.transient_penalty(3, d), SimDuration::from_micros(30));
    }

    #[test]
    fn copyout_skips_evicted_pages() {
        let mut counters = Counters::new();
        let mut b = SoftEmuBackend::new(SoftEmuConfig::default());
        b.on_complete(5, 8, &mut counters);
        assert_eq!(counters.get("softemu_copyouts"), 5);
        assert_eq!(counters.get("softemu_copy_skipped"), 3);
    }

    #[test]
    fn speculative_plans_draw_no_rng_and_skip_firmware_counters() {
        let cost = CostModel::default();
        let mut counters = Counters::new();
        let mut rng = SimRng::new(99);
        let mut witness = SimRng::new(99);
        let spec = FaultRequest {
            speculative: true,
            ..req(8)
        };
        for select in [
            BackendSelect::Firmware,
            BackendSelect::SoftEmu(SoftEmuConfig::default()),
            BackendSelect::Pinned,
        ] {
            let mut b = select.build();
            let plan = b.plan(&spec, &cost, &mut rng, &mut counters);
            let sum = plan
                .slices
                .iter()
                .fold(SimDuration::ZERO, |acc, &(_, d)| acc + d);
            assert_eq!(sum, plan.service_time(), "{select:?} tiles exactly");
            assert_eq!(plan.breakdown.trigger_interrupt, SimDuration::ZERO);
            assert_eq!(plan.breakdown.resume, SimDuration::ZERO);
            assert_eq!(plan.slices[0].0, Phase::Prefetch);
        }
        // No backend consumed the engine's jitter stream.
        let d = SimDuration::from_micros(100);
        assert_eq!(
            rng.lognormal_jitter(d, 0.08),
            witness.lognormal_jitter(d, 0.08)
        );
        assert_eq!(counters.get("fw_npf_events"), 0);
        assert_eq!(counters.get("fw_prefetch_events"), 1);
        assert_eq!(counters.get("softemu_prefetches"), 1);
        assert_eq!(counters.get("softemu_bounces"), 0);
        assert_eq!(counters.get("pinned_unexpected_faults"), 0);
    }

    #[test]
    fn tier_cost_is_carved_out_of_the_os_slice() {
        let cost = CostModel::default();
        let mut counters = Counters::new();
        let mut rng = SimRng::new(5);
        let mut fw = FirmwareBackend;
        let tiered = FaultRequest {
            os_cost: SimDuration::from_micros(90),
            tier_cost: SimDuration::from_micros(80),
            ..req(4)
        };
        let plan = fw.plan(&tiered, &cost, &mut rng, &mut counters);
        let os = plan
            .slices
            .iter()
            .find(|(p, _)| *p == Phase::OsTranslate)
            .expect("os slice")
            .1;
        let tier = plan
            .slices
            .iter()
            .find(|(p, _)| *p == Phase::TierMigrate)
            .expect("tier slice")
            .1;
        assert_eq!(tier, SimDuration::from_micros(80));
        assert_eq!(os + tier, SimDuration::from_micros(90));
        // The breakdown (and thus total latency) is what it always
        // was: the tier slice re-labels time, it does not add any.
        let mut rng2 = SimRng::new(5);
        let untier = fw.plan(
            &FaultRequest {
                os_cost: SimDuration::from_micros(90),
                ..req(4)
            },
            &cost,
            &mut rng2,
            &mut counters,
        );
        assert_eq!(plan.breakdown, untier.breakdown);
        // Without a tier cost, no TierMigrate slice appears at all
        // (golden slice lists stay stable).
        assert!(!untier.slices.iter().any(|(p, _)| *p == Phase::TierMigrate));
    }

    #[test]
    fn trace_names_pin_the_golden_firmware_children() {
        assert_eq!(trace_child_name(Phase::Trigger), "fault_trigger");
        assert_eq!(trace_child_name(Phase::DriverSw), "driver_sw");
        assert_eq!(trace_child_name(Phase::OsTranslate), "os_translate");
        assert_eq!(trace_child_name(Phase::PtUpdate), "update_hw_pt");
        assert_eq!(trace_child_name(Phase::Resume), "resume");
        assert_eq!(trace_child_name(Phase::Validate), "validate");
        assert_eq!(trace_child_name(Phase::CopyOut), "copy_out");
    }
}
