//! The calibrated cost model.
//!
//! Constants are calibrated against the paper's measurements (Figure 3,
//! Table 4): a minor NPF costs ≈220 µs for a 4 KB message — ~90 % of it
//! firmware — growing to ≈350 µs for a 4 MB message as the OS translates
//! 1024 pages; invalidations cost ≈25–65 µs. Tails (Table 4) come from
//! log-normal jitter on the hardware components.
//!
//! The model also prices the *alternatives* NPFs are compared against:
//! memory registration/pinning (for static/fine-grained/pin-down-cache
//! strategies) and CPU copying (for bounce-buffer designs).

use simcore::rng::SimRng;
use simcore::time::SimDuration;
use simcore::units::Bandwidth;

/// Breakdown of one NPF resolution, mirroring Figure 3(a)'s components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NpfBreakdown {
    /// (i)→(ii): the IOMMU observes the fault and the firmware raises
    /// the interrupt. Hardware only.
    pub trigger_interrupt: SimDuration,
    /// (ii)→(iii): the driver's NPF handler queries the OS for physical
    /// addresses (allocation/swap-in happens here). Software only.
    pub driver: SimDuration,
    /// (iii)→(iv): the driver updates the on-NIC IOMMU page tables
    /// (coherency traffic). Software + hardware.
    pub update_hw_pt: SimDuration,
    /// (iv)→(v): the NIC identifies the update and resumes. Hardware
    /// only.
    pub resume: SimDuration,
}

impl NpfBreakdown {
    /// Total latency of the fault.
    #[must_use]
    pub fn total(&self) -> SimDuration {
        self.trigger_interrupt + self.driver + self.update_hw_pt + self.resume
    }

    /// Fraction of the total spent in hardware (firmware).
    #[must_use]
    pub fn hardware_fraction(&self) -> f64 {
        let hw = self.trigger_interrupt + self.resume + self.update_hw_pt / 2;
        hw.as_secs_f64() / self.total().as_secs_f64()
    }
}

/// Breakdown of one invalidation, mirroring Figure 3(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidationBreakdown {
    /// Driver checks whether the page was ever mapped in the IOMMU.
    pub checks: SimDuration,
    /// IOMMU page-table update + invalidation command (absent when the
    /// page was not mapped — mapping is lazy, §4).
    pub update_hw_pt: SimDuration,
    /// Driver internal-state updates.
    pub updates: SimDuration,
}

impl InvalidationBreakdown {
    /// Total latency of the invalidation.
    #[must_use]
    pub fn total(&self) -> SimDuration {
        self.checks + self.update_hw_pt + self.updates
    }
}

/// All tunable costs of the NPF engine and its competitors.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    // --- NPF path (Figure 3a) ---
    /// Firmware fault-detection + interrupt trigger.
    pub fault_trigger_hw: SimDuration,
    /// Fixed driver software cost per fault event.
    pub driver_sw_base: SimDuration,
    /// Driver/OS software cost per page resolved.
    pub driver_sw_per_page: SimDuration,
    /// Fixed hardware page-table update cost (doorbell + coherency).
    pub update_pt_base: SimDuration,
    /// Per-page page-table write cost.
    pub update_pt_per_page: SimDuration,
    /// Firmware resume cost (slow path).
    pub resume_hw: SimDuration,
    /// Resume cost when the firmware-bypass optimization is on (§4's
    /// second optimization: hardware resumes before the firmware
    /// bookkeeping completes).
    pub resume_hw_bypassed: SimDuration,
    /// Log-normal sigma applied to the hardware components (Table 4
    /// tails).
    pub hw_jitter_sigma: f64,
    /// Probability that a fault hits a slow firmware path (error-path
    /// contention), multiplying the hardware components.
    pub hw_outlier_probability: f64,
    /// Multiplier applied on an outlier.
    pub hw_outlier_factor: f64,

    // --- Huge pages / prefetch (ROADMAP §4-beyond optimizations) ---
    /// Fixed driver cost of folding 512 resident 4 KiB PTEs into one
    /// 2 MiB leaf (collapse scan + single PT rewrite + shadowed-entry
    /// teardown). Per-page writes are priced at `update_pt_per_page`.
    pub promote_2m_base: SimDuration,
    /// Fixed driver cost of splitting a 2 MiB leaf back into 512
    /// 4 KiB PTEs on partial unmap/eviction.
    pub demote_2m_base: SimDuration,
    /// Driver cost of issuing one speculative pre-fault (NP-RDMA-style
    /// driver-level pre-validation: no NIC interrupt, no firmware
    /// resume). Per-page resolution is priced at `driver_sw_per_page`.
    pub prefetch_issue_base: SimDuration,

    // --- Invalidation path (Figure 3b) ---
    /// Driver mapping check.
    pub inv_checks: SimDuration,
    /// IOMMU PT update + invalidate command, when mapped.
    pub inv_update_pt_base: SimDuration,
    /// Per-page component of the above.
    pub inv_update_pt_per_page: SimDuration,
    /// Driver state updates.
    pub inv_updates: SimDuration,

    // --- Registration / pinning (the competition, §2.2) ---
    /// Fixed cost of a memory-registration verb.
    pub mr_register_base: SimDuration,
    /// Per-page cost of pinning + IOMMU mapping during registration.
    pub pin_per_page: SimDuration,
    /// Per-page cost of unpinning + IOMMU unmapping.
    pub unpin_per_page: SimDuration,
    /// Pin-down-cache lookup cost (hit path).
    pub pindown_lookup: SimDuration,

    // --- Copying (bounce-buffer designs) ---
    /// Single-core memcpy bandwidth.
    pub memcpy_bandwidth: Bandwidth,

    // --- Driver misc ---
    /// Interrupt dispatch cost (any vector).
    pub interrupt_dispatch: SimDuration,
    /// Per-packet software cost of the backup-ring resolver (queue
    /// handling, bookkeeping), excluding the copy itself.
    pub backup_resolver_per_packet: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // 100 + 10 + 20 + 90 = 220 us for a 1-page minor fault;
            // + 1024 pages * (115 + 12) ns ≈ 350 us for 4 MB (Figure 3a).
            fault_trigger_hw: SimDuration::from_micros(100),
            driver_sw_base: SimDuration::from_micros(10),
            driver_sw_per_page: SimDuration::from_nanos(115),
            update_pt_base: SimDuration::from_micros(20),
            update_pt_per_page: SimDuration::from_nanos(12),
            resume_hw: SimDuration::from_micros(90),
            resume_hw_bypassed: SimDuration::from_micros(25),
            hw_jitter_sigma: 0.08,
            hw_outlier_probability: 0.004,
            hw_outlier_factor: 2.1,
            promote_2m_base: SimDuration::from_micros(15),
            demote_2m_base: SimDuration::from_micros(8),
            prefetch_issue_base: SimDuration::from_micros(2),
            // 5 + 15 + 5 = 25 us for a mapped 4 KB invalidation, ~65 us
            // at 4 MB (Figure 3b).
            inv_checks: SimDuration::from_micros(5),
            inv_update_pt_base: SimDuration::from_micros(15),
            inv_update_pt_per_page: SimDuration::from_nanos(35),
            inv_updates: SimDuration::from_micros(5),
            mr_register_base: SimDuration::from_micros(2),
            pin_per_page: SimDuration::from_nanos(270),
            unpin_per_page: SimDuration::from_nanos(200),
            pindown_lookup: SimDuration::from_nanos(150),
            memcpy_bandwidth: Bandwidth::gbps(40), // 5 GB/s per core
            interrupt_dispatch: SimDuration::from_micros(2),
            backup_resolver_per_packet: SimDuration::from_micros(1),
        }
    }
}

impl CostModel {
    /// Samples the breakdown of one NPF resolving `pages` pages.
    /// `os_cost` is the memory subsystem's own cost (zero-fill, swap-in,
    /// page-cache miss) measured by `memsim`; it lands in the driver
    /// component. `bypass` selects the fast resume path.
    pub fn npf(
        &self,
        pages: u64,
        os_cost: SimDuration,
        bypass: bool,
        rng: &mut SimRng,
    ) -> NpfBreakdown {
        let pages = pages.max(1);
        let resume = if bypass {
            self.resume_hw_bypassed
        } else {
            self.resume_hw
        };
        // Rare slow firmware path (the error-path circuitry is shared
        // and can be busy): stretches the hardware components, giving
        // Table 4 its ~2x max-over-median tail.
        let outlier = if rng.chance(self.hw_outlier_probability) {
            self.hw_outlier_factor
        } else {
            1.0
        };
        NpfBreakdown {
            trigger_interrupt: rng
                .lognormal_jitter(self.fault_trigger_hw, self.hw_jitter_sigma)
                .mul_f64(outlier),
            driver: self.driver_sw_base + self.driver_sw_per_page * pages + os_cost,
            update_hw_pt: rng.lognormal_jitter(
                self.update_pt_base + self.update_pt_per_page * pages,
                self.hw_jitter_sigma,
            ),
            resume: rng
                .lognormal_jitter(resume, self.hw_jitter_sigma)
                .mul_f64(outlier),
        }
    }

    /// The breakdown of invalidating `pages` pages; `was_mapped` is
    /// whether any IOMMU entry existed (unmapped invalidations skip the
    /// hardware update, Figure 3b).
    #[must_use]
    pub fn invalidation(&self, pages: u64, was_mapped: bool) -> InvalidationBreakdown {
        InvalidationBreakdown {
            checks: self.inv_checks,
            update_hw_pt: if was_mapped {
                self.inv_update_pt_base + self.inv_update_pt_per_page * pages.max(1)
            } else {
                SimDuration::ZERO
            },
            updates: self.inv_updates,
        }
    }

    /// Deterministic cost of promoting one chunk of 512 resident
    /// 4 KiB PTEs into a 2 MiB leaf. No jitter: promotion runs in
    /// driver context off the fault critical path.
    #[must_use]
    pub fn huge_promote(&self) -> SimDuration {
        self.promote_2m_base + self.update_pt_per_page * 512
    }

    /// Deterministic cost of demoting (splitting) one 2 MiB leaf back
    /// into 512 4 KiB PTEs.
    #[must_use]
    pub fn huge_demote(&self) -> SimDuration {
        self.demote_2m_base + self.update_pt_per_page * 512
    }

    /// Deterministic driver cost of issuing one speculative pre-fault
    /// covering `pages` pages. Speculative faults are driver-initiated
    /// (no NIC interrupt, no firmware resume), so only the software
    /// components apply and no RNG is drawn.
    #[must_use]
    pub fn prefetch_issue(&self, pages: u64) -> SimDuration {
        self.prefetch_issue_base + self.driver_sw_per_page * pages.max(1)
    }

    /// Cost of registering (pinning + mapping) `pages` pages.
    #[must_use]
    pub fn register_pinned(&self, pages: u64) -> SimDuration {
        self.mr_register_base + self.pin_per_page * pages
    }

    /// Cost of deregistering (unpinning + unmapping) `pages` pages.
    #[must_use]
    pub fn deregister_pinned(&self, pages: u64) -> SimDuration {
        self.unpin_per_page * pages
    }

    /// Cost of copying `bytes` with the CPU.
    #[must_use]
    pub fn memcpy(&self, bytes: u64) -> SimDuration {
        self.memcpy_bandwidth.transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minor_4kb_fault_near_220us() {
        let m = CostModel::default();
        let mut rng = SimRng::new(1);
        let mut total = 0f64;
        let n = 200;
        for _ in 0..n {
            total += m
                .npf(1, SimDuration::ZERO, false, &mut rng)
                .total()
                .as_micros_f64();
        }
        let avg = total / f64::from(n);
        assert!(
            (200.0..240.0).contains(&avg),
            "4 KB minor NPF should average ~220 us, got {avg:.1}"
        );
    }

    #[test]
    fn fault_4mb_near_350us_and_software_grows() {
        let m = CostModel::default();
        let mut rng = SimRng::new(2);
        let mut total = 0f64;
        let n = 200;
        for _ in 0..n {
            total += m
                .npf(1024, SimDuration::from_micros(0), false, &mut rng)
                .total()
                .as_micros_f64();
        }
        let avg = total / f64::from(n);
        assert!(
            (320.0..380.0).contains(&avg),
            "4 MB minor NPF should average ~350 us, got {avg:.1}"
        );
    }

    #[test]
    fn hardware_dominates_small_faults() {
        let m = CostModel::default();
        let mut rng = SimRng::new(3);
        let b = m.npf(1, SimDuration::ZERO, false, &mut rng);
        assert!(
            b.hardware_fraction() > 0.85,
            "paper: ~90% firmware, got {:.2}",
            b.hardware_fraction()
        );
    }

    #[test]
    fn bypass_resume_is_faster() {
        let m = CostModel::default();
        let mut r1 = SimRng::new(4);
        let mut r2 = SimRng::new(4);
        let slow = m.npf(1, SimDuration::ZERO, false, &mut r1);
        let fast = m.npf(1, SimDuration::ZERO, true, &mut r2);
        assert!(fast.total() < slow.total());
    }

    #[test]
    fn invalidation_costs_match_figure_3b() {
        let m = CostModel::default();
        let mapped_4k = m.invalidation(1, true).total();
        assert!(
            (20.0..30.0).contains(&mapped_4k.as_micros_f64()),
            "4 KB mapped invalidation ~25 us, got {mapped_4k}"
        );
        let mapped_4m = m.invalidation(1024, true).total();
        assert!(
            (55.0..75.0).contains(&mapped_4m.as_micros_f64()),
            "4 MB mapped invalidation ~60 us, got {mapped_4m}"
        );
        let unmapped = m.invalidation(1, false).total();
        assert!(unmapped < mapped_4k, "unmapped skips the hardware update");
    }

    #[test]
    fn registration_scales_with_pages() {
        let m = CostModel::default();
        assert!(m.register_pinned(1024) > m.register_pinned(1) * 100);
        assert!(m.deregister_pinned(10) < m.register_pinned(10));
    }

    #[test]
    fn huge_page_ops_are_deterministic_and_cheaper_than_a_fault() {
        let m = CostModel::default();
        // ~15 + 512*0.012 ≈ 21 us promote; ~8 + 6 ≈ 14 us demote.
        assert_eq!(m.huge_promote(), m.huge_promote());
        assert!((18.0..25.0).contains(&m.huge_promote().as_micros_f64()));
        assert!((10.0..18.0).contains(&m.huge_demote().as_micros_f64()));
        // Both are far below one 220 us NPF — the optimization pays off
        // after a single avoided fault.
        assert!(m.huge_promote().as_micros_f64() < 100.0);
    }

    #[test]
    fn prefetch_issue_is_software_only_cheap() {
        let m = CostModel::default();
        let one = m.prefetch_issue(1);
        let eight = m.prefetch_issue(8);
        assert_eq!(one, m.prefetch_issue(1), "no RNG involved");
        assert!(eight > one, "per-page component grows");
        // Orders of magnitude below the 220 us demand fault it hides.
        assert!(eight.as_micros_f64() < 10.0, "got {eight}");
    }

    #[test]
    fn memcpy_prices_by_bandwidth() {
        let m = CostModel::default();
        // 5 GB/s => 128 KiB ≈ 26 us.
        let t = m.memcpy(128 * 1024).as_micros_f64();
        assert!((20.0..35.0).contains(&t), "got {t}");
    }
}
