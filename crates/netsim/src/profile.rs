//! Typed fabric and transport configuration profiles.
//!
//! Scenario code used to reach into [`LinkConfig`] and chaos knobs
//! directly to make a fabric lossy; this module replaces that with two
//! small validated surfaces:
//!
//! * [`FabricProfile`] — what the *wire* does: random loss, PFC
//!   pause-frame flow control, ECN marking.
//! * [`TransportConfig`] — what the *endpoints* do about it: the RC
//!   loss-recovery discipline ([`RdmaTransport`]) and its BDP cap.
//!
//! Both are `#[non_exhaustive]` with chainable `with_*` setters, so new
//! knobs can be added without breaking scenario code. Whole-config
//! validation (e.g. "PFC requires a lossless wire") happens where the
//! profiles are folded into a scenario — `testbed::ScenarioBuilder` —
//! because only the scenario knows which combinations it supports.

use simcore::time::SimDuration;

use crate::link::LinkConfig;

/// Loss-recovery discipline of an RC QP (DESIGN §15).
///
/// * [`RdmaTransport::GoBackN`] is the paper's baseline: cumulative
///   ACKs, sequence-error NAKs, and full-window rewind on loss — the
///   behaviour real RC NICs implement and that the lossless-fabric
///   experiments assume.
/// * [`RdmaTransport::SelectiveRepeat`] is the IRN-style alternative
///   ("Revisiting Network Support for RDMA"): the receiver parks
///   out-of-order packets and advertises them in a cumulative +
///   selective ACK bitmap, the sender retransmits only the missing
///   PSNs, in-flight data is capped at a BDP's worth of packets, and
///   the retransmission timer backs off exponentially under repeated
///   loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RdmaTransport {
    /// Legacy RNR-NACK / go-back-N recovery (the default).
    #[default]
    GoBackN,
    /// IRN-style selective-repeat recovery.
    SelectiveRepeat,
}

impl RdmaTransport {
    /// Parses a command-line name (`gbn` or `irn`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "gbn" | "go-back-n" => Some(RdmaTransport::GoBackN),
            "irn" | "selective-repeat" => Some(RdmaTransport::SelectiveRepeat),
            _ => None,
        }
    }

    /// Stable short name (`gbn` / `irn`) for artifacts and flags.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RdmaTransport::GoBackN => "gbn",
            RdmaTransport::SelectiveRepeat => "irn",
        }
    }
}

impl std::fmt::Display for RdmaTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What the wire does to packets: the fabric-side half of a lossy-RDMA
/// scenario. The default is the paper's idealised lossless fabric — no
/// random loss, no PFC, no ECN — which keeps every legacy golden
/// byte-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct FabricProfile {
    /// Independent per-packet loss probability applied on every link
    /// hop. `0.0` is lossless.
    pub loss: f64,
    /// Priority flow control: when a switch egress queue backs up past
    /// [`FabricProfile::pfc_xoff`] bytes, the switch pauses every
    /// ingress (802.3x-style) until the queue drains below
    /// [`FabricProfile::pfc_xon`].
    pub pfc: bool,
    /// PFC XOFF threshold in bytes.
    pub pfc_xoff: u64,
    /// PFC XON (resume) threshold in bytes.
    pub pfc_xon: u64,
    /// ECN: mark instead of queueing silently once a packet's queue
    /// wait exceeds this threshold.
    pub ecn_threshold: Option<SimDuration>,
}

impl Default for FabricProfile {
    fn default() -> Self {
        FabricProfile {
            loss: 0.0,
            pfc: false,
            pfc_xoff: 256 * 1024,
            pfc_xon: 128 * 1024,
            ecn_threshold: None,
        }
    }
}

impl FabricProfile {
    /// The paper's lossless fabric (the default).
    #[must_use]
    pub fn lossless() -> Self {
        FabricProfile::default()
    }

    /// A lossless fabric with PFC armed at the default thresholds —
    /// the "RoCE done by the book" configuration IRN argues against.
    #[must_use]
    pub fn lossless_pfc() -> Self {
        FabricProfile::default().with_pfc(true)
    }

    /// A lossy fabric dropping each packet independently with
    /// probability `loss`.
    #[must_use]
    pub fn lossy(loss: f64) -> Self {
        FabricProfile::default().with_loss(loss)
    }

    /// Sets the per-packet loss probability.
    #[must_use]
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Arms or disarms PFC.
    #[must_use]
    pub fn with_pfc(mut self, pfc: bool) -> Self {
        self.pfc = pfc;
        self
    }

    /// Sets the PFC thresholds (XOFF above, XON below).
    #[must_use]
    pub fn with_pfc_thresholds(mut self, xoff: u64, xon: u64) -> Self {
        self.pfc_xoff = xoff;
        self.pfc_xon = xon;
        self
    }

    /// Sets the ECN marking threshold.
    #[must_use]
    pub fn with_ecn(mut self, threshold: Option<SimDuration>) -> Self {
        self.ecn_threshold = threshold;
        self
    }

    /// `true` when the profile departs from the idealised lossless
    /// default in any way.
    #[must_use]
    pub fn is_lossless_default(&self) -> bool {
        self.loss == 0.0 && !self.pfc && self.ecn_threshold.is_none()
    }

    /// Applies the wire-level knobs to a base [`LinkConfig`]. Topology
    /// builders call this on every link they create; the PFC half is
    /// applied by the fabric (it needs cross-link state).
    #[must_use]
    pub fn apply_link(&self, mut cfg: LinkConfig) -> LinkConfig {
        cfg.loss_probability = self.loss;
        cfg.ecn_threshold = self.ecn_threshold;
        cfg
    }

    /// Stable short label for artifacts (`lossless`, `pfc`, `loss0.1%`).
    #[must_use]
    pub fn label(&self) -> String {
        if self.pfc {
            "pfc".to_string()
        } else if self.loss > 0.0 {
            format!("loss{}%", self.loss * 100.0)
        } else {
            "lossless".to_string()
        }
    }
}

/// What the endpoints do about the wire: the transport-side half of a
/// lossy-RDMA scenario. Defaults to the legacy go-back-N discipline so
/// existing scenarios stay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct TransportConfig {
    /// RC loss-recovery discipline.
    pub transport: RdmaTransport,
    /// Bandwidth-delay-product cap on in-flight request packets,
    /// honoured only by [`RdmaTransport::SelectiveRepeat`].
    pub bdp_packets: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            transport: RdmaTransport::GoBackN,
            // 56 Gb/s × ~10 us RTT ≈ 70 KB ≈ 17 MTU packets; default to
            // a round 32 so a single QP can still fill a longer pipe.
            bdp_packets: 32,
        }
    }
}

impl TransportConfig {
    /// The IRN-style selective-repeat transport at the default BDP cap.
    #[must_use]
    pub fn irn() -> Self {
        TransportConfig::default().with_transport(RdmaTransport::SelectiveRepeat)
    }

    /// Sets the loss-recovery discipline.
    #[must_use]
    pub fn with_transport(mut self, transport: RdmaTransport) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the BDP cap in packets.
    #[must_use]
    pub fn with_bdp_packets(mut self, bdp_packets: u64) -> Self {
        self.bdp_packets = bdp_packets;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::Bandwidth;

    #[test]
    fn transport_names_round_trip() {
        for t in [RdmaTransport::GoBackN, RdmaTransport::SelectiveRepeat] {
            assert_eq!(RdmaTransport::from_name(t.name()), Some(t));
        }
        assert_eq!(
            RdmaTransport::from_name("selective-repeat"),
            Some(RdmaTransport::SelectiveRepeat)
        );
        assert_eq!(RdmaTransport::from_name("bogus"), None);
    }

    #[test]
    fn default_profile_is_lossless_and_transparent() {
        let p = FabricProfile::default();
        assert!(p.is_lossless_default());
        let base = LinkConfig::datacenter(Bandwidth::gbps(56));
        let applied = p.apply_link(base);
        assert_eq!(applied.loss_probability, base.loss_probability);
        assert_eq!(applied.ecn_threshold, base.ecn_threshold);
        assert_eq!(p.label(), "lossless");
    }

    #[test]
    fn lossy_profile_applies_to_links() {
        let p = FabricProfile::lossy(0.01).with_ecn(Some(SimDuration::from_micros(10)));
        assert!(!p.is_lossless_default());
        let applied = p.apply_link(LinkConfig::datacenter(Bandwidth::gbps(56)));
        assert_eq!(applied.loss_probability, 0.01);
        assert_eq!(applied.ecn_threshold, Some(SimDuration::from_micros(10)));
        assert_eq!(p.label(), "loss1%");
    }

    #[test]
    fn builder_chains() {
        let t = TransportConfig::irn().with_bdp_packets(8);
        assert_eq!(t.transport, RdmaTransport::SelectiveRepeat);
        assert_eq!(t.bdp_packets, 8);
        assert_eq!(
            FabricProfile::lossless_pfc()
                .with_pfc_thresholds(1000, 500)
                .pfc_xon,
            500
        );
    }
}
