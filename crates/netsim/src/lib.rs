//! # netsim — simulated network fabric
//!
//! Links with serialization, propagation, bounded queues, tail-drop,
//! ECN marking, random loss injection, and 802.3x pause frames; fabrics
//! composing them back-to-back (the paper's Ethernet testbed) or through
//! a switch (the InfiniBand cluster).
//!
//! Everything is sans-IO: offering a packet returns the arrival time (or
//! a drop), and the caller schedules the delivery event on its
//! [`simcore::event::EventQueue`].
//!
//! # Examples
//!
//! ```
//! use netsim::{Fabric, LinkConfig, NodeId, SendOutcome};
//! use simcore::{SimRng, SimTime, Bandwidth};
//!
//! let mut rng = SimRng::new(1);
//! let mut fabric =
//!     Fabric::back_to_back(LinkConfig::datacenter(Bandwidth::gbps(12)), &mut rng);
//! match fabric.send(SimTime::ZERO, NodeId(0), NodeId(1), 1500) {
//!     SendOutcome::Delivered { arrives_at, .. } => assert!(arrives_at > SimTime::ZERO),
//!     SendOutcome::Dropped => unreachable!("empty queue cannot drop"),
//! }
//! ```

pub mod fabric;
pub mod link;
pub mod packet;
pub mod profile;

pub use fabric::Fabric;
pub use link::{Link, LinkConfig, SendOutcome};
pub use packet::{NodeId, Packet};
pub use profile::{FabricProfile, RdmaTransport, TransportConfig};
