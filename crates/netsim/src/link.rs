//! Point-to-point links.
//!
//! A [`Link`] is a unidirectional transmitter with a serialization rate,
//! propagation delay, and a bounded output queue. It is sans-IO: sending
//! returns the arrival time (or a drop/mark decision) and the caller
//! schedules the delivery event.
//!
//! The link also models IEEE 802.3x **pause frames**: while paused, the
//! transmitter holds packets (the paper's Ethernet testbed enables flow
//! control to mask the 40 Gb/s-to-12 Gb/s asymmetry, §6, and §3 explains
//! why link-level flow control alone cannot solve rNPFs: it blocks
//! *every* stream, not just the faulting one).

use std::collections::VecDeque;

use simcore::journal;
use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};
use simcore::units::Bandwidth;

/// Configuration of one link direction.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Serialization rate.
    pub bandwidth: Bandwidth,
    /// Propagation delay.
    pub propagation: SimDuration,
    /// Output queue capacity in bytes; the queue is measured as the
    /// backlog of bytes not yet serialized. Tail-drop beyond this.
    pub queue_capacity: u64,
    /// When `Some(threshold)`, packets that would wait longer than
    /// `threshold` in the queue are ECN-marked instead of dropped (until
    /// the hard capacity is hit).
    pub ecn_threshold: Option<SimDuration>,
    /// Random independent loss probability (for fault injection).
    pub loss_probability: f64,
}

impl LinkConfig {
    /// A typical short data-center cable at the given rate.
    #[must_use]
    pub fn datacenter(bandwidth: Bandwidth) -> Self {
        LinkConfig {
            bandwidth,
            propagation: SimDuration::from_micros(1),
            queue_capacity: 512 * 1024,
            ecn_threshold: None,
            loss_probability: 0.0,
        }
    }
}

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Accepted; it arrives at the far end at the given time. The flag
    /// reports whether the queue ECN-marked it.
    Delivered {
        /// Arrival instant at the receiver.
        arrives_at: SimTime,
        /// ECN congestion-experienced mark.
        ecn_marked: bool,
    },
    /// Tail-dropped: the queue was full.
    Dropped,
}

/// One direction of a network link.
#[derive(Debug)]
pub struct Link {
    config: LinkConfig,
    /// Time at which the transmitter finishes everything already queued.
    horizon: SimTime,
    /// Pause (802.3x) expiry; the transmitter is silent until then.
    paused_until: SimTime,
    /// Accepted packets not yet fully serialized:
    /// `(serialization_done, bytes)` in departure order.
    queue: VecDeque<(SimTime, u64)>,
    /// Bytes currently in `queue`.
    queued_bytes: u64,
    rng: SimRng,
    sent_packets: u64,
    sent_bytes: u64,
    dropped_packets: u64,
    marked_packets: u64,
}

impl Link {
    /// Creates a link. `rng` drives random loss only; a link with
    /// `loss_probability == 0` never consults it.
    #[must_use]
    pub fn new(config: LinkConfig, rng: SimRng) -> Self {
        Link {
            config,
            horizon: SimTime::ZERO,
            paused_until: SimTime::ZERO,
            queue: VecDeque::new(),
            queued_bytes: 0,
            rng,
            sent_packets: 0,
            sent_bytes: 0,
            dropped_packets: 0,
            marked_packets: 0,
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Packets accepted so far.
    #[must_use]
    pub fn sent_packets(&self) -> u64 {
        self.sent_packets
    }

    /// Bytes accepted so far.
    #[must_use]
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// Packets tail-dropped so far.
    #[must_use]
    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    /// Packets ECN-marked so far.
    #[must_use]
    pub fn marked_packets(&self) -> u64 {
        self.marked_packets
    }

    /// Current queue backlog in bytes at `now`: actual bytes of packets
    /// admitted but not yet fully serialized (pause time does not
    /// fabricate backlog; real buffered frames do).
    #[must_use]
    pub fn backlog_bytes(&self, now: SimTime) -> u64 {
        self.queue
            .iter()
            .filter(|&&(done, _)| done > now)
            .map(|&(_, b)| b)
            .sum()
    }

    /// Earliest instant at which the backlog has drained to at most
    /// `target` bytes, assuming nothing else is enqueued. Returns
    /// [`SimTime::ZERO`] when it is already there. The PFC machinery
    /// uses this to size pause frames: pause until the congested queue
    /// crosses back below XON.
    #[must_use]
    pub fn drains_below(&self, target: u64) -> SimTime {
        let mut remaining = self.queued_bytes;
        if remaining <= target {
            return SimTime::ZERO;
        }
        for &(done, bytes) in &self.queue {
            remaining -= bytes;
            if remaining <= target {
                return done;
            }
        }
        SimTime::ZERO
    }

    fn drain_queue(&mut self, now: SimTime) {
        while let Some(&(done, bytes)) = self.queue.front() {
            if done > now {
                break;
            }
            self.queue.pop_front();
            self.queued_bytes -= bytes;
        }
    }

    fn effective_horizon(&self) -> SimTime {
        if self.paused_until > self.horizon {
            self.paused_until
        } else {
            self.horizon
        }
    }

    /// Pauses the transmitter until `until` (an 802.3x pause frame from
    /// the receiver). Extends any pause already in force.
    pub fn pause_until(&mut self, until: SimTime) {
        if until > self.paused_until {
            self.paused_until = until;
        }
    }

    /// Lifts a pause immediately (a zero-quanta pause frame).
    pub fn unpause(&mut self, now: SimTime) {
        self.paused_until = now;
    }

    /// `true` while a pause is in force at `now`.
    #[must_use]
    pub fn is_paused(&self, now: SimTime) -> bool {
        self.paused_until > now
    }

    /// Offers a packet of `size_bytes` at `now`.
    pub fn send(&mut self, now: SimTime, size_bytes: u64) -> SendOutcome {
        if self.config.loss_probability > 0.0 && self.rng.chance(self.config.loss_probability) {
            self.dropped_packets += 1;
            return SendOutcome::Dropped;
        }
        self.drain_queue(now);
        if self.queued_bytes + size_bytes > self.config.queue_capacity {
            self.dropped_packets += 1;
            return SendOutcome::Dropped;
        }
        let natural_start = self.horizon.max(now);
        let start = self.effective_horizon().max(now);
        // A pause frame (802.3x/PFC or chaos-injected) is holding the
        // transmitter beyond its natural serialization horizon: journal
        // the stall as a standalone tile-exact slice.
        if start > natural_start {
            journal::wait_event(journal::Phase::PauseWait, natural_start, start);
        }
        let wait = start.saturating_since(now);
        let mut ecn_marked = false;
        if let Some(threshold) = self.config.ecn_threshold {
            if wait > threshold {
                ecn_marked = true;
                self.marked_packets += 1;
            }
        }
        let tx = self.config.bandwidth.transfer_time(size_bytes);
        let departure = start + tx;
        self.horizon = departure;
        self.queue.push_back((departure, size_bytes));
        self.queued_bytes += size_bytes;
        self.sent_packets += 1;
        self.sent_bytes += size_bytes;
        let arrives_at = departure + self.config.propagation;
        // Causal journal: the packet's arrival instant is where every
        // fault chain it triggers begins.
        journal::mark_at(arrives_at, journal::MarkKind::PacketArrival, size_bytes);
        SendOutcome::Delivered {
            arrives_at,
            ecn_marked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(bw_gbps: u64) -> Link {
        Link::new(
            LinkConfig::datacenter(Bandwidth::gbps(bw_gbps)),
            SimRng::new(1),
        )
    }

    #[test]
    fn single_packet_timing() {
        let mut l = link(10);
        // 1250 bytes at 10 Gb/s = 1 us serialization + 1 us propagation.
        let out = l.send(SimTime::ZERO, 1250);
        assert_eq!(
            out,
            SendOutcome::Delivered {
                arrives_at: SimTime::from_micros(2),
                ecn_marked: false
            }
        );
    }

    #[test]
    fn back_to_back_packets_serialize() {
        let mut l = link(10);
        l.send(SimTime::ZERO, 1250);
        let out = l.send(SimTime::ZERO, 1250);
        // Second packet waits for the first: 2 us tx + 1 us prop.
        assert_eq!(
            out,
            SendOutcome::Delivered {
                arrives_at: SimTime::from_micros(3),
                ecn_marked: false
            }
        );
        assert_eq!(l.sent_packets(), 2);
        assert_eq!(l.sent_bytes(), 2500);
    }

    #[test]
    fn queue_overflow_drops() {
        let mut cfg = LinkConfig::datacenter(Bandwidth::gbps(1));
        cfg.queue_capacity = 3000;
        let mut l = Link::new(cfg, SimRng::new(1));
        assert!(matches!(
            l.send(SimTime::ZERO, 1500),
            SendOutcome::Delivered { .. }
        ));
        assert!(matches!(
            l.send(SimTime::ZERO, 1500),
            SendOutcome::Delivered { .. }
        ));
        // Backlog now 1500 (first is "serializing", second queued fully):
        // a third 1500-byte frame exceeds 3000 bytes of queue.
        let out = l.send(SimTime::ZERO, 1500);
        assert_eq!(out, SendOutcome::Dropped);
        assert_eq!(l.dropped_packets(), 1);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut cfg = LinkConfig::datacenter(Bandwidth::gbps(1));
        cfg.queue_capacity = 3000;
        let mut l = Link::new(cfg, SimRng::new(1));
        l.send(SimTime::ZERO, 1500);
        l.send(SimTime::ZERO, 1500);
        assert!(l.backlog_bytes(SimTime::ZERO) > 0);
        // After both serialize (24 us at 1 Gb/s), the queue is empty again.
        let later = SimTime::from_micros(30);
        assert_eq!(l.backlog_bytes(later), 0);
        assert!(matches!(l.send(later, 1500), SendOutcome::Delivered { .. }));
    }

    #[test]
    fn pause_defers_transmission() {
        let mut l = link(10);
        l.pause_until(SimTime::from_micros(100));
        assert!(l.is_paused(SimTime::ZERO));
        let out = l.send(SimTime::ZERO, 1250);
        assert_eq!(
            out,
            SendOutcome::Delivered {
                arrives_at: SimTime::from_micros(102),
                ecn_marked: false
            }
        );
        // Unpause releases immediately for subsequent sends.
        l.unpause(SimTime::from_micros(102));
        assert!(!l.is_paused(SimTime::from_micros(102)));
    }

    #[test]
    fn pause_does_not_shrink() {
        let mut l = link(10);
        l.pause_until(SimTime::from_micros(100));
        l.pause_until(SimTime::from_micros(50));
        assert!(l.is_paused(SimTime::from_micros(75)));
    }

    #[test]
    fn ecn_marks_when_congested() {
        let mut cfg = LinkConfig::datacenter(Bandwidth::gbps(1));
        cfg.queue_capacity = 1 << 20;
        cfg.ecn_threshold = Some(SimDuration::from_micros(10));
        let mut l = Link::new(cfg, SimRng::new(1));
        let mut marked = false;
        for _ in 0..20 {
            if let SendOutcome::Delivered { ecn_marked, .. } = l.send(SimTime::ZERO, 1500) {
                marked |= ecn_marked;
            }
        }
        assert!(marked, "sustained backlog must trigger ECN");
        assert!(l.marked_packets() > 0);
    }

    #[test]
    fn random_loss_drops_some() {
        let mut cfg = LinkConfig::datacenter(Bandwidth::gbps(100));
        cfg.loss_probability = 0.5;
        let mut l = Link::new(cfg, SimRng::new(42));
        let mut t = SimTime::ZERO;
        let mut drops = 0;
        for _ in 0..1000 {
            if l.send(t, 100) == SendOutcome::Dropped {
                drops += 1;
            }
            t += SimDuration::from_micros(1);
        }
        assert!((300..700).contains(&drops), "drops {drops} out of range");
    }
}
