//! Network packets and node addressing.
//!
//! Packets carry a byte *size* (which drives serialization and queueing)
//! and a typed, simulation-level *payload* — no real wire encoding. The
//! fabric layers are generic over the payload so the same links and
//! switches carry TCP segments, RoCE/InfiniBand packets, or raw test
//! traffic.

use std::fmt;

/// Identifier of a host/NIC attached to a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A packet in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet<P> {
    /// Sender.
    pub src: NodeId,
    /// Destination.
    pub dst: NodeId,
    /// On-wire size in bytes, including headers.
    pub size_bytes: u64,
    /// Explicit congestion notification mark (set by queues when
    /// ECN-enabled and congested).
    pub ecn_marked: bool,
    /// Simulation payload.
    pub payload: P,
}

impl<P> Packet<P> {
    /// Creates an unmarked packet.
    pub fn new(src: NodeId, dst: NodeId, size_bytes: u64, payload: P) -> Self {
        Packet {
            src,
            dst,
            size_bytes,
            ecn_marked: false,
            payload,
        }
    }

    /// Maps the payload type, keeping addressing and size.
    pub fn map<Q>(self, f: impl FnOnce(P) -> Q) -> Packet<Q> {
        Packet {
            src: self.src,
            dst: self.dst,
            size_bytes: self.size_bytes,
            ecn_marked: self.ecn_marked,
            payload: f(self.payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_defaults() {
        let p = Packet::new(NodeId(0), NodeId(1), 1500, "data");
        assert!(!p.ecn_marked);
        assert_eq!(p.size_bytes, 1500);
    }

    #[test]
    fn map_preserves_envelope() {
        let p = Packet::new(NodeId(0), NodeId(1), 64, 7u32).map(|n| n * 2);
        assert_eq!(p.payload, 14);
        assert_eq!(p.dst, NodeId(1));
    }
}
