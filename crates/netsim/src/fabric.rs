//! Fabric topologies: back-to-back cables and a star through a switch.
//!
//! The paper's Ethernet testbed is two servers connected back-to-back;
//! the InfiniBand testbed is eight servers through a SwitchX-2. A
//! [`Fabric`] owns the links and computes end-to-end delivery times,
//! store-and-forward through the switch.

use std::collections::HashMap;

use simcore::chaos::{ChaosEngine, PacketFate};
use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};

use crate::link::{Link, LinkConfig, SendOutcome};
use crate::packet::NodeId;

/// Outcome of a [`Fabric::send_chaos`]: a [`SendOutcome`] enriched with
/// the injected fault, so the caller can model CRC-discarded corruption
/// and schedule duplicate deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosSendOutcome {
    /// The packet is gone — either the fabric's own queue overflowed
    /// (`injected == false`) or chaos dropped it (`injected == true`).
    Dropped {
        /// `true` when the drop was fault-injected rather than organic.
        injected: bool,
    },
    /// The packet arrives (possibly late, corrupted, or twice).
    Delivered {
        /// Delivery time, including any injected reorder delay.
        arrives_at: SimTime,
        /// ECN mark from the traversed links.
        ecn_marked: bool,
        /// The payload was corrupted in flight: the receiver's CRC
        /// check must discard it on arrival.
        corrupted: bool,
        /// When set, a duplicate copy also arrives at this later time.
        duplicate_at: Option<SimTime>,
    },
}

/// Topology of a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Topology {
    /// Two nodes, one cable.
    BackToBack,
    /// All nodes connected to one switch.
    Star {
        /// Store-and-forward latency of the switch.
        switch_latency: SimDuration,
    },
}

/// A network fabric connecting a fixed set of nodes.
#[derive(Debug)]
pub struct Fabric {
    topology: Topology,
    nodes: u32,
    /// For back-to-back: key (from, to). For star: uplinks keyed
    /// (from, SWITCH) and downlinks keyed (SWITCH, to).
    links: HashMap<(u32, u32), Link>,
    /// Packets dropped by fault injection.
    chaos_drops: u64,
    /// PFC thresholds `(xoff, xon)` in bytes, when armed. On a star,
    /// a switch egress queue backing up past `xoff` pauses every
    /// uplink until the queue drains below `xon`.
    pfc: Option<(u64, u64)>,
    /// PFC pause frames the switch has emitted.
    pfc_pauses: u64,
}

const SWITCH: u32 = u32::MAX;

impl Fabric {
    /// Two nodes (`NodeId(0)`, `NodeId(1)`) connected directly.
    #[must_use]
    pub fn back_to_back(config: LinkConfig, rng: &mut SimRng) -> Self {
        let mut links = HashMap::new();
        links.insert((0, 1), Link::new(config, rng.fork(0x01)));
        links.insert((1, 0), Link::new(config, rng.fork(0x10)));
        Fabric {
            topology: Topology::BackToBack,
            nodes: 2,
            links,
            chaos_drops: 0,
            pfc: None,
            pfc_pauses: 0,
        }
    }

    /// `nodes` nodes connected through one switch.
    #[must_use]
    pub fn star(
        config: LinkConfig,
        nodes: u32,
        switch_latency: SimDuration,
        rng: &mut SimRng,
    ) -> Self {
        let mut links = HashMap::new();
        for n in 0..nodes {
            links.insert((n, SWITCH), Link::new(config, rng.fork(u64::from(n) * 2)));
            links.insert(
                (SWITCH, n),
                Link::new(config, rng.fork(u64::from(n) * 2 + 1)),
            );
        }
        Fabric {
            topology: Topology::Star { switch_latency },
            nodes,
            links,
            chaos_drops: 0,
            pfc: None,
            pfc_pauses: 0,
        }
    }

    /// Arms PFC with the given `(xoff, xon)` byte thresholds: once a
    /// switch egress queue backs up past `xoff`, the switch pauses
    /// every ingress until it drains below `xon`. Star topologies only
    /// (back-to-back has no shared switch queue to protect); a no-op
    /// there.
    pub fn set_pfc(&mut self, xoff: u64, xon: u64) {
        if matches!(self.topology, Topology::Star { .. }) {
            self.pfc = Some((xoff, xon.min(xoff)));
        }
    }

    /// PFC pause frames emitted by the switch so far.
    #[must_use]
    pub fn pfc_pauses(&self) -> u64 {
        self.pfc_pauses
    }

    /// Number of attached nodes.
    #[must_use]
    pub fn node_count(&self) -> u32 {
        self.nodes
    }

    /// Sends `size_bytes` from `from` to `to` at `now`, returning the
    /// end-to-end outcome.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are unknown or equal.
    pub fn send(&mut self, now: SimTime, from: NodeId, to: NodeId, size_bytes: u64) -> SendOutcome {
        assert_ne!(from, to, "loopback is not modelled");
        assert!(from.0 < self.nodes && to.0 < self.nodes, "unknown node");
        match self.topology {
            Topology::BackToBack => {
                let link = self.links.get_mut(&(from.0, to.0)).expect("link exists");
                link.send(now, size_bytes)
            }
            Topology::Star { switch_latency } => {
                let up = self.links.get_mut(&(from.0, SWITCH)).expect("uplink");
                match up.send(now, size_bytes) {
                    SendOutcome::Dropped => SendOutcome::Dropped,
                    SendOutcome::Delivered {
                        arrives_at,
                        ecn_marked,
                    } => {
                        let offered_at = arrives_at + switch_latency;
                        let down = self.links.get_mut(&(SWITCH, to.0)).expect("downlink");
                        let outcome = match down.send(offered_at, size_bytes) {
                            SendOutcome::Dropped => SendOutcome::Dropped,
                            SendOutcome::Delivered {
                                arrives_at,
                                ecn_marked: m2,
                            } => SendOutcome::Delivered {
                                arrives_at,
                                ecn_marked: ecn_marked || m2,
                            },
                        };
                        // PFC: the egress queue toward `to` crossed
                        // XOFF — pause every ingress until it drains
                        // below XON. Head-of-line blocking for every
                        // sender is the point (§3: link-level flow
                        // control stalls *all* streams, not just the
                        // congested one).
                        if let Some((xoff, xon)) = self.pfc {
                            let down = self.links.get_mut(&(SWITCH, to.0)).expect("downlink");
                            if down.backlog_bytes(offered_at) > xoff {
                                let resume = down.drains_below(xon);
                                if resume > offered_at {
                                    self.pfc_pauses += 1;
                                    for n in 0..self.nodes {
                                        self.links
                                            .get_mut(&(n, SWITCH))
                                            .expect("uplink")
                                            .pause_until(resume);
                                    }
                                }
                            }
                        }
                        outcome
                    }
                }
            }
        }
    }

    /// Sends with fault injection: one [`PacketFate`] is drawn from the
    /// chaos engine's packet stream and applied on top of the fabric's
    /// organic behaviour (queue drops, ECN marks still happen).
    pub fn send_chaos(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        size_bytes: u64,
        chaos: &mut ChaosEngine,
    ) -> ChaosSendOutcome {
        let fate = chaos.packet_fate();
        if fate == PacketFate::Drop {
            self.chaos_drops += 1;
            return ChaosSendOutcome::Dropped { injected: true };
        }
        match self.send(now, from, to, size_bytes) {
            SendOutcome::Dropped => ChaosSendOutcome::Dropped { injected: false },
            SendOutcome::Delivered {
                arrives_at,
                ecn_marked,
            } => {
                let (arrives_at, corrupted, duplicate_at) = match fate {
                    PacketFate::Deliver | PacketFate::Drop => (arrives_at, false, None),
                    PacketFate::Corrupt => (arrives_at, true, None),
                    PacketFate::Duplicate { extra } => {
                        (arrives_at, false, Some(arrives_at + extra))
                    }
                    PacketFate::Reorder { extra } => (arrives_at + extra, false, None),
                };
                ChaosSendOutcome::Delivered {
                    arrives_at,
                    ecn_marked,
                    corrupted,
                    duplicate_at,
                }
            }
        }
    }

    /// Packets dropped by fault injection (not counted in
    /// [`Fabric::total_drops`], which tracks organic queue drops).
    #[must_use]
    pub fn chaos_drops(&self) -> u64 {
        self.chaos_drops
    }

    /// Pauses all transmission *toward* `node` until `until` (802.3x
    /// pause emitted by `node`). On a star this pauses the switch's
    /// downlink; back-to-back it pauses the peer.
    pub fn pause_toward(&mut self, node: NodeId, until: SimTime) {
        match self.topology {
            Topology::BackToBack => {
                let peer = 1 - node.0;
                self.links
                    .get_mut(&(peer, node.0))
                    .expect("link exists")
                    .pause_until(until);
            }
            Topology::Star { .. } => {
                self.links
                    .get_mut(&(SWITCH, node.0))
                    .expect("downlink")
                    .pause_until(until);
            }
        }
    }

    /// Total drops across all links.
    #[must_use]
    pub fn total_drops(&self) -> u64 {
        self.links.values().map(Link::dropped_packets).sum()
    }

    /// Total packets accepted across all links (a star counts both hops).
    #[must_use]
    pub fn total_sent(&self) -> u64 {
        self.links.values().map(Link::sent_packets).sum()
    }

    /// Total ECN-marked packets across all links.
    #[must_use]
    pub fn total_marked(&self) -> u64 {
        self.links.values().map(Link::marked_packets).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::Bandwidth;

    fn rng() -> SimRng {
        SimRng::new(7)
    }

    #[test]
    fn back_to_back_delivery() {
        let mut r = rng();
        let mut f = Fabric::back_to_back(LinkConfig::datacenter(Bandwidth::gbps(10)), &mut r);
        let out = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 1250);
        assert_eq!(
            out,
            SendOutcome::Delivered {
                arrives_at: SimTime::from_micros(2),
                ecn_marked: false
            }
        );
    }

    #[test]
    fn directions_are_independent() {
        let mut r = rng();
        let mut f = Fabric::back_to_back(LinkConfig::datacenter(Bandwidth::gbps(10)), &mut r);
        // Saturate 0 -> 1; the reverse path is unaffected.
        for _ in 0..100 {
            f.send(SimTime::ZERO, NodeId(0), NodeId(1), 1250);
        }
        let out = f.send(SimTime::ZERO, NodeId(1), NodeId(0), 1250);
        assert_eq!(
            out,
            SendOutcome::Delivered {
                arrives_at: SimTime::from_micros(2),
                ecn_marked: false
            }
        );
    }

    #[test]
    fn star_adds_switch_hop() {
        let mut r = rng();
        let mut f = Fabric::star(
            LinkConfig::datacenter(Bandwidth::gbps(56)),
            8,
            SimDuration::from_nanos(200),
            &mut r,
        );
        let SendOutcome::Delivered { arrives_at, .. } =
            f.send(SimTime::ZERO, NodeId(0), NodeId(7), 4096)
        else {
            panic!("delivered");
        };
        // Two serializations (585 ns each), two propagations (1 us each),
        // one switch latency (200 ns).
        assert_eq!(
            arrives_at,
            SimTime::from_nanos(585 + 1000 + 200 + 585 + 1000)
        );
    }

    #[test]
    fn star_isolates_disjoint_pairs() {
        let mut r = rng();
        let mut f = Fabric::star(
            LinkConfig::datacenter(Bandwidth::gbps(56)),
            4,
            SimDuration::from_nanos(200),
            &mut r,
        );
        for _ in 0..50 {
            f.send(SimTime::ZERO, NodeId(0), NodeId(1), 4096);
        }
        let congested = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 4096);
        let clean = f.send(SimTime::ZERO, NodeId(2), NodeId(3), 4096);
        let (
            SendOutcome::Delivered { arrives_at: t1, .. },
            SendOutcome::Delivered { arrives_at: t2, .. },
        ) = (congested, clean)
        else {
            panic!("both delivered");
        };
        assert!(t2 < t1, "disjoint pair must not queue behind the busy one");
    }

    #[test]
    fn pause_toward_blocks_last_hop() {
        let mut r = rng();
        let mut f = Fabric::back_to_back(LinkConfig::datacenter(Bandwidth::gbps(10)), &mut r);
        f.pause_toward(NodeId(1), SimTime::from_micros(50));
        let SendOutcome::Delivered { arrives_at, .. } =
            f.send(SimTime::ZERO, NodeId(0), NodeId(1), 1250)
        else {
            panic!("delivered");
        };
        assert!(arrives_at >= SimTime::from_micros(51));
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_rejected() {
        let mut r = rng();
        let mut f = Fabric::back_to_back(LinkConfig::datacenter(Bandwidth::gbps(10)), &mut r);
        f.send(SimTime::ZERO, NodeId(0), NodeId(0), 64);
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use simcore::chaos::{ChaosConfig, ChaosProfile};
    use simcore::units::Bandwidth;

    #[test]
    fn chaos_send_replays_per_seed() {
        let run = |seed: u64| {
            let mut r = SimRng::new(11);
            let mut f = Fabric::back_to_back(LinkConfig::datacenter(Bandwidth::gbps(10)), &mut r);
            let mut chaos = ChaosEngine::new(ChaosConfig::profile(ChaosProfile::Network, seed));
            (0..300)
                .map(|i| {
                    f.send_chaos(
                        SimTime::from_micros(i * 10),
                        NodeId(0),
                        NodeId(1),
                        1250,
                        &mut chaos,
                    )
                })
                .collect::<Vec<ChaosSendOutcome>>()
        };
        assert_eq!(run(5), run(5), "same seed, same fault schedule");
        assert_ne!(run(5), run(6), "different seeds diverge");
    }

    #[test]
    fn chaos_profile_exercises_every_packet_fault() {
        let mut r = SimRng::new(11);
        let mut f = Fabric::back_to_back(LinkConfig::datacenter(Bandwidth::gbps(10)), &mut r);
        let mut chaos = ChaosEngine::new(ChaosConfig::profile(ChaosProfile::Network, 3));
        let mut corrupted = 0;
        let mut duplicated = 0;
        for i in 0..2000u64 {
            match f.send_chaos(
                SimTime::from_micros(i * 10),
                NodeId(0),
                NodeId(1),
                1250,
                &mut chaos,
            ) {
                ChaosSendOutcome::Delivered {
                    corrupted: c,
                    duplicate_at,
                    ..
                } => {
                    corrupted += u64::from(c);
                    duplicated += u64::from(duplicate_at.is_some());
                }
                ChaosSendOutcome::Dropped { .. } => {}
            }
        }
        assert!(f.chaos_drops() > 0, "drops injected");
        assert!(corrupted > 0, "corruption injected");
        assert!(duplicated > 0, "duplicates injected");
        assert!(chaos.counters().get("net_reorder") > 0, "reorder injected");
    }
}

#[cfg(test)]
mod star_pause_tests {
    use super::*;
    use simcore::units::Bandwidth;

    #[test]
    fn pause_toward_star_node_blocks_only_its_downlink() {
        let mut r = SimRng::new(3);
        let mut f = Fabric::star(
            LinkConfig::datacenter(Bandwidth::gbps(56)),
            4,
            SimDuration::from_nanos(200),
            &mut r,
        );
        f.pause_toward(NodeId(1), SimTime::from_micros(100));
        let SendOutcome::Delivered {
            arrives_at: paused, ..
        } = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 4096)
        else {
            panic!("delivered")
        };
        let SendOutcome::Delivered {
            arrives_at: clear, ..
        } = f.send(SimTime::ZERO, NodeId(0), NodeId(2), 4096)
        else {
            panic!("delivered")
        };
        assert!(paused >= SimTime::from_micros(100), "paused path waits");
        assert!(
            clear < SimTime::from_micros(10),
            "other nodes are unaffected: {clear}"
        );
    }

    #[test]
    fn pfc_incast_pauses_every_uplink() {
        let mut r = SimRng::new(3);
        let mut cfg = LinkConfig::datacenter(Bandwidth::gbps(10));
        cfg.queue_capacity = 1 << 30;
        let mut f = Fabric::star(cfg, 4, SimDuration::from_nanos(200), &mut r);
        f.set_pfc(8 * 1024, 4 * 1024);
        // Incast: three senders blast node 3's downlink until its queue
        // crosses XOFF.
        for _ in 0..10 {
            for src in 0..3 {
                f.send(SimTime::ZERO, NodeId(src), NodeId(3), 4096);
            }
        }
        assert!(f.pfc_pauses() > 0, "XOFF must have tripped");
        // An innocent-bystander flow (0 -> 1) now stalls behind the
        // pause: head-of-line blocking, the IRN argument against PFC.
        let SendOutcome::Delivered { arrives_at, .. } =
            f.send(SimTime::from_micros(50), NodeId(0), NodeId(1), 64)
        else {
            panic!("delivered");
        };
        // Unpaused it would land at ~52.3 us; instead it waits for the
        // congested downlink to drain below XON (~90 us).
        assert!(
            arrives_at > SimTime::from_micros(60),
            "bystander must queue behind the pause: {arrives_at}"
        );
    }

    #[test]
    fn pfc_is_inert_back_to_back() {
        let mut r = SimRng::new(7);
        let mut f = Fabric::back_to_back(LinkConfig::datacenter(Bandwidth::gbps(10)), &mut r);
        f.set_pfc(1, 0);
        for _ in 0..50 {
            f.send(SimTime::ZERO, NodeId(0), NodeId(1), 1250);
        }
        assert_eq!(f.pfc_pauses(), 0);
    }
}
