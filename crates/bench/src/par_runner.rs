//! Deterministic parallel experiment runner.
//!
//! Every experiment point (a figure, a table, an ablation, a chaos
//! sweep cell) is an independent deterministic island: it builds its
//! own testbeds, owns its own seeds, and never shares mutable state
//! with its siblings. The per-thread [`simcore::trace`] recorder and
//! [`simcore::chaos`] invariant checker make that isolation literal, so
//! points can fan out across `std::thread` workers and still produce
//! **byte-identical** output to a serial run:
//!
//! * each task runs with its *own* freshly installed recorder/checker,
//!   regardless of which worker thread picks it up;
//! * results are merged strictly in task order after all workers join —
//!   reports print in task order, per-task trace rings are
//!   [`TraceRecorder::absorb`]ed in task order (re-basing span ids onto
//!   one id space), metrics registries fold counter-by-counter;
//! * nothing about scheduling, core count, or `--jobs` reaches the
//!   output.
//!
//! The runner is what `--jobs N` on the bench binaries plugs into (see
//! [`crate::tracectl`]); `tests/par_determinism.rs` pins the
//! serial-vs-parallel equivalence down, including under chaos.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use simcore::chaos::{invariant, ChaosConfig, InvariantChecker};
use simcore::journal::{self, JournalRecorder};
use simcore::trace::{self, TraceRecorder};

use crate::report::Report;

/// One experiment point: a name (for progress lines) plus the closure
/// that produces its [`Report`].
pub struct Task {
    /// Short label, e.g. `"fig3"`.
    pub name: &'static str,
    run: Box<dyn FnOnce() -> Report + Send>,
}

/// Builds a [`Task`] from a label and a report-producing closure.
pub fn task(name: &'static str, run: impl FnOnce() -> Report + Send + 'static) -> Task {
    Task {
        name,
        run: Box::new(run),
    }
}

/// Everything one task produced, captured on whichever worker ran it.
struct Outcome {
    report: Report,
    recorder: Option<TraceRecorder>,
    checker: Option<InvariantChecker>,
    journal: Option<JournalRecorder>,
}

/// The merged result of a parallel run, in deterministic task order.
pub struct RunOutcome {
    /// One report per task, in task order.
    pub reports: Vec<Report>,
    /// Per-task trace rings absorbed in task order (when recording).
    pub recorder: Option<TraceRecorder>,
    /// Invariant violations summed across tasks (when chaos was on).
    pub violations: u64,
    /// Invariant observations summed across tasks.
    pub checks: u64,
    /// NPFs still in flight at each task's horizon, summed.
    pub outstanding_faults: u64,
    /// Per-task fault journals absorbed in task order (when journaling).
    pub journal: Option<JournalRecorder>,
}

/// Journal capture request for [`run`]: each task gets a fresh
/// [`JournalRecorder`], optionally armed with an SLO watchdog.
#[derive(Debug, Clone, Copy, Default)]
pub struct JournalSpec {
    /// Per-fault end-to-end latency budget checked at resolve time.
    pub watchdog: Option<simcore::journal::JournalWatchdog>,
}

/// Runs `tasks` across `jobs` worker threads and merges the results in
/// task order.
///
/// When `chaos` is set, each task gets a fresh [`InvariantChecker`]
/// seeded with the config's seed; when `record` is true, each task gets
/// a fresh [`TraceRecorder`] of `ring_capacity` records; when `journal`
/// is set, each task gets a fresh [`JournalRecorder`]. All are
/// installed thread-locally around the task body only, so tasks are
/// hermetic no matter how workers interleave. Panics in a task
/// propagate after all workers finish their current task.
pub fn run(
    tasks: Vec<Task>,
    jobs: usize,
    chaos: Option<ChaosConfig>,
    record: bool,
    ring_capacity: usize,
    journal: Option<JournalSpec>,
) -> RunOutcome {
    let n = tasks.len();
    let jobs = jobs.clamp(1, n.max(1));
    let inputs: Vec<Mutex<Option<Task>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<Outcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    let worker = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            return;
        }
        let task = inputs[i]
            .lock()
            .expect("task slot poisoned")
            .take()
            .expect("each task index is claimed exactly once");
        let outcome = run_one(task, chaos, record, ring_capacity, journal);
        *outputs[i].lock().expect("result slot poisoned") = Some(outcome);
    };

    // Even `--jobs 1` runs on a spawned worker rather than the caller's
    // thread, so the per-task recorder/checker installs behave
    // identically at every job count (the caller may have its own
    // thread-locals installed).
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(worker);
        }
    });

    // Merge strictly in task order.
    let mut merged = RunOutcome {
        reports: Vec::with_capacity(n),
        recorder: record.then(|| TraceRecorder::new(ring_capacity)),
        violations: 0,
        checks: 0,
        outstanding_faults: 0,
        journal: journal.map(|spec| {
            let mut j = JournalRecorder::new();
            if let Some(w) = spec.watchdog {
                j.set_watchdog(w);
            }
            j
        }),
    };
    for slot in outputs {
        let outcome = slot
            .into_inner()
            .expect("result slot poisoned")
            .expect("worker loop fills every slot");
        merged.reports.push(outcome.report);
        if let (Some(into), Some(rec)) = (merged.recorder.as_mut(), outcome.recorder) {
            into.absorb(rec);
        }
        if let (Some(into), Some(j)) = (merged.journal.as_mut(), outcome.journal) {
            into.absorb(&j);
        }
        if let Some(checker) = outcome.checker {
            merged.violations += checker.violations().len() as u64;
            merged.checks += checker.checks();
            merged.outstanding_faults += checker.outstanding_faults() as u64;
        }
    }
    merged
}

/// Runs one task with its own recorder/checker installed around it.
fn run_one(
    task: Task,
    chaos: Option<ChaosConfig>,
    record: bool,
    ring_capacity: usize,
    journal_spec: Option<JournalSpec>,
) -> Outcome {
    if let Some(cfg) = chaos {
        assert!(
            invariant::install(InvariantChecker::new(cfg.seed)).is_none(),
            "worker thread already had an invariant checker"
        );
    }
    if record {
        assert!(
            trace::install(TraceRecorder::new(ring_capacity)).is_none(),
            "worker thread already had a trace recorder"
        );
    }
    if let Some(spec) = journal_spec {
        let mut j = JournalRecorder::new();
        if let Some(w) = spec.watchdog {
            j.set_watchdog(w);
        }
        assert!(
            journal::install(j).is_none(),
            "worker thread already had a fault journal"
        );
    }
    let report = (task.run)();
    let journal = if journal_spec.is_some() {
        Some(journal::uninstall().expect("journal installed above"))
    } else {
        None
    };
    let recorder = if record {
        Some(trace::uninstall().expect("recorder installed above"))
    } else {
        None
    };
    let checker = if chaos.is_some() {
        Some(invariant::uninstall().expect("checker installed above"))
    } else {
        None
    };
    Outcome {
        report,
        recorder,
        checker,
        journal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::{SimDuration, SimTime};

    fn demo_tasks() -> Vec<Task> {
        (0..6u64)
            .map(|i| {
                task("demo", move || {
                    // Leave per-task trace/metrics footprints so merge
                    // order is observable.
                    trace::span(
                        SimTime::from_micros(i),
                        SimDuration::from_micros(1),
                        "demo",
                        "point",
                        Vec::new(),
                    );
                    trace::metrics(|m| m.counter_add("demo.points", 1));
                    let mut r = Report::new("demo", "none");
                    r.columns(["i", "sq"])
                        .row([i.to_string(), (i * i).to_string()]);
                    r
                })
            })
            .collect()
    }

    #[test]
    fn serial_and_parallel_agree() {
        let a = run(demo_tasks(), 1, None, true, 1 << 12, None);
        let b = run(demo_tasks(), 4, None, true, 1 << 12, None);
        let render = |o: &RunOutcome| {
            o.reports
                .iter()
                .map(Report::render)
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&a), render(&b));
        let (ra, rb) = (a.recorder.unwrap(), b.recorder.unwrap());
        assert_eq!(ra.export_chrome_json(), rb.export_chrome_json());
        assert_eq!(ra.metrics().to_json(), rb.metrics().to_json());
        assert_eq!(ra.metrics().counter("demo.points"), 6);
    }

    #[test]
    fn reports_come_back_in_task_order() {
        let o = run(demo_tasks(), 3, None, false, 16, None);
        assert!(o.recorder.is_none());
        for (i, r) in o.reports.iter().enumerate() {
            assert!(r.render().contains(&format!("{}", i * i)), "task {i}");
        }
    }

    #[test]
    fn chaos_checkers_are_per_task_and_merged() {
        let cfg = ChaosConfig::profile(simcore::chaos::ChaosProfile::All, 5);
        let tasks: Vec<Task> = (0..4)
            .map(|_| {
                task("chk", || {
                    invariant::note_event_time(SimTime::from_micros(1));
                    // Backwards inside the same task: one violation each.
                    invariant::note_event_time(SimTime::ZERO);
                    Report::new("chk", "none")
                })
            })
            .collect();
        let o = run(tasks, 2, Some(cfg), false, 16, None);
        assert_eq!(o.violations, 4);
        assert!(o.checks >= 8);
        assert!(invariant::uninstall().is_none(), "no checker leaked");
    }
}
