//! E13+: ablations of the paper's design choices (§4's optimizations
//! and §2.2's pinning continuum).

use memsim::manager::{MemConfig, MemoryManager};
use memsim::space::Backing;
use memsim::types::Vpn;
use npf_core::npf::{NpfConfig, NpfEngine};
use npf_core::pinning::Strategy;
use simcore::rng::SimRng;
use simcore::time::SimTime;
use simcore::units::ByteSize;
use testbed::mpi_run::{run_collective, MpiRunConfig};
use workloads::mpi::Collective;

use crate::report::{f, Report};

fn fresh_engine(config: NpfConfig) -> (NpfEngine, memsim::types::PageRange, iommu::DomainId) {
    let mm = MemoryManager::new(MemConfig {
        total_memory: ByteSize::gib(8),
        ..MemConfig::default()
    });
    let mut engine = NpfEngine::new(config, mm, SimRng::new(17));
    let space = engine.memory_mut().create_space();
    let region = engine
        .memory_mut()
        .mmap(space, ByteSize::mib(64), Backing::Anonymous)
        .expect("region");
    let domain = engine.create_channel(space);
    (engine, region, domain)
}

/// Ablation 1 — batched scatter-gather resolution vs one page per PRI
/// request: the paper estimates a cold 4 MB message would cost >220 ms
/// under the ATS/PRI discipline.
pub fn ablation_batching() -> Report {
    let mut r = Report::new(
        "Batched pre-fault vs one-page-per-PRI (cold 4 MB message)",
        "§4 optimization 3",
    );
    r.columns(["mode", "fault events", "total fault time[ms]"]);
    for (label, batch) in [("batched (paper)", true), ("one page per PRI", false)] {
        let (mut engine, region, domain) =
            fresh_engine(NpfConfig::default().with_batch_resolution(batch));
        let mut now = SimTime::ZERO;
        // Fault the whole 4 MB range the way a cold send would: fault,
        // wait for resolution, retry at the next unresolved page.
        let mut page = region.start.0;
        let end = region.start.0 + 1024;
        let mut events = 0u64;
        while page < end {
            let rec = engine
                .begin_fault(
                    now,
                    domain,
                    Vpn(page).base(),
                    (end - page) * 4096,
                    true,
                    None,
                )
                .expect("fault")
                .clone();
            engine.complete_fault(rec.id);
            now = rec.ready_at;
            page = rec.range.end().0;
            events += 1;
        }
        r.row([
            label.to_owned(),
            format!("{events}"),
            f(now.as_secs_f64() * 1e3, 1),
        ]);
    }
    r.note("paper: batching makes this one ~350us fault; one-page PRI would exceed 220ms");
    r
}

/// Ablation 2 — firmware-bypass resume on/off.
pub fn ablation_firmware_bypass() -> Report {
    let mut r = Report::new("Firmware-bypass resume", "§4 optimization 2");
    r.columns(["mode", "mean 4KB NPF[us]"]);
    for (label, bypass) in [("bypass off", false), ("bypass on", true)] {
        let (mut engine, region, domain) =
            fresh_engine(NpfConfig::default().with_firmware_bypass(bypass));
        let mut total = 0f64;
        let n = 200u64;
        for i in 0..n {
            let rec = engine
                .begin_fault(
                    SimTime::ZERO,
                    domain,
                    Vpn(region.start.0 + i).base(),
                    4096,
                    true,
                    None,
                )
                .expect("fault")
                .clone();
            engine.complete_fault(rec.id);
            total += rec.breakdown.total().as_micros_f64();
        }
        r.row([label.to_owned(), f(total / n as f64, 1)]);
    }
    r.note("resuming via the hardware fast path before firmware bookkeeping saves ~65us");
    r
}

/// Ablation 3 — concurrent-fault limit per channel (the prototype
/// allows four).
pub fn ablation_concurrency() -> Report {
    let mut r = Report::new("Concurrent faults per IOchannel", "§4 optimization 1");
    r.columns(["limit", "8 parallel faults resolve in[us]"]);
    for limit in [1u32, 2, 4, 8] {
        let (mut engine, region, domain) =
            fresh_engine(NpfConfig::default().with_concurrent_faults_per_channel(limit));
        let mut latest = SimTime::ZERO;
        for i in 0..8u64 {
            let rec = engine
                .begin_fault(
                    SimTime::ZERO,
                    domain,
                    Vpn(region.start.0 + i).base(),
                    4096,
                    true,
                    None,
                )
                .expect("fault")
                .clone();
            engine.complete_fault(rec.id);
            latest = latest.max(rec.ready_at);
        }
        r.row([format!("{limit}"), f(latest.as_nanos() as f64 / 1e3, 0)]);
    }
    r.note("a serial handler multiplies burst latency; four slots absorb bursts");
    r
}

/// Ablation 4 — the coarse-grained pinning continuum (§2.2): pin-down
/// cache size from fine-grained-like to static-like.
pub fn ablation_pindown_sweep(iterations: u32) -> Report {
    let mut r = Report::new(
        "Pin-down cache size sweep (sendrecv 64KB, off-cache)",
        "§2.2",
    );
    r.columns(["cache", "per-iteration[us]", "note"]);
    let sizes = [
        (ByteSize::kib(64), "≈ fine-grained"),
        (ByteSize::kib(512), "thrashing"),
        (ByteSize::mib(4), "covers pool"),
        (ByteSize::mib(64), "≈ static"),
    ];
    for (cap, note) in sizes {
        let res = run_collective(MpiRunConfig {
            ranks: 4,
            message_bytes: 64 * 1024,
            iterations,
            warmup_iterations: 18,
            strategy: Strategy::PinDownCache { capacity: cap },
            off_cache_buffers: 16,
            collective: Collective::SendRecv,
            seed: 13,
        });
        r.row([
            cap.to_string(),
            f(res.per_iteration.as_micros_f64(), 1),
            note.to_owned(),
        ]);
    }
    // True fine-grained pinning (pin/map + unpin/unmap around every
    // transfer) and the ODP reference.
    let fine = run_collective(MpiRunConfig {
        ranks: 4,
        message_bytes: 64 * 1024,
        iterations,
        warmup_iterations: 18,
        strategy: Strategy::FineGrained,
        off_cache_buffers: 16,
        collective: Collective::SendRecv,
        seed: 13,
    });
    r.row([
        "fine-grained".to_owned(),
        f(fine.per_iteration.as_micros_f64(), 1),
        "pin/unpin every transfer".to_owned(),
    ]);
    let odp = run_collective(MpiRunConfig {
        ranks: 4,
        message_bytes: 64 * 1024,
        iterations,
        warmup_iterations: 18,
        strategy: Strategy::Odp,
        off_cache_buffers: 16,
        collective: Collective::SendRecv,
        seed: 13,
    });
    r.row([
        "ODP/NPF".to_owned(),
        f(odp.per_iteration.as_micros_f64(), 1),
        "no pinning at all".to_owned(),
    ]);
    r.note("small caches behave like fine-grained pinning, big ones like static pinning (Table 3)");
    r
}

/// Ablation 5 — §4's recommended RC extension: RNR flow control for
/// RDMA read responses vs the standard drop-and-rewind recovery.
pub fn ablation_read_rnr() -> Report {
    use rdmasim::types::{RcConfig, SendOp, WcOpcode};
    use simcore::time::SimDuration as D;
    use testbed::ib::{IbCluster, IbConfig};

    let run = |extension: bool| -> (f64, u64) {
        let rc = RcConfig {
            rnr_for_reads: extension,
            ..RcConfig::default()
        };
        let mut c = IbCluster::new(IbConfig::default().with_nodes(2).with_rc(rc).with_seed(15));
        let (qa, qb) = c.connect(0, 1);
        let local = c.alloc_buffers(0, ByteSize::mib(64));
        let remote = c.alloc_buffers(1, ByteSize::mib(64));
        // Responder data resident; initiator landing buffers pinned so
        // only *synthetic* faults fire (clean comparison).
        let db = c.node(1).domain_of(qb);
        c.node_mut(1)
            .engine_mut()
            .pin_and_map(db, memsim::types::PageRange::covering(remote, 32 << 20))
            .expect("pin remote");
        let da = c.node(0).domain_of(qa);
        c.node_mut(0)
            .engine_mut()
            .pin_and_map(da, memsim::types::PageRange::covering(local, 32 << 20))
            .expect("pin local");
        c.set_synthetic_faults(0, 1.0 / 256.0, D::from_micros(220), 33);
        let reads = 200u64;
        for i in 0..reads {
            c.post_send(
                0,
                qa,
                i,
                SendOp::Read {
                    local,
                    remote,
                    len: 256 * 1024,
                },
            );
        }
        c.run_until_quiescent(20_000_000);
        let done = c
            .drain_completions(0)
            .iter()
            .filter(|x| x.opcode == WcOpcode::Read)
            .count() as u64;
        assert_eq!(done, reads, "all reads complete (ext={extension})");
        let wasted = c.node(0).qp_stats(qa).rx_dropped;
        (c.now().as_secs_f64() * 1e3, wasted)
    };

    let (std_ms, std_dropped) = run(false);
    let (ext_ms, ext_dropped) = run(true);
    let mut r = Report::new(
        "RDMA read rNPF recovery: standard rewind vs read-RNR extension",
        "§4 recommendation",
    );
    r.columns(["mode", "200x256KB reads [ms]", "responses wasted"]);
    r.row([
        "standard RC (drop+rewind)".to_owned(),
        f(std_ms, 2),
        format!("{std_dropped}"),
    ]);
    r.row([
        "read-RNR extension".to_owned(),
        f(ext_ms, 2),
        format!("{ext_dropped}"),
    ]);
    r.note("the extension stops the responder instead of discarding in-flight responses");
    r
}

/// Ablation 6 — §3's pre-faulting optimization: resolve subsequent
/// receive buffers together with the faulting one. Shortens cold
/// sequences, but (as §3 argues) it is an optimization, not a
/// substitute for rNPF handling — dropping still collapses.
pub fn ablation_prefaulting() -> Report {
    use simcore::time::SimTime;
    use simcore::units::ByteSize as BS;
    use testbed::eth::{EthConfig, EthTestbed, RxMode};
    use workloads::memcached::MemcachedConfig;

    let run = |mode: RxMode, window: u64| -> String {
        let cfg = EthConfig::default()
            .with_mode(mode)
            .with_instances(1)
            .with_conns_per_instance(16)
            .with_ring_entries(1024)
            .with_bm_size(2048)
            .with_host_memory(BS::gib(4))
            .with_memcached(MemcachedConfig {
                max_bytes: BS::mib(512),
                ..MemcachedConfig::default()
            })
            .with_working_set_keys(100_000)
            .with_prefault_window(window);
        let mut bed = EthTestbed::new(cfg).expect("setup");
        match bed.run_until_ops(10_000, SimTime::from_secs(120)) {
            Some(t) => format!("{:.2}s", t.as_secs_f64()),
            None => ">120s".to_owned(),
        }
    };
    let mut r = Report::new(
        "Pre-faulting subsequent receive buffers (1024-entry cold ring, 10k ops)",
        "§3 'Completeness'",
    );
    r.columns(["configuration", "time to 10k ops"]);
    r.row([
        "backup ring, no pre-fault".to_owned(),
        run(RxMode::Backup, 0),
    ]);
    r.row([
        "backup ring + pre-fault 64".to_owned(),
        run(RxMode::Backup, 64),
    ]);
    r.row(["drop, no pre-fault".to_owned(), run(RxMode::Drop, 0)]);
    r.row(["drop + pre-fault 64".to_owned(), run(RxMode::Drop, 64)]);
    r.note("pre-faulting helps both, but dropping still pays TCP timeouts for every cold stretch");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_ablation_shows_large_gap() {
        let r = ablation_batching();
        let text = r.render();
        assert!(text.contains("batched"));
        assert_eq!(r.row_count(), 2);
    }

    #[test]
    fn bypass_ablation_renders() {
        let r = ablation_firmware_bypass();
        assert_eq!(r.row_count(), 2);
    }

    #[test]
    fn concurrency_ablation_monotone() {
        let r = ablation_concurrency();
        assert_eq!(r.row_count(), 4);
    }
}
