//! Plain-text table rendering for experiment reports.
//!
//! Every experiment emits a [`Report`]: a titled set of aligned columns
//! plus free-form notes, so `cargo run --bin all_experiments` produces
//! one consistent document (the source of `EXPERIMENTS.md`).

use std::fmt::Write as _;

/// A renderable experiment report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    title: String,
    paper_ref: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    /// Creates a report titled `title`, annotated with the paper
    /// table/figure it regenerates.
    #[must_use]
    pub fn new(title: &str, paper_ref: &str) -> Self {
        Report {
            title: title.to_owned(),
            paper_ref: paper_ref.to_owned(),
            ..Report::default()
        }
    }

    /// Sets the column headers.
    pub fn columns<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cols: I) -> &mut Self {
        self.columns = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one row.
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Appends a free-form note shown under the table.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// The number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the report as aligned plain text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ({}) ==", self.title, self.paper_ref);
        let ncols = self
            .columns
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, c) in self.columns.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map_or("", String::as_str);
                let _ = write!(line, "{cell:>w$}  ", w = w);
            }
            line.trim_end().to_owned()
        };
        if !self.columns.is_empty() {
            let _ = writeln!(out, "{}", render_row(&self.columns));
            let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
            let _ = writeln!(out, "{}", "-".repeat(total.min(100)));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row));
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }
}

/// Formats a float with `digits` decimals.
#[must_use]
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = Report::new("Demo", "Table 0");
        r.columns(["size", "value"]);
        r.row(["4KB", "215"]);
        r.row(["4MB", "352"]);
        r.note("calibration run");
        let text = r.render();
        assert!(text.contains("== Demo (Table 0) =="));
        assert!(text.contains("4KB"));
        assert!(text.contains("note: calibration run"));
        assert_eq!(r.row_count(), 2);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 0), "10");
    }
}
