//! # npf-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | module | experiments |
//! |---|---|
//! | [`micro`] | Figure 3 (NPF/invalidation breakdown), Table 4 (tails) |
//! | [`eth_experiments`] | Figure 4 (cold ring), Table 5 (overcommit), Figure 7 (working sets) |
//! | [`ib_experiments`] | Figure 8 (storage), Figure 9 (IMB), Table 6 (beff), Figure 10 (what-if) |
//! | [`ablations`] | §4 optimization ablations, §2.2 pinning continuum |
//!
//! Each experiment returns a [`report::Report`]; the `bin/` targets
//! print them, and `bin/all_experiments` emits the full document used
//! for `EXPERIMENTS.md`.

pub mod ablations;
pub mod backends;
pub mod eth_experiments;
pub mod ib_experiments;
pub mod lossy;
pub mod micro;
pub mod par_runner;
pub mod report;
pub mod scale;
pub mod tracectl;
pub mod whyslow;

pub use report::Report;
