//! Multi-tenant scale-out sweep (the `scalebench` binary's engine).
//!
//! Runs one simulated NIC with 16→512 memcached tenants on direct
//! IOchannels — Zipf-skewed connection allocation, cross-channel fault
//! arbitration, per-tenant backup-ring quotas — and tallies the
//! per-tenant counters into one deterministic cell per (tenant count,
//! seed) pair. Cells shard across seeds via [`crate::par_runner`], so
//! `--jobs N` produces byte-identical output to a serial run; the JSON
//! the binary commits (`BENCH_scale.json`) carries only
//! simulation-deterministic tallies, never wall-clock.

use npf_core::ArbiterPolicy;
use simcore::chaos::ChaosConfig;
use simcore::{ByteSize, SimTime};
use testbed::builder::ScenarioBuilder;
use testbed::eth::RxMode;
use workloads::memcached::MemcachedConfig;

use crate::report::Report;

/// The tenant counts a full sweep visits. The 1024- and 2048-tenant
/// cells exist because the sharded engine made them practical: cells
/// are independent coupling groups, so `--shards N` runs them
/// concurrently with byte-identical output.
pub const SWEEP_TENANTS: &[u32] = &[16, 32, 64, 128, 256, 512, 1024, 2048];

/// The seeds each tenant count is sharded across.
pub const SWEEP_SEEDS: &[u64] = &[1, 2];

/// Simulated horizon per cell: long enough for every tenant's cold
/// ring to fault in and the arbiter to see contention, short enough
/// that the 512-tenant cell stays CI-sized.
pub const CELL_HORIZON: SimTime = SimTime::from_millis(250);

/// One sweep point: every field except the key pair is a tally summed
/// (or maxed) over the cell's tenants. All fields are deterministic in
/// `(tenants, seed)` — nothing here may ever hold wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScaleCell {
    /// Tenant (IOchannel) count of this cell.
    pub tenants: u32,
    /// Simulation seed of this cell.
    pub seed: u64,
    /// Completed memcached operations, all tenants.
    pub ops: u64,
    /// rNPF events raised, all tenants.
    pub faults: u64,
    /// Ring drops, all tenants.
    pub drops: u64,
    /// Faults admitted by the cross-channel arbiter.
    pub arb_grants: u64,
    /// Faults the arbiter queued behind a busy slot pool.
    pub arb_queued: u64,
    /// Worst single arbitration wait, in microseconds.
    pub arb_max_wait_us: u64,
    /// Largest per-tenant backup-ring high-water mark.
    pub backup_hwm: u64,
    /// Largest per-tenant p99 request latency, in microseconds.
    pub p99_us: u64,
}

/// The canonical spelling of a policy in the JSON artifact.
#[must_use]
pub fn policy_name(policy: ArbiterPolicy) -> &'static str {
    match policy {
        ArbiterPolicy::ChannelOnly => "channel",
        ArbiterPolicy::RoundRobin => "rr",
        ArbiterPolicy::WeightedFair => "wfq",
    }
}

/// Runs one sweep cell: `tenants` skewed memcached tenants on one NIC
/// under `policy` arbitration, with an optional per-tenant backup
/// quota, to the fixed horizon.
///
/// # Panics
///
/// Panics when the cell's scenario fails validation — a scalebench
/// bug, not an input error.
#[must_use]
pub fn run_cell(tenants: u32, seed: u64, policy: ArbiterPolicy, quota: Option<u64>) -> ScaleCell {
    run_cell_chaos(tenants, seed, policy, quota, None)
}

/// [`run_cell`] with optional fault injection: the same scenario built
/// `.chaos(cfg)`, so chaos-enabled sweeps (and `whyslow --chaos-seed`)
/// exercise the identical recipe.
///
/// # Panics
///
/// Panics when the cell's scenario fails validation — a scalebench
/// bug, not an input error.
#[must_use]
pub fn run_cell_chaos(
    tenants: u32,
    seed: u64,
    policy: ArbiterPolicy,
    quota: Option<u64>,
    chaos: Option<ChaosConfig>,
) -> ScaleCell {
    let mut scenario = ScenarioBuilder::ethernet()
        .mode(RxMode::Backup)
        .instances(tenants)
        .conns_per_instance(2)
        .ring_entries(32)
        .bm_size(64)
        .backup_capacity(512)
        .host_memory(ByteSize::gib(2))
        .memcached(MemcachedConfig {
            max_bytes: ByteSize::mib(8),
            ..MemcachedConfig::default()
        })
        .working_set_keys(2_000)
        .tenant_skew(1.0)
        .profile(crate::tracectl::fabric_profile())
        .npf(
            crate::tracectl::npf_config()
                .with_arbiter(policy)
                .with_total_fault_slots(64),
        )
        .seed(seed);
    if let Some(quota) = quota {
        scenario = scenario.backup_quota(quota);
    }
    if policy == ArbiterPolicy::WeightedFair {
        // One heavy tenant, so the sweep exercises unequal shares.
        scenario = scenario.tenant_weight(0, 4);
    }
    if let Some(cfg) = chaos {
        scenario = scenario.chaos(cfg);
    }
    let mut bed = scenario.build().expect("scalebench cell must validate");
    bed.run_until(CELL_HORIZON);
    let mut cell = ScaleCell {
        tenants,
        seed,
        ops: bed.total_ops(),
        ..ScaleCell::default()
    };
    for i in 0..tenants {
        let t = bed.tenant_report(i);
        cell.faults += t.faults;
        cell.drops += t.drops;
        cell.arb_grants += t.arb_grants;
        cell.arb_queued += t.arb_queued;
        cell.arb_max_wait_us = cell.arb_max_wait_us.max(t.arb_max_wait.as_micros());
        cell.backup_hwm = cell.backup_hwm.max(t.backup_hwm);
        cell.p99_us = cell.p99_us.max(t.p99.as_micros());
    }
    cell
}

/// One cell as a single JSON line — the unit `--check` compares, so
/// the spelling must stay byte-stable.
#[must_use]
pub fn cell_json(c: &ScaleCell) -> String {
    format!(
        "{{\"tenants\": {}, \"seed\": {}, \"ops\": {}, \"faults\": {}, \"drops\": {}, \
         \"arb_grants\": {}, \"arb_queued\": {}, \"arb_max_wait_us\": {}, \
         \"backup_hwm\": {}, \"p99_us\": {}}}",
        c.tenants,
        c.seed,
        c.ops,
        c.faults,
        c.drops,
        c.arb_grants,
        c.arb_queued,
        c.arb_max_wait_us,
        c.backup_hwm,
        c.p99_us
    )
}

/// The full JSON artifact: header plus one line per cell, in task
/// order. Deterministic in the cells — byte-identical at every
/// `--jobs` value.
///
/// `wall_ms` (per-cell wall-clock, when measured) lands in a separate
/// `timings` array *after* the cells: [`check_against`] compares only
/// the cell lines, so timings are informational and never gate CI.
#[must_use]
pub fn render_json(
    policy: ArbiterPolicy,
    quota: Option<u64>,
    cells: &[ScaleCell],
    wall_ms: &[u64],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"npf-scalebench-v1\",\n");
    out.push_str(&format!("  \"arbiter\": \"{}\",\n", policy_name(policy)));
    match quota {
        Some(q) => out.push_str(&format!("  \"backup_quota\": {q},\n")),
        None => out.push_str("  \"backup_quota\": null,\n"),
    }
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!("    {}{sep}\n", cell_json(c)));
    }
    out.push_str("  ],\n");
    out.push_str("  \"timings\": [\n");
    for (i, (c, ms)) in cells.iter().zip(wall_ms).enumerate() {
        let sep = if i + 1 == wall_ms.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"tenants\": {}, \"seed\": {}, \"wall_ms\": {ms}}}{sep}\n",
            c.tenants, c.seed
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Compares freshly-run cells against a committed baseline artifact:
/// every cell's JSON line must appear verbatim in `baseline`. Subset
/// runs (`--tenants 64`) check only their own cells, so the CI smoke
/// job stays cheap while the committed file keeps the full sweep.
/// Returns the mismatched cells' JSON lines.
#[must_use]
pub fn check_against(baseline: &str, cells: &[ScaleCell]) -> Vec<String> {
    cells
        .iter()
        .map(cell_json)
        .filter(|line| !baseline.contains(line.as_str()))
        .collect()
}

/// Renders the sweep as one stdout table, in cell order.
#[must_use]
pub fn render_report(cells: &[ScaleCell]) -> Report {
    let mut r = Report::new(
        "Multi-tenant scale-out: one NIC, 16-2048 IOchannels",
        "§4 IOchannels at scale",
    );
    r.columns([
        "tenants",
        "seed",
        "ops",
        "faults",
        "arb grants",
        "arb queued",
        "max wait[us]",
        "backup hwm",
        "p99[us]",
    ]);
    for c in cells {
        r.row([
            c.tenants.to_string(),
            c.seed.to_string(),
            c.ops.to_string(),
            c.faults.to_string(),
            c.arb_grants.to_string(),
            c.arb_queued.to_string(),
            c.arb_max_wait_us.to_string(),
            c.backup_hwm.to_string(),
            c.p99_us.to_string(),
        ]);
    }
    r.note("tenant 0 carries weight 4 under wfq; connections are Zipf(1.0)-skewed");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_deterministic_in_their_seed() {
        let a = run_cell(16, 1, ArbiterPolicy::WeightedFair, Some(16));
        let b = run_cell(16, 1, ArbiterPolicy::WeightedFair, Some(16));
        assert_eq!(a, b);
        assert!(a.ops > 0, "tenants must make progress: {a:?}");
        assert!(a.faults > 0, "cold rings must fault: {a:?}");
    }

    #[test]
    fn check_against_spots_a_drifted_cell() {
        let cells = [
            run_cell(16, 1, ArbiterPolicy::RoundRobin, None),
            run_cell(16, 2, ArbiterPolicy::RoundRobin, None),
        ];
        let baseline = render_json(ArbiterPolicy::RoundRobin, None, &cells, &[0, 0]);
        assert!(check_against(&baseline, &cells).is_empty());
        let mut drifted = cells;
        drifted[1].ops += 1;
        let bad = check_against(&baseline, &drifted);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("\"seed\": 2"), "{bad:?}");
    }
}
