//! Differential ODP-backend sweep (the `backendbench` binary's
//! engine).
//!
//! Runs the *same* Ethernet scenario — cold backup-mode rings, a
//! handful of memcached tenants — once per ODP backend (firmware NPF,
//! NP-RDMA-style software emulation, pinned baseline) and per seed,
//! and tallies each run into one deterministic cell. The differential
//! is the point: workload progress must hold across backends while the
//! servicing counters swap columns (firmware events vs bounce-buffer
//! traffic vs unexpected-fault accounting). Cells shard across
//! backends and seeds via [`crate::par_runner`], so `--jobs N`
//! produces byte-identical output to a serial run; the JSON the binary
//! commits (`BENCH_backend.json`) carries only simulation-
//! deterministic tallies, never wall-clock.

use npf_core::{BackendKind, BackendSelect};
use simcore::chaos::ChaosConfig;
use simcore::{ByteSize, SimTime};
use testbed::builder::ScenarioBuilder;
use testbed::eth::RxMode;
use workloads::memcached::MemcachedConfig;

use crate::report::Report;

/// The backends a full sweep visits, in artifact order.
pub const SWEEP_BACKENDS: &[BackendKind] = &[
    BackendKind::Firmware,
    BackendKind::SoftEmu,
    BackendKind::Pinned,
];

/// The seeds each backend is sharded across.
pub const SWEEP_SEEDS: &[u64] = &[1, 2];

/// Simulated horizon per cell: long enough for every tenant's cold
/// ring to fault in under the slowest backend, short enough for CI.
pub const CELL_HORIZON: SimTime = SimTime::from_millis(150);

/// One sweep point: the identical scenario run under one backend and
/// seed. All fields are deterministic in `(backend, seed)` — nothing
/// here may ever hold wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendCell {
    /// The ODP backend this cell ran under.
    pub backend: BackendKind,
    /// Simulation seed of this cell.
    pub seed: u64,
    /// Completed memcached operations, all tenants.
    pub ops: u64,
    /// NPF engine fault events (any backend).
    pub faults: u64,
    /// Ring drops, all tenants.
    pub drops: u64,
    /// Firmware NPF events (firmware/pinned paths only).
    pub fw_events: u64,
    /// Faults bounced through the softemu pool (softemu only).
    pub bounces: u64,
    /// Bounce-buffer copy-outs on resolution (softemu only).
    pub copyouts: u64,
    /// Faults that waited for a free bounce buffer (softemu only).
    pub pool_waits: u64,
    /// Faults a nominally-pinned NIC had to service (pinned only).
    pub unexpected: u64,
    /// Largest per-tenant p99 request latency, in microseconds.
    pub p99_us: u64,
}

/// Runs one sweep cell: the canonical differential scenario under
/// `backend` with `seed`.
///
/// # Panics
///
/// Panics when the cell's scenario fails validation — a backendbench
/// bug, not an input error.
#[must_use]
pub fn run_cell(backend: BackendKind, seed: u64) -> BackendCell {
    run_cell_chaos(backend, seed, None)
}

/// [`run_cell`] with optional fault injection: the same scenario built
/// `.chaos(cfg)`, so chaos-enabled differential runs exercise the
/// identical recipe.
///
/// # Panics
///
/// Panics when the cell's scenario fails validation — a backendbench
/// bug, not an input error.
#[must_use]
pub fn run_cell_chaos(backend: BackendKind, seed: u64, chaos: Option<ChaosConfig>) -> BackendCell {
    let mut scenario = ScenarioBuilder::ethernet()
        .mode(RxMode::Backup)
        .instances(4)
        .conns_per_instance(2)
        .ring_entries(32)
        .bm_size(64)
        .backup_capacity(256)
        .host_memory(ByteSize::mib(512))
        .memcached(MemcachedConfig {
            max_bytes: ByteSize::mib(8),
            ..MemcachedConfig::default()
        })
        .working_set_keys(1_000)
        .npf(crate::tracectl::npf_config().with_backend(BackendSelect::of(backend)))
        .seed(seed);
    if let Some(cfg) = chaos {
        scenario = scenario.chaos(cfg);
    }
    let mut bed = scenario.build().expect("backendbench cell must validate");
    bed.run_until(CELL_HORIZON);
    let counters = bed.engine().counters();
    let mut cell = BackendCell {
        backend,
        seed,
        ops: bed.total_ops(),
        faults: counters.get("npf_events"),
        drops: 0,
        fw_events: counters.get("fw_npf_events"),
        bounces: counters.get("softemu_bounces"),
        copyouts: counters.get("softemu_copyouts"),
        pool_waits: counters.get("softemu_pool_waits"),
        unexpected: counters.get("pinned_unexpected_faults"),
        p99_us: 0,
    };
    for i in 0..4 {
        let t = bed.tenant_report(i);
        cell.drops += t.drops;
        cell.p99_us = cell.p99_us.max(t.p99.as_micros());
    }
    cell
}

/// One cell as a single JSON line — the unit `--check` compares, so
/// the spelling must stay byte-stable.
#[must_use]
pub fn cell_json(c: &BackendCell) -> String {
    format!(
        "{{\"backend\": \"{}\", \"seed\": {}, \"ops\": {}, \"faults\": {}, \"drops\": {}, \
         \"fw_events\": {}, \"bounces\": {}, \"copyouts\": {}, \"pool_waits\": {}, \
         \"unexpected\": {}, \"p99_us\": {}}}",
        c.backend.as_str(),
        c.seed,
        c.ops,
        c.faults,
        c.drops,
        c.fw_events,
        c.bounces,
        c.copyouts,
        c.pool_waits,
        c.unexpected,
        c.p99_us
    )
}

/// The full JSON artifact: header plus one line per cell, in task
/// order. Deterministic in the cells — byte-identical at every
/// `--jobs` value.
#[must_use]
pub fn render_json(cells: &[BackendCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"npf-backendbench-v1\",\n");
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!("    {}{sep}\n", cell_json(c)));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Compares freshly-run cells against a committed baseline artifact:
/// every cell's JSON line must appear verbatim in `baseline`. Subset
/// runs (`--backend softemu`) check only their own cells. Returns the
/// mismatched cells' JSON lines.
#[must_use]
pub fn check_against(baseline: &str, cells: &[BackendCell]) -> Vec<String> {
    cells
        .iter()
        .map(cell_json)
        .filter(|line| !baseline.contains(line.as_str()))
        .collect()
}

/// Renders the sweep as one stdout table, in cell order.
#[must_use]
pub fn render_report(cells: &[BackendCell]) -> Report {
    let mut r = Report::new(
        "ODP backend differential: one scenario, three servicing paths",
        "firmware NPF vs NP-RDMA-style softemu vs pinned",
    );
    r.columns([
        "backend",
        "seed",
        "ops",
        "faults",
        "drops",
        "fw events",
        "bounces",
        "copyouts",
        "pool waits",
        "unexpected",
        "p99[us]",
    ]);
    for c in cells {
        r.row([
            c.backend.as_str().to_owned(),
            c.seed.to_string(),
            c.ops.to_string(),
            c.faults.to_string(),
            c.drops.to_string(),
            c.fw_events.to_string(),
            c.bounces.to_string(),
            c.copyouts.to_string(),
            c.pool_waits.to_string(),
            c.unexpected.to_string(),
            c.p99_us.to_string(),
        ]);
    }
    r.note("identical scenario per row pair; only the servicing columns may differ by backend");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_deterministic_in_their_seed() {
        let a = run_cell(BackendKind::SoftEmu, 1);
        let b = run_cell(BackendKind::SoftEmu, 1);
        assert_eq!(a, b);
        assert!(a.ops > 0, "tenants must make progress: {a:?}");
        assert!(a.faults > 0, "cold rings must fault: {a:?}");
    }

    #[test]
    fn counters_swap_columns_by_backend() {
        let fw = run_cell(BackendKind::Firmware, 1);
        let se = run_cell(BackendKind::SoftEmu, 1);
        let pin = run_cell(BackendKind::Pinned, 1);
        // Firmware services faults as NPF events, never bounces.
        assert!(fw.fw_events > 0, "{fw:?}");
        assert_eq!(fw.bounces, 0, "{fw:?}");
        assert_eq!(fw.unexpected, 0, "{fw:?}");
        // Softemu bounces every fault and raises no firmware event.
        assert_eq!(se.fw_events, 0, "{se:?}");
        assert!(se.bounces > 0, "{se:?}");
        assert_eq!(se.bounces, se.faults, "{se:?}");
        // The pinned baseline books every fault as unexpected.
        assert_eq!(pin.unexpected, pin.faults, "{pin:?}");
        assert_eq!(pin.bounces, 0, "{pin:?}");
        // And the workload makes progress under all three.
        for c in [&fw, &se, &pin] {
            assert!(c.ops > 0, "{c:?}");
        }
    }

    #[test]
    fn retry_backoff_is_identical_serial_and_parallel() {
        use simcore::chaos::ChaosProfile;
        use std::sync::Mutex;
        // NPF-profile chaos fires transient misses, so these cells
        // exercise the softemu exponential-backoff retry path; the
        // tallies must not depend on how many workers ran the cells.
        let seeds = [1u64, 2, 3, 4];
        let chaos = |s: u64| Some(ChaosConfig::profile(ChaosProfile::Npf, s));
        let serial: Vec<BackendCell> = seeds
            .iter()
            .map(|&s| run_cell_chaos(BackendKind::SoftEmu, s, chaos(s)))
            .collect();
        let slots: Vec<Mutex<Option<BackendCell>>> =
            seeds.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for (i, &s) in seeds.iter().enumerate() {
                let slot = &slots[i];
                scope.spawn(move || {
                    *slot.lock().expect("slot") =
                        Some(run_cell_chaos(BackendKind::SoftEmu, s, chaos(s)));
                });
            }
        });
        let parallel: Vec<BackendCell> = slots
            .into_iter()
            .map(|s| s.into_inner().expect("slot").expect("filled"))
            .collect();
        assert_eq!(serial, parallel, "worker count leaked into the cells");
    }

    #[test]
    fn check_against_spots_a_drifted_cell() {
        let cells = [
            run_cell(BackendKind::Firmware, 1),
            run_cell(BackendKind::SoftEmu, 1),
        ];
        let baseline = render_json(&cells);
        assert!(check_against(&baseline, &cells).is_empty());
        let mut drifted = cells;
        drifted[1].ops += 1;
        let bad = check_against(&baseline, &drifted);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("\"backend\": \"softemu\""), "{bad:?}");
    }
}
