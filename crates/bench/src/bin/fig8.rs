//! Regenerates Figure 8: storage bandwidth and memory usage.
//!
//! Supports `--trace <path>` / `--metrics <path>`.
fn main() {
    npf_bench::tracectl::run(|| {
        print!("{}", npf_bench::ib_experiments::fig8a(4000).render());
        println!();
        print!("{}", npf_bench::ib_experiments::fig8b(1500).render());
    });
}
