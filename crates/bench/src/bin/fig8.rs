//! Regenerates Figure 8: storage bandwidth and memory usage.
fn main() {
    print!("{}", npf_bench::ib_experiments::fig8a(4000).render());
    println!();
    print!("{}", npf_bench::ib_experiments::fig8b(1500).render());
}
