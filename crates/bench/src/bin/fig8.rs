//! Regenerates Figure 8: storage bandwidth and memory usage.
//!
//! Supports `--trace <path>` / `--metrics <path>` / `--jobs <n>` /
//! `--shards <n>` (see `--help`; sharded figures are byte-identical
//! at every shard count).
use npf_bench::par_runner::task;

fn main() {
    npf_bench::tracectl::RunOpts::init(&[]);
    let tasks = vec![
        task("fig8a", || npf_bench::ib_experiments::fig8a(4000)),
        task("fig8b", || npf_bench::ib_experiments::fig8b(1500)),
    ];
    npf_bench::tracectl::run_tasks(tasks, |reports| {
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                println!();
            }
            print!("{}", r.render());
        }
    });
}
