//! Regenerates Figure 7: dynamic working sets under a shared cgroup.
//!
//! Supports `--trace <path>` / `--metrics <path>` / `--jobs <n>` /
//! `--shards <n>` (testbeds within each figure run on the shard pool;
//! output is byte-identical at every shard count).
use npf_bench::par_runner::task;

fn main() {
    npf_bench::tracectl::RunOpts::init(&[]);
    npf_bench::tracectl::run_tasks(
        vec![task("fig7", || npf_bench::eth_experiments::fig7(30, 10))],
        |reports| {
            for r in &reports {
                print!("{}", r.render());
            }
        },
    );
}
