//! Regenerates Figure 7: dynamic working sets under a shared cgroup.
//!
//! Supports `--trace <path>` / `--metrics <path>`.
fn main() {
    npf_bench::tracectl::run(|| {
        print!("{}", npf_bench::eth_experiments::fig7(30, 10).render());
    });
}
