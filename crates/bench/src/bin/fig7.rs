//! Regenerates Figure 7: dynamic working sets under a shared cgroup.
fn main() {
    print!("{}", npf_bench::eth_experiments::fig7(30, 10).render());
}
