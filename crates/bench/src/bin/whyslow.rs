//! Tail-latency attribution for the multi-tenant overcommit scenario:
//! which NPF pipeline phase made the slow faults slow?
//!
//! Flags (all via `tracectl::RunOpts`):
//!
//! * `--scenario <overcommit|small>`: 64-tenant paper-sized run
//!   (default) or the CI-sized 4-tenant smoke run (`fig3` is an alias
//!   for `small`).
//! * `--tenants <n>`: override the scenario's tenant count.
//! * `--arbiter <channel|rr|wfq>`: arbitration policy (default `wfq`).
//! * `--budget-us <n>`: arm the journal's SLO watchdog — any fault
//!   slower than `n` microseconds prints its causal chain on stderr.
//! * `--out <path>`: where to write the attribution artifact (default
//!   `BENCH_whyslow.txt`; skipped under `--check`).
//! * `--check <path>`: byte-compare this run's artifact against a
//!   committed golden copy and exit 1 on drift.
//! * `--journal <path>`: additionally write the merged journal as
//!   Chrome flow-event JSON (Perfetto-loadable).
//! * `--jobs <n>`: worker threads; the artifact is byte-identical at
//!   every value.

use npf_bench::{tracectl, whyslow};
use npf_core::ArbiterPolicy;
use simcore::time::SimDuration;

fn main() {
    let opts = tracectl::RunOpts::init(&["out", "check", "scenario", "budget-us"]);
    let out_path = opts.extra("out").unwrap_or("BENCH_whyslow.txt").to_owned();
    let check_path = opts.extra("check").map(str::to_owned);
    let scenario = opts.extra("scenario").unwrap_or("overcommit");
    let tenants = match whyslow::scenario_tenants(scenario) {
        Ok(t) => opts.tenants.unwrap_or(t),
        Err(e) => {
            eprintln!("whyslow: error: {e}");
            std::process::exit(2);
        }
    };
    let policy = opts.arbiter.unwrap_or(ArbiterPolicy::WeightedFair);
    let budget = opts.extra("budget-us").map(|v| {
        let us = v.parse::<u64>().unwrap_or_else(|e| {
            eprintln!("whyslow: error: --budget-us must be an integer: {e}");
            std::process::exit(2);
        });
        SimDuration::from_micros(us)
    });

    let (journal, outcome) = whyslow::run_scenario(
        tenants,
        whyslow::DEFAULT_SEEDS,
        policy,
        budget,
        tracectl::jobs(),
        tracectl::chaos_config(),
    );

    // The journal's contract: phase slices tile [begun, ready_at], so
    // each fault's attribution sums to its latency exactly.
    let broken = whyslow::exact_sum_violations(&journal);
    assert_eq!(broken, 0, "{broken} faults with inexact phase sums");
    assert_eq!(
        journal.unbalanced_faults(),
        0,
        "journal phase slices must tile each fault's lifetime"
    );

    let artifact = whyslow::render_artifact(tenants, policy, whyslow::DEFAULT_SEEDS, &journal);
    print!("{artifact}");

    if let Some(path) = tracectl::journal_path() {
        match std::fs::write(&path, journal.export_chrome_json()) {
            Ok(()) => eprintln!("fault journal written to {}", path.display()),
            Err(e) => eprintln!("failed to write fault journal to {}: {e}", path.display()),
        }
    }

    if outcome.violations > 0 {
        eprintln!(
            "whyslow: {} invariant violation(s) under chaos",
            outcome.violations
        );
        std::process::exit(1);
    }

    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        if baseline == artifact {
            println!("attribution matches {path}");
        } else {
            eprintln!("attribution drifted from {path}");
            std::process::exit(1);
        }
    } else {
        if let Err(e) = std::fs::write(&out_path, &artifact) {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(2);
        }
        println!("attribution written to {out_path}");
    }
}
