//! Runs every experiment (E1-E12 plus ablations) and prints the full
//! report document — the source of `EXPERIMENTS.md`.
//!
//! Supports `--trace <path>` / `--metrics <path>` / `--jobs <n>` /
//! `--shards <n>` (see `--help`; sharded figures are byte-identical
//! at every shard count).
use npf_bench::par_runner::task;

fn main() {
    npf_bench::tracectl::RunOpts::init(&[]);
    let t0 = std::time::Instant::now();
    let tasks = vec![
        task("fig3", || npf_bench::micro::fig3(500)),
        task("fig3_traced", || npf_bench::micro::fig3_traced(500)),
        task("table4", || npf_bench::micro::table4(3000)),
        task("fig4a", || npf_bench::eth_experiments::fig4a(20)),
        task("fig4b", || npf_bench::eth_experiments::fig4b(10_000, 150)),
        task("table5", || npf_bench::eth_experiments::table5(4)),
        task("fig7", || npf_bench::eth_experiments::fig7(30, 10)),
        task("fig8a", || npf_bench::ib_experiments::fig8a(4000)),
        task("fig8b", || npf_bench::ib_experiments::fig8b(1500)),
        task("fig9", || npf_bench::ib_experiments::fig9(30, 8)),
        task("fig9_allreduce", || {
            npf_bench::ib_experiments::fig9_allreduce(30, 8)
        }),
        task("table6", || npf_bench::ib_experiments::table6(20, 8)),
        task("fig10_ethernet", || {
            npf_bench::ib_experiments::fig10_ethernet(500)
        }),
        task("fig10_infiniband", || {
            npf_bench::ib_experiments::fig10_infiniband(3000)
        }),
        task("ablation_batching", npf_bench::ablations::ablation_batching),
        task(
            "ablation_firmware_bypass",
            npf_bench::ablations::ablation_firmware_bypass,
        ),
        task(
            "ablation_concurrency",
            npf_bench::ablations::ablation_concurrency,
        ),
        task("ablation_pindown_sweep", || {
            npf_bench::ablations::ablation_pindown_sweep(30)
        }),
        task("ablation_read_rnr", npf_bench::ablations::ablation_read_rnr),
        task(
            "ablation_prefaulting",
            npf_bench::ablations::ablation_prefaulting,
        ),
    ];
    npf_bench::tracectl::run_tasks(tasks, |reports| {
        for r in &reports {
            print!("{}", r.render());
            println!();
        }
    });
    eprintln!(
        "all experiments finished in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
