//! Runs every experiment (E1-E12 plus ablations) and prints the full
//! report document — the source of `EXPERIMENTS.md`.
//!
//! Supports `--trace <path>` / `--metrics <path>`.
fn main() {
    let t0 = std::time::Instant::now();
    npf_bench::tracectl::run(|| {
        let reports = [
            npf_bench::micro::fig3(500),
            npf_bench::micro::fig3_traced(500),
            npf_bench::micro::table4(3000),
            npf_bench::eth_experiments::fig4a(20),
            npf_bench::eth_experiments::fig4b(10_000, 150),
            npf_bench::eth_experiments::table5(4),
            npf_bench::eth_experiments::fig7(30, 10),
            npf_bench::ib_experiments::fig8a(4000),
            npf_bench::ib_experiments::fig8b(1500),
            npf_bench::ib_experiments::fig9(30, 8),
            npf_bench::ib_experiments::fig9_allreduce(30, 8),
            npf_bench::ib_experiments::table6(20, 8),
            npf_bench::ib_experiments::fig10_ethernet(500),
            npf_bench::ib_experiments::fig10_infiniband(3000),
            npf_bench::ablations::ablation_batching(),
            npf_bench::ablations::ablation_firmware_bypass(),
            npf_bench::ablations::ablation_concurrency(),
            npf_bench::ablations::ablation_pindown_sweep(30),
            npf_bench::ablations::ablation_read_rnr(),
            npf_bench::ablations::ablation_prefaulting(),
        ];
        for r in &reports {
            print!("{}", r.render());
            println!();
        }
    });
    eprintln!(
        "all experiments finished in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
