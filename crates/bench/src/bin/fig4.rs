//! Regenerates Figure 4: the cold ring problem.
//!
//! Supports `--trace <path>` / `--metrics <path>` / `--jobs <n>` /
//! `--shards <n>` (testbeds within each figure run on the shard pool;
//! output is byte-identical at every shard count).
use npf_bench::par_runner::task;

fn main() {
    npf_bench::tracectl::RunOpts::init(&[]);
    let tasks = vec![
        task("fig4a", || npf_bench::eth_experiments::fig4a(20)),
        task("fig4b", || npf_bench::eth_experiments::fig4b(10_000, 150)),
    ];
    npf_bench::tracectl::run_tasks(tasks, |reports| {
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                println!();
            }
            print!("{}", r.render());
        }
    });
}
