//! Regenerates Figure 4: the cold ring problem.
//!
//! Supports `--trace <path>` / `--metrics <path>`.
fn main() {
    npf_bench::tracectl::run(|| {
        print!("{}", npf_bench::eth_experiments::fig4a(20).render());
        println!();
        print!(
            "{}",
            npf_bench::eth_experiments::fig4b(10_000, 150).render()
        );
    });
}
