//! Ablations of the paper's design choices.
//!
//! Supports `--trace <path>` / `--metrics <path>`.
fn main() {
    npf_bench::tracectl::run(|| {
        print!("{}", npf_bench::ablations::ablation_batching().render());
        println!();
        print!(
            "{}",
            npf_bench::ablations::ablation_firmware_bypass().render()
        );
        println!();
        print!("{}", npf_bench::ablations::ablation_concurrency().render());
        println!();
        print!(
            "{}",
            npf_bench::ablations::ablation_pindown_sweep(30).render()
        );
        println!();
        print!("{}", npf_bench::ablations::ablation_read_rnr().render());
        println!();
        print!("{}", npf_bench::ablations::ablation_prefaulting().render());
    });
}
