//! Ablations of the paper's design choices.
//!
//! Supports `--trace <path>` / `--metrics <path>` / `--jobs <n>` /
//! `--shards <n>` (see `--help`; sharded figures are byte-identical
//! at every shard count).
use npf_bench::par_runner::task;

fn main() {
    npf_bench::tracectl::RunOpts::init(&[]);
    let tasks = vec![
        task("ablation_batching", npf_bench::ablations::ablation_batching),
        task(
            "ablation_firmware_bypass",
            npf_bench::ablations::ablation_firmware_bypass,
        ),
        task(
            "ablation_concurrency",
            npf_bench::ablations::ablation_concurrency,
        ),
        task("ablation_pindown_sweep", || {
            npf_bench::ablations::ablation_pindown_sweep(30)
        }),
        task("ablation_read_rnr", npf_bench::ablations::ablation_read_rnr),
        task(
            "ablation_prefaulting",
            npf_bench::ablations::ablation_prefaulting,
        ),
    ];
    npf_bench::tracectl::run_tasks(tasks, |reports| {
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                println!();
            }
            print!("{}", r.render());
        }
    });
}
