//! Ablations of the paper's design choices.
fn main() {
    print!("{}", npf_bench::ablations::ablation_batching().render());
    println!();
    print!(
        "{}",
        npf_bench::ablations::ablation_firmware_bypass().render()
    );
    println!();
    print!("{}", npf_bench::ablations::ablation_concurrency().render());
    println!();
    print!(
        "{}",
        npf_bench::ablations::ablation_pindown_sweep(30).render()
    );
    println!();
    print!("{}", npf_bench::ablations::ablation_read_rnr().render());
    println!();
    print!("{}", npf_bench::ablations::ablation_prefaulting().render());
}
