//! Regenerates Figure 9: IMB collectives under each registration
//! strategy.
//!
//! Supports `--trace <path>` / `--metrics <path>`.
fn main() {
    npf_bench::tracectl::run(|| {
        print!("{}", npf_bench::ib_experiments::fig9(30, 8).render());
        println!();
        print!(
            "{}",
            npf_bench::ib_experiments::fig9_allreduce(30, 8).render()
        );
    });
}
