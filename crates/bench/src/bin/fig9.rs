//! Regenerates Figure 9: IMB collectives under each registration
//! strategy.
//!
//! Supports `--trace <path>` / `--metrics <path>` / `--jobs <n>` /
//! `--shards <n>` (see `--help`; sharded figures are byte-identical
//! at every shard count).
use npf_bench::par_runner::task;

fn main() {
    npf_bench::tracectl::RunOpts::init(&[]);
    let tasks = vec![
        task("fig9", || npf_bench::ib_experiments::fig9(30, 8)),
        task("fig9_allreduce", || {
            npf_bench::ib_experiments::fig9_allreduce(30, 8)
        }),
    ];
    npf_bench::tracectl::run_tasks(tasks, |reports| {
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                println!();
            }
            print!("{}", r.render());
        }
    });
}
