//! Regenerates Figure 9: IMB collectives under each registration
//! strategy.
fn main() {
    print!("{}", npf_bench::ib_experiments::fig9(30, 8).render());
    println!();
    print!(
        "{}",
        npf_bench::ib_experiments::fig9_allreduce(30, 8).render()
    );
}
