//! Lossy-fabric transport differential: the identical cold-ring
//! incast run under {lossless + PFC, 0.01%–1% random loss} × {go-back-N,
//! IRN-style selective repeat} × {firmware, softemu, pinned}, sharded
//! across the sweep via the isolated shard pool.
//!
//! Flags (all via `tracectl::RunOpts`):
//!
//! * `--transport <gbn|irn>`: run only that transport's cells; absent →
//!   both.
//! * `--backend <firmware|softemu|pinned>`: run only that backend's
//!   cells; absent → all three.
//! * `--out <path>`: where to write the JSON artifact (default
//!   `BENCH_lossy.json`; skipped under `--check`).
//! * `--check <path>`: compare this run's cells against a committed
//!   artifact and exit 1 on any drift. Only simulation-deterministic
//!   tallies are compared — wall-clock never enters the file.
//! * `--jobs <n>` / `--shards <n>`: cells are independent coupling
//!   groups, so both flags name the same cell-level pool (the larger
//!   wins); output is byte-identical at every value.

use netsim::profile::{FabricProfile, RdmaTransport};
use npf_bench::lossy::{self, LossyCell};
use npf_core::BackendKind;

fn main() {
    let opts = npf_bench::tracectl::RunOpts::init(&["out", "check"]);
    let out_path = opts.extra("out").unwrap_or("BENCH_lossy.json").to_owned();
    let check_path = opts.extra("check").map(str::to_owned);
    // `--transport` is a standard flag with a gbn default, so "was it
    // given at all" needs an argv peek: absent → sweep both.
    let transports: Vec<RdmaTransport> =
        if std::env::args().any(|a| a == "--transport" || a.starts_with("--transport=")) {
            vec![opts.transport]
        } else {
            lossy::SWEEP_TRANSPORTS.to_vec()
        };
    let backends: Vec<BackendKind> = match opts.backend {
        Some(k) => vec![k],
        None => lossy::SWEEP_BACKENDS.to_vec(),
    };
    // Each cell is one coupling group; --jobs and --shards both name
    // the same cell-level pool here, so the larger wins.
    let workers = opts.jobs.max(opts.shards);

    let mut combos: Vec<(FabricProfile, RdmaTransport, BackendKind)> = Vec::new();
    for p in lossy::sweep_profiles() {
        for &t in &transports {
            for &b in &backends {
                combos.push((p, t, b));
            }
        }
    }

    let cells: Vec<LossyCell> = npf_bench::tracectl::run(|| {
        simcore::shard::run_isolated(
            combos
                .iter()
                .map(|&(profile, transport, backend)| {
                    Box::new(move || lossy::run_cell(profile, transport, backend))
                        as Box<dyn FnOnce() -> LossyCell + Send>
                })
                .collect(),
            workers,
            npf_bench::tracectl::isolation_spec(),
        )
    });
    print!("{}", lossy::render_report(&cells).render());

    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let drifted = lossy::check_against(&baseline, &cells);
        if drifted.is_empty() {
            println!("all {} cells match {path}", cells.len());
        } else {
            for line in &drifted {
                eprintln!("drifted from {path}: {line}");
            }
            eprintln!(
                "{} of {} cells drifted from {path}",
                drifted.len(),
                cells.len()
            );
            std::process::exit(1);
        }
    } else {
        let json = lossy::render_json(&cells);
        if let Err(e) = std::fs::write(&out_path, &json) {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(2);
        }
        println!("lossy transport differential written to {out_path}");
    }
}
