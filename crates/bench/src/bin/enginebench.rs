//! Engine microbenchmarks: events/sec on the event-queue fast path and
//! wall-clock for reduced-size figure runs, persisted as
//! `BENCH_engine.json` so every PR leaves a perf trajectory.
//!
//! Usage:
//!
//! ```text
//! enginebench [--out <path>] [--check <baseline.json>]
//! ```
//!
//! `--out` (default `BENCH_engine.json`) writes the measurement.
//! `--check` compares the fresh `*_events_per_sec` numbers against a
//! previously committed baseline and exits nonzero if any regresses by
//! more than 30% — the CI smoke gate. Figure wall-clocks are recorded
//! for trend reading but not gated (they shift with runner load).

use std::time::Instant;

use iommu::{Iommu, RangeCheck, TableMode};
use memsim::lru::LruTracker;
use memsim::types::{FrameId, PageRange, SpaceId, Vpn};
use npf_bench::par_runner::task;
use simcore::event::EventQueue;
use simcore::time::SimDuration;
use simcore::trace::TraceRecorder;

/// Events per second below `baseline * (1 - REGRESSION_TOLERANCE)`
/// fail `--check`.
const REGRESSION_TOLERANCE: f64 = 0.30;

/// One microbench measurement: how many engine operations one
/// iteration performs and the best-observed wall-clock for it.
struct Sample {
    name: &'static str,
    ops_per_iter: u64,
    ns_per_iter: f64,
}

impl Sample {
    fn events_per_sec(&self) -> f64 {
        self.ops_per_iter as f64 * 1e9 / self.ns_per_iter
    }
}

/// Times `body` (which performs `ops` engine operations) over several
/// measured repetitions and keeps the best run — the least-noisy
/// estimate of the true cost on a shared machine.
fn measure(name: &'static str, ops: u64, mut body: impl FnMut()) -> Sample {
    const WARMUP: u32 = 3;
    const REPS: u32 = 7;
    const ITERS_PER_REP: u32 = 40;
    for _ in 0..WARMUP {
        body();
    }
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        for _ in 0..ITERS_PER_REP {
            body();
        }
        let ns = t0.elapsed().as_nanos() as f64 / f64::from(ITERS_PER_REP);
        best = best.min(ns);
    }
    Sample {
        name,
        ops_per_iter: ops,
        ns_per_iter: best,
    }
}

/// 4096 schedules followed by a full drain: the pure heap path.
fn bench_schedule_pop() -> Sample {
    measure("schedule_pop_4k", 8192, || {
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..4096u64 {
            q.schedule_in(SimDuration::from_nanos(i * 13 % 977), i);
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum = sum.wrapping_add(e);
        }
        std::hint::black_box(sum);
    })
}

/// Half the scheduled events cancelled before the drain: the tombstone
/// path the old `HashSet` bookkeeping paid hashing for.
fn bench_schedule_cancel_pop() -> Sample {
    measure("schedule_cancel_pop_4k", 4096 + 2048 + 2048, || {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut toks = Vec::with_capacity(4096);
        for i in 0..4096u64 {
            toks.push(q.schedule_in(SimDuration::from_nanos(i * 13 % 977), i));
        }
        for t in toks.iter().step_by(2) {
            q.cancel(*t);
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum = sum.wrapping_add(e);
        }
        std::hint::black_box(sum);
    })
}

/// Steady-state churn at depth 64 with interleaved cancels — the shape
/// of a live testbed (timers armed, retired, occasionally disarmed).
fn bench_churn() -> Sample {
    measure("churn_depth64", 4096 * 2 + 4096 / 3, || {
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..64u64 {
            q.schedule_in(SimDuration::from_nanos(i), i);
        }
        let mut sum = 0u64;
        for i in 0..4096u64 {
            let (_, e) = q.pop().unwrap();
            sum = sum.wrapping_add(e);
            let t = q.schedule_in(SimDuration::from_nanos(e * 7 % 509 + 1), i);
            if i % 3 == 0 {
                q.cancel(t);
                q.schedule_in(SimDuration::from_nanos(e * 11 % 499 + 1), i);
            }
        }
        std::hint::black_box(sum);
    })
}

/// Hot-path metric updates against an installed recorder: with
/// interned ids these are two array writes per update.
fn bench_metrics() -> Sample {
    let mut rec = TraceRecorder::new(16);
    let ops = rec.metrics_mut().metric_id("bench.ops");
    let depth = rec.metrics_mut().metric_id("bench.depth");
    let lat = rec.metrics_mut().metric_id("bench.latency");
    measure("metrics_update_4k", 4096 * 3, || {
        let m = rec.metrics_mut();
        for i in 0..4096u64 {
            m.counter_add_id(ops, 1);
            m.gauge_set_id(depth, i as f64);
            m.duration_record_id(lat, SimDuration::from_nanos(i % 997));
        }
        std::hint::black_box(m.counter("bench.ops"));
    })
}

/// Translation fast path, warm: 4096 single-page DMA checks that all
/// hit the IOTLB (mostly the level-0 run cache — the descriptors walk
/// contiguous VAs).
fn bench_translate_hit() -> Sample {
    let mut mmu = Iommu::new(8192);
    let d = mmu.create_domain(TableMode::PageFaultCapable);
    let pairs: Vec<(Vpn, FrameId)> = (0..4096u64).map(|i| (Vpn(i), FrameId(i + 64))).collect();
    mmu.map_batch(d, &pairs, true);
    // Warm the TLB with one pass.
    for i in 0..4096u64 {
        mmu.check_dma(d, Vpn(i), true);
    }
    measure("translate_hit_4k", 4096, move || {
        let mut sum = 0u64;
        for i in 0..4096u64 {
            if let iommu::DmaCheck::Ok(f) = mmu.check_dma(d, Vpn(i), true) {
                sum = sum.wrapping_add(f.0);
            }
        }
        std::hint::black_box(sum);
    })
}

/// Cold walks: every page misses the IOTLB and takes a full table walk
/// plus a queued page request — the fault-path cost per page.
fn bench_walk_miss_cold() -> Sample {
    measure("walk_miss_cold", 2048, || {
        let mut mmu = Iommu::new(64);
        let d = mmu.create_domain(TableMode::PageFaultCapable);
        let mut faults = 0usize;
        for i in 0..2048u64 {
            if let iommu::DmaCheck::Fault(_) = mmu.check_dma(d, Vpn(i), true) {
                faults += 1;
            }
        }
        std::hint::black_box((faults, mmu.drain_requests().len()));
    })
}

/// Batched scatter-gather resolution: 64 64-page ranges checked through
/// `check_dma_range`, each costing one walk with a contiguous fill
/// (the §4.3 batching ablation's fast side).
fn bench_sg_batch() -> Sample {
    let mut mmu = Iommu::new(8192);
    let d = mmu.create_domain(TableMode::PageFaultCapable);
    let pairs: Vec<(Vpn, FrameId)> = (0..4096u64).map(|i| (Vpn(i), FrameId(i + 64))).collect();
    mmu.map_batch(d, &pairs, true);
    measure("sg_batch_64p", 64 * 64, move || {
        // Flush so every range pays exactly one walk, not a TLB sweep.
        mmu.shootdown_all();
        let mut ok = 0usize;
        for r in 0..64u64 {
            let range = PageRange::new(Vpn(r * 64), 64);
            if matches!(mmu.check_dma_range(d, range, true), RangeCheck::Ok) {
                ok += 1;
            }
        }
        std::hint::black_box(ok);
    })
}

/// Translation fast path through a folded superpage: the same 4096
/// warm DMA checks as `translate_hit_4k`, but the mappings have been
/// promoted to eight 2 MiB leaves, so every hit is served by an IOTLB
/// superpage entry (one entry covers 512 pages).
fn bench_translate_hit_2m() -> Sample {
    let mut mmu = Iommu::new(8192);
    mmu.set_huge_pages(true);
    let d = mmu.create_domain(TableMode::PageFaultCapable);
    // Contiguous ascending frames from each 2 MiB chunk base: the fold
    // precondition, satisfied 8 chunks over.
    let pairs: Vec<(Vpn, FrameId)> = (0..4096u64).map(|i| (Vpn(i), FrameId(i + 64))).collect();
    mmu.map_batch(d, &pairs, true);
    assert!(
        mmu.huge_stats().0 >= 8,
        "the fixture must fold its 8 chunks"
    );
    for i in 0..4096u64 {
        mmu.check_dma(d, Vpn(i), true);
    }
    measure("translate_hit_2m", 4096, move || {
        let mut sum = 0u64;
        for i in 0..4096u64 {
            if let iommu::DmaCheck::Ok(f) = mmu.check_dma(d, Vpn(i), true) {
                sum = sum.wrapping_add(f.0);
            }
        }
        std::hint::black_box(sum);
    })
}

/// The fold itself: populate one 2 MiB chunk (512 contiguous PTEs) and
/// promote it to a huge leaf — the bookkeeping a batched cold fault
/// pays when huge pages are on.
fn bench_promote_512() -> Sample {
    let pairs: Vec<(Vpn, FrameId)> = (0..512u64).map(|i| (Vpn(i), FrameId(i + 64))).collect();
    measure("promote_512", 512, move || {
        let mut mmu = Iommu::new(1024);
        mmu.set_huge_pages(true);
        let d = mmu.create_domain(TableMode::PageFaultCapable);
        mmu.map_batch(d, &pairs, true);
        std::hint::black_box(mmu.huge_stats().0);
    })
}

/// The speculative path: a stride stream of demand faults that trains
/// the detector and issues depth-8 prefetches through the backend plan
/// path (resolve + plan, no RNG, no arbiter slots).
fn bench_prefetch_issue_8() -> Sample {
    use memsim::manager::{MemConfig, MemoryManager};
    use memsim::space::Backing;
    use memsim::types::PageRange;
    use npf_core::npf::{NpfConfig, NpfEngine};
    use simcore::rng::SimRng;
    use simcore::time::SimTime;
    use simcore::units::ByteSize;

    measure("prefetch_issue_8", 16, || {
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(64),
            ..MemConfig::default()
        });
        let mut engine = NpfEngine::new(
            NpfConfig::default().with_prefetch_depth(8),
            mm,
            SimRng::new(1),
        );
        let space = engine.memory_mut().create_space();
        engine
            .memory_mut()
            .mmap_fixed(space, PageRange::new(Vpn(0), 4096), Backing::Anonymous)
            .expect("region");
        let domain = engine.create_channel(space);
        let mut issued = 0u64;
        for w in 0..16u64 {
            let addr = Vpn(w * 4).base();
            if let Ok(rec) = engine.begin_fault(SimTime::ZERO, domain, addr, 4 * 4096, true, None) {
                let id = rec.id;
                engine.complete_fault(id);
            }
            for (id, _) in engine.drain_spawned_prefetches() {
                issued += 1;
                engine.complete_fault(id);
            }
        }
        std::hint::black_box(issued);
    })
}

/// LRU churn: touches over a working set with steady evictions — the
/// reclaim bookkeeping that used to cost two `BTreeMap` updates per
/// touch and now costs O(1) list splices.
fn bench_lru_touch_evict() -> Sample {
    measure("lru_touch_evict", 8192 + 4096, || {
        let mut lru = LruTracker::new();
        let s = SpaceId(0);
        for i in 0..8192u64 {
            lru.touch(s, Vpn(i % 6144));
            // Keep the tracked set at 4096: evict once it grows past.
            if lru.len() > 4096 {
                lru.pop_oldest();
            }
        }
        let mut drained = 0u64;
        while let Some((_, v)) = lru.pop_oldest() {
            drained = drained.wrapping_add(v.0);
        }
        std::hint::black_box(drained);
    })
}

/// The epoch-barrier merge path: 4096 cross-shard envelopes staged out
/// of order, sorted into `(time, src, seq)` delivery order — exactly
/// what every epoch exchange pays per message.
fn bench_shard_merge() -> Sample {
    use simcore::shard::{merge_order, Envelope};
    use simcore::time::SimTime;
    measure("shard_merge_4k", 4096, || {
        let envelopes: Vec<Envelope<u64>> = (0..4096u64)
            .map(|i| Envelope {
                // Scatter times/sources so the sort does real work.
                at: SimTime::from_nanos(i * 13 % 977),
                src: (i * 7 % 64) as usize,
                seq: i,
                dst: (i % 64) as usize,
                msg: i,
            })
            .collect();
        let order = merge_order(envelopes);
        std::hint::black_box(order.len());
    })
}

/// A full conservative epoch loop over 64 one-event-per-tick domains:
/// 64 epochs × 64 LPs of barrier computation, horizon-bounded
/// advancement, and cross-LP exchange (every 8th tick forwards to the
/// next domain). The per-epoch synchronization cost, minus any real
/// simulation work.
fn bench_epoch_barrier() -> Sample {
    use simcore::shard::{run_epochs, IsolationSpec, Outbox, ShardLp};
    use simcore::time::SimTime;

    struct TickLp {
        id: usize,
        queue: EventQueue<u64>,
        processed: u64,
        delivered: u64,
    }
    impl ShardLp for TickLp {
        type Msg = u64;
        fn next_event_time(&self) -> Option<simcore::time::SimTime> {
            self.queue.next_time()
        }
        fn advance(&mut self, horizon: simcore::time::SimTime, outbox: &mut Outbox<u64>) {
            while let Some(t) = self.queue.next_time() {
                if t >= horizon {
                    break;
                }
                let (at, tick) = self.queue.pop().expect("peeked");
                self.processed += 1;
                if tick < 63 {
                    self.queue
                        .schedule_at(at.saturating_add(SimDuration::from_micros(1)), tick + 1);
                }
                if tick % 8 == 0 {
                    // Arrives two lookaheads out: legal at any epoch.
                    outbox.send(
                        (self.id + 1) % 64,
                        at.saturating_add(SimDuration::from_micros(2)),
                        tick,
                    );
                }
            }
        }
        fn deliver(&mut self, _at: simcore::time::SimTime, _msg: u64) {
            self.delivered += 1;
        }
    }

    measure("epoch_barrier_64dom", 64 * 64, || {
        let lps: Vec<TickLp> = (0..64)
            .map(|id| {
                let mut queue = EventQueue::new();
                queue.schedule_at(SimTime::ZERO, 0);
                TickLp {
                    id,
                    queue,
                    processed: 0,
                    delivered: 0,
                }
            })
            .collect();
        let report = run_epochs(
            lps,
            SimDuration::from_micros(1),
            SimTime::from_micros(64),
            1,
            IsolationSpec::none(),
        );
        std::hint::black_box((report.epochs, report.messages));
    })
}

/// Reduced-size figure runs timed end to end, through the same
/// `par_runner` machinery the real binaries use.
fn figure_wall_clocks() -> Vec<(&'static str, f64)> {
    let figures: Vec<(&'static str, npf_bench::par_runner::Task)> = vec![
        ("fig3", task("fig3", || npf_bench::micro::fig3(100))),
        ("table4", task("table4", || npf_bench::micro::table4(300))),
        (
            "fig4a",
            task("fig4a", || npf_bench::eth_experiments::fig4a(4)),
        ),
        // The same figure on a 4-worker shard pool: the tentpole's
        // speedup ablation (≈ fig4a/3 on a multi-core host, since the
        // figure is three independent testbeds; equal on one core).
        (
            "fig4a_shards4",
            task("fig4a_shards4", || {
                npf_bench::tracectl::with_shards(4, || npf_bench::eth_experiments::fig4a(4))
            }),
        ),
        // The huge-page + speculative-prefetch ablation of the same
        // figure (depth 64): the perf tentpole's headline lever. CI
        // byte-diffs this cell at --jobs 4 --shards 4 against serial.
        (
            "fig4a_prefetch",
            task("fig4a_prefetch", || {
                npf_bench::tracectl::with_mem_features(true, 64, None, || {
                    npf_bench::eth_experiments::fig4a(4)
                })
            }),
        ),
        (
            "fig8b",
            task("fig8b", || npf_bench::ib_experiments::fig8b(150)),
        ),
        (
            "fig9",
            task("fig9", || npf_bench::ib_experiments::fig9(8, 4)),
        ),
        (
            "fig10_ethernet",
            task("fig10_ethernet", || {
                npf_bench::ib_experiments::fig10_ethernet(100)
            }),
        ),
    ];
    figures
        .into_iter()
        .map(|(name, t)| {
            let t0 = Instant::now();
            let out = npf_bench::par_runner::run(vec![t], 1, None, false, 16, None);
            std::hint::black_box(out.reports.len());
            (name, t0.elapsed().as_secs_f64() * 1e3)
        })
        .collect()
}

fn render_json(samples: &[Sample], figures: &[(&'static str, f64)]) -> String {
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"npf-enginebench-v1\",\n");
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str("  \"queue_events_per_sec\": {\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {:.0}{comma}\n",
            s.name,
            s.events_per_sec()
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"queue_ns_per_iter\": {\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {:.0}{comma}\n",
            s.name, s.ns_per_iter
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"figure_wall_ms\": {\n");
    for (i, (name, ms)) in figures.iter().enumerate() {
        let comma = if i + 1 < figures.len() { "," } else { "" };
        out.push_str(&format!("    \"{name}\": {ms:.1}{comma}\n"));
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Pulls `"name": <number>` out of `json` after the
/// `"queue_events_per_sec"` marker — enough of a parser for the file
/// this binary itself writes.
fn baseline_events_per_sec(json: &str, name: &str) -> Option<f64> {
    let section = json.split("\"queue_events_per_sec\"").nth(1)?;
    let section = &section[..section.find('}')?];
    let needle = format!("\"{name}\":");
    let rest = section.split(&needle).nth(1)?;
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

fn main() {
    let opts = npf_bench::tracectl::RunOpts::init(&["out", "check"]);
    // Regression guard for the fig4a_shards4 fix: a single-core host
    // must collapse any requested shard count to inline execution
    // instead of spawning workers that contend for its one core.
    assert_eq!(
        simcore::shard::effective_shards(4, 3, 1),
        1,
        "single-core hosts must run shard pools inline"
    );
    let out_path = opts.extra("out").unwrap_or("BENCH_engine.json").to_owned();
    let check_path = opts.extra("check").map(str::to_owned);

    let samples = [
        bench_schedule_pop(),
        bench_schedule_cancel_pop(),
        bench_churn(),
        bench_metrics(),
        bench_translate_hit(),
        bench_translate_hit_2m(),
        bench_promote_512(),
        bench_prefetch_issue_8(),
        bench_walk_miss_cold(),
        bench_sg_batch(),
        bench_lru_touch_evict(),
        bench_shard_merge(),
        bench_epoch_barrier(),
    ];
    for s in &samples {
        println!(
            "{:<24} {:>12.0} ns/iter  {:>14.0} events/sec",
            s.name,
            s.ns_per_iter,
            s.events_per_sec()
        );
    }
    let figures = figure_wall_clocks();
    for (name, ms) in &figures {
        println!("{name:<24} {ms:>12.1} ms");
    }

    let json = render_json(&samples, &figures);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("engine benchmark written to {out_path}");

    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let mut failed = false;
        for s in &samples {
            let Some(base) = baseline_events_per_sec(&baseline, s.name) else {
                println!("{}: no baseline entry, skipping", s.name);
                continue;
            };
            let now = s.events_per_sec();
            let floor = base * (1.0 - REGRESSION_TOLERANCE);
            let verdict = if now < floor { "REGRESSED" } else { "ok" };
            println!(
                "{:<24} baseline {:>14.0}  now {:>14.0}  ({:+.1}%)  {verdict}",
                s.name,
                base,
                now,
                (now / base - 1.0) * 100.0
            );
            failed |= now < floor;
        }
        if failed {
            eprintln!(
                "events/sec regressed more than {:.0}% against {path}",
                REGRESSION_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
    }
}
