//! Regenerates Figure 3 from recorded spans: every NPF's parent span is
//! decomposed into its `fault_trigger`/`driver_sw`/`os_translate`/
//! `update_hw_pt`/`resume` children and the per-component averages are
//! cross-checked against the cost model (acceptance: within 1%).
//!
//! Pass `--trace <path>` to also export the recorded spans as a
//! Perfetto-loadable Chrome trace.
use npf_bench::par_runner::task;

fn main() {
    npf_bench::tracectl::RunOpts::init(&[]);
    npf_bench::tracectl::run_tasks(
        vec![task("fig3_traced", || npf_bench::micro::fig3_traced(500))],
        |reports| {
            for r in &reports {
                print!("{}", r.render());
            }
        },
    );
}
