//! Regenerates Figure 3 from recorded spans: every NPF's parent span is
//! decomposed into its `fault_trigger`/`driver_sw`/`os_translate`/
//! `update_hw_pt`/`resume` children and the per-component averages are
//! cross-checked against the cost model (acceptance: within 1%).
//!
//! Pass `--trace <path>` to also export the recorded spans as a
//! Perfetto-loadable Chrome trace.
fn main() {
    npf_bench::tracectl::run(|| {
        print!("{}", npf_bench::micro::fig3_traced(500).render());
    });
}
