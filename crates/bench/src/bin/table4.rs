//! Regenerates Table 4: tail latency of NPFs.
//!
//! Supports `--trace <path>` / `--metrics <path>` / `--jobs <n>` /
//! `--shards <n>` (see `--help`; sharded figures are byte-identical
//! at every shard count).
use npf_bench::par_runner::task;

fn main() {
    npf_bench::tracectl::RunOpts::init(&[]);
    npf_bench::tracectl::run_tasks(
        vec![task("table4", || npf_bench::micro::table4(3000))],
        |reports| {
            for r in &reports {
                print!("{}", r.render());
            }
        },
    );
}
