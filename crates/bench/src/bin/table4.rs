//! Regenerates Table 4: tail latency of NPFs.
fn main() {
    print!("{}", npf_bench::micro::table4(3000).render());
}
