//! Regenerates Table 4: tail latency of NPFs.
//!
//! Supports `--trace <path>` / `--metrics <path>`.
fn main() {
    npf_bench::tracectl::run(|| {
        print!("{}", npf_bench::micro::table4(3000).render());
    });
}
