//! Multi-tenant scale-out sweep: 16→2048 IOchannels on one simulated
//! NIC, cells sharded across the pool.
//!
//! Flags (all via `tracectl::RunOpts`):
//!
//! * `--tenants <n>`: run only the `n`-tenant cells (the CI smoke job
//!   uses `--tenants 64`); absent → the full 16→2048 sweep.
//! * `--arbiter <channel|rr|wfq>`: arbitration policy (default `wfq`).
//! * `--quota <entries>`: per-tenant backup-ring quota; `0` → shared
//!   pool (default 16).
//! * `--out <path>`: where to write the JSON artifact (default
//!   `BENCH_scale.json`; skipped under `--check`).
//! * `--check <path>`: compare this run's cells against a committed
//!   artifact and exit 1 on any drift. Only simulation-deterministic
//!   tallies are compared — wall-clock lands in the separate
//!   `timings` array, never in the checked cell lines.
//! * `--jobs <n>` / `--shards <n>`: worker threads for the cell pool
//!   (the larger of the two wins; each cell is one coupling group).
//!   Output is byte-identical at every value of either flag.

use npf_bench::scale::{self, ScaleCell};
use npf_core::ArbiterPolicy;

fn main() {
    let opts = npf_bench::tracectl::RunOpts::init(&["out", "check"]);
    let out_path = opts.extra("out").unwrap_or("BENCH_scale.json").to_owned();
    let check_path = opts.extra("check").map(str::to_owned);
    let policy = opts.arbiter.unwrap_or(ArbiterPolicy::WeightedFair);
    let quota = match opts.quota {
        Some(0) => None,
        Some(q) => Some(q),
        None => Some(16),
    };
    let tenant_counts: Vec<u32> = match opts.tenants {
        Some(t) => vec![t],
        None => scale::SWEEP_TENANTS.to_vec(),
    };
    // Each cell is one coupling group; --jobs and --shards both name
    // the same cell-level pool here, so the larger wins.
    let workers = opts.jobs.max(opts.shards);

    let combos: Vec<(u32, u64)> = tenant_counts
        .iter()
        .flat_map(|&t| scale::SWEEP_SEEDS.iter().map(move |&s| (t, s)))
        .collect();

    let results: Vec<(ScaleCell, u64)> = npf_bench::tracectl::run(|| {
        simcore::shard::run_isolated(
            combos
                .iter()
                .map(|&(tenants, seed)| {
                    Box::new(move || {
                        let t0 = std::time::Instant::now();
                        let cell = scale::run_cell(tenants, seed, policy, quota);
                        (
                            cell,
                            u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX),
                        )
                    }) as Box<dyn FnOnce() -> (ScaleCell, u64) + Send>
                })
                .collect(),
            workers,
            npf_bench::tracectl::isolation_spec(),
        )
    });
    let cells: Vec<ScaleCell> = results.iter().map(|(c, _)| *c).collect();
    let wall_ms: Vec<u64> = results.iter().map(|(_, ms)| *ms).collect();
    print!("{}", scale::render_report(&cells).render());

    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let drifted = scale::check_against(&baseline, &cells);
        if drifted.is_empty() {
            println!("all {} cells match {path}", cells.len());
        } else {
            for line in &drifted {
                eprintln!("drifted from {path}: {line}");
            }
            eprintln!(
                "{} of {} cells drifted from {path}",
                drifted.len(),
                cells.len()
            );
            std::process::exit(1);
        }
    } else {
        let json = scale::render_json(policy, quota, &cells, &wall_ms);
        if let Err(e) = std::fs::write(&out_path, &json) {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(2);
        }
        println!("scale sweep written to {out_path}");
    }
}
