//! Multi-tenant scale-out sweep: 16→512 IOchannels on one simulated
//! NIC, sharded across seeds via the parallel runner.
//!
//! Flags (all via `tracectl::RunOpts`):
//!
//! * `--tenants <n>`: run only the `n`-tenant cells (the CI smoke job
//!   uses `--tenants 64`); absent → the full 16→512 sweep.
//! * `--arbiter <channel|rr|wfq>`: arbitration policy (default `wfq`).
//! * `--quota <entries>`: per-tenant backup-ring quota; `0` → shared
//!   pool (default 16).
//! * `--out <path>`: where to write the JSON artifact (default
//!   `BENCH_scale.json`; skipped under `--check`).
//! * `--check <path>`: compare this run's cells against a committed
//!   artifact and exit 1 on any drift. Only simulation-deterministic
//!   tallies are compared — wall-clock never enters the file.
//! * `--jobs <n>`: worker threads; output is byte-identical at every
//!   value.

use std::sync::Mutex;

use npf_bench::par_runner::task;
use npf_bench::scale::{self, ScaleCell};
use npf_core::ArbiterPolicy;

fn main() {
    let opts = npf_bench::tracectl::RunOpts::init(&["out", "check"]);
    let out_path = opts.extra("out").unwrap_or("BENCH_scale.json").to_owned();
    let check_path = opts.extra("check").map(str::to_owned);
    let policy = opts.arbiter.unwrap_or(ArbiterPolicy::WeightedFair);
    let quota = match opts.quota {
        Some(0) => None,
        Some(q) => Some(q),
        None => Some(16),
    };
    let tenant_counts: Vec<u32> = match opts.tenants {
        Some(t) => vec![t],
        None => scale::SWEEP_TENANTS.to_vec(),
    };

    let n_cells = tenant_counts.len() * scale::SWEEP_SEEDS.len();
    let cells: &'static Mutex<Vec<Option<ScaleCell>>> =
        Box::leak(Box::new(Mutex::new(vec![None; n_cells])));
    let mut tasks = Vec::with_capacity(n_cells);
    let mut slot = 0usize;
    for &tenants in &tenant_counts {
        for &seed in scale::SWEEP_SEEDS {
            let idx = slot;
            slot += 1;
            tasks.push(task("scale_cell", move || {
                let cell = scale::run_cell(tenants, seed, policy, quota);
                cells.lock().expect("cell slots")[idx] = Some(cell);
                npf_bench::Report::new("", "")
            }));
        }
    }

    npf_bench::tracectl::run_tasks(tasks, |_reports| {
        let cells = cells.lock().expect("cell slots");
        let cells: Vec<ScaleCell> = cells
            .iter()
            .map(|c| c.expect("every task fills its slot"))
            .collect();
        print!("{}", scale::render_report(&cells).render());
    });

    let cells: Vec<ScaleCell> = cells
        .lock()
        .expect("cell slots")
        .iter()
        .map(|c| c.expect("every task fills its slot"))
        .collect();

    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let drifted = scale::check_against(&baseline, &cells);
        if drifted.is_empty() {
            println!("all {} cells match {path}", cells.len());
        } else {
            for line in &drifted {
                eprintln!("drifted from {path}: {line}");
            }
            eprintln!(
                "{} of {} cells drifted from {path}",
                drifted.len(),
                cells.len()
            );
            std::process::exit(1);
        }
    } else {
        let json = scale::render_json(policy, quota, &cells);
        if let Err(e) = std::fs::write(&out_path, &json) {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(2);
        }
        println!("scale sweep written to {out_path}");
    }
}
