//! ODP backend differential: the identical Ethernet scenario run
//! under the firmware NPF path, the NP-RDMA-style software emulation,
//! and the pinned baseline, sharded across seeds via the parallel
//! runner.
//!
//! Flags (all via `tracectl::RunOpts`):
//!
//! * `--backend <firmware|softemu|pinned>`: run only that backend's
//!   cells; absent → all three.
//! * `--out <path>`: where to write the JSON artifact (default
//!   `BENCH_backend.json`; skipped under `--check`).
//! * `--check <path>`: compare this run's cells against a committed
//!   artifact and exit 1 on any drift. Only simulation-deterministic
//!   tallies are compared — wall-clock never enters the file.
//! * `--jobs <n>`: worker threads; output is byte-identical at every
//!   value.

use std::sync::Mutex;

use npf_bench::backends::{self, BackendCell};
use npf_bench::par_runner::task;

fn main() {
    let opts = npf_bench::tracectl::RunOpts::init(&["out", "check"]);
    let out_path = opts.extra("out").unwrap_or("BENCH_backend.json").to_owned();
    let check_path = opts.extra("check").map(str::to_owned);
    let backend_kinds: Vec<_> = match opts.backend {
        Some(k) => vec![k],
        None => backends::SWEEP_BACKENDS.to_vec(),
    };

    let n_cells = backend_kinds.len() * backends::SWEEP_SEEDS.len();
    let cells: &'static Mutex<Vec<Option<BackendCell>>> =
        Box::leak(Box::new(Mutex::new(vec![None; n_cells])));
    let mut tasks = Vec::with_capacity(n_cells);
    let mut slot = 0usize;
    for &backend in &backend_kinds {
        for &seed in backends::SWEEP_SEEDS {
            let idx = slot;
            slot += 1;
            tasks.push(task("backend_cell", move || {
                let cell = backends::run_cell(backend, seed);
                cells.lock().expect("cell slots")[idx] = Some(cell);
                npf_bench::Report::new("", "")
            }));
        }
    }

    npf_bench::tracectl::run_tasks(tasks, |_reports| {
        let cells = cells.lock().expect("cell slots");
        let cells: Vec<BackendCell> = cells
            .iter()
            .map(|c| c.expect("every task fills its slot"))
            .collect();
        print!("{}", backends::render_report(&cells).render());
    });

    let cells: Vec<BackendCell> = cells
        .lock()
        .expect("cell slots")
        .iter()
        .map(|c| c.expect("every task fills its slot"))
        .collect();

    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let drifted = backends::check_against(&baseline, &cells);
        if drifted.is_empty() {
            println!("all {} cells match {path}", cells.len());
        } else {
            for line in &drifted {
                eprintln!("drifted from {path}: {line}");
            }
            eprintln!(
                "{} of {} cells drifted from {path}",
                drifted.len(),
                cells.len()
            );
            std::process::exit(1);
        }
    } else {
        let json = backends::render_json(&cells);
        if let Err(e) = std::fs::write(&out_path, &json) {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(2);
        }
        println!("backend differential written to {out_path}");
    }
}
