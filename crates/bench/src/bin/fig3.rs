//! Regenerates Figure 3: NPF and invalidation execution breakdown.
fn main() {
    print!("{}", npf_bench::micro::fig3(500).render());
}
