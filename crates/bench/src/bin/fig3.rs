//! Regenerates Figure 3: NPF and invalidation execution breakdown.
//!
//! Pass `--trace <path>` to record a Perfetto-loadable Chrome trace of
//! the run, and/or `--metrics <path>` for the flat metrics registry.
use npf_bench::par_runner::task;

fn main() {
    npf_bench::tracectl::RunOpts::init(&[]);
    npf_bench::tracectl::run_tasks(
        vec![task("fig3", || npf_bench::micro::fig3(500))],
        |reports| {
            for r in &reports {
                print!("{}", r.render());
            }
        },
    );
}
