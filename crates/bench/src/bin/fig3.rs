//! Regenerates Figure 3: NPF and invalidation execution breakdown.
//!
//! Pass `--trace <path>` to record a Perfetto-loadable Chrome trace of
//! the run, and/or `--metrics <path>` for the flat metrics registry.
fn main() {
    npf_bench::tracectl::run(|| {
        print!("{}", npf_bench::micro::fig3(500).render());
    });
}
