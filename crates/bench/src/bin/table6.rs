//! Regenerates Table 6: effective communication bandwidth (beff).
fn main() {
    print!("{}", npf_bench::ib_experiments::table6(20, 8).render());
}
