//! Regenerates Table 6: effective communication bandwidth (beff).
//!
//! Supports `--trace <path>` / `--metrics <path>` / `--jobs <n>` /
//! `--shards <n>` (see `--help`; sharded figures are byte-identical
//! at every shard count).
use npf_bench::par_runner::task;

fn main() {
    npf_bench::tracectl::RunOpts::init(&[]);
    npf_bench::tracectl::run_tasks(
        vec![task("table6", || npf_bench::ib_experiments::table6(20, 8))],
        |reports| {
            for r in &reports {
                print!("{}", r.render());
            }
        },
    );
}
