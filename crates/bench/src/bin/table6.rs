//! Regenerates Table 6: effective communication bandwidth (beff).
//!
//! Supports `--trace <path>` / `--metrics <path>`.
fn main() {
    npf_bench::tracectl::run(|| {
        print!("{}", npf_bench::ib_experiments::table6(20, 8).render());
    });
}
