//! Regenerates Figure 10: what-if analysis with synthetic rNPFs.
//!
//! Supports `--trace <path>` / `--metrics <path>` / `--jobs <n>` /
//! `--shards <n>` (see `--help`; sharded figures are byte-identical
//! at every shard count).
use npf_bench::par_runner::task;

fn main() {
    npf_bench::tracectl::RunOpts::init(&[]);
    let tasks = vec![
        task("fig10_ethernet", || {
            npf_bench::ib_experiments::fig10_ethernet(500)
        }),
        task("fig10_infiniband", || {
            npf_bench::ib_experiments::fig10_infiniband(3000)
        }),
    ];
    npf_bench::tracectl::run_tasks(tasks, |reports| {
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                println!();
            }
            print!("{}", r.render());
        }
    });
}
