//! Regenerates Figure 10: what-if analysis with synthetic rNPFs.
//!
//! Supports `--trace <path>` / `--metrics <path>`.
fn main() {
    npf_bench::tracectl::run(|| {
        print!(
            "{}",
            npf_bench::ib_experiments::fig10_ethernet(500).render()
        );
        println!();
        print!(
            "{}",
            npf_bench::ib_experiments::fig10_infiniband(3000).render()
        );
    });
}
