//! Regenerates Figure 10: what-if analysis with synthetic rNPFs.
fn main() {
    print!(
        "{}",
        npf_bench::ib_experiments::fig10_ethernet(500).render()
    );
    println!();
    print!(
        "{}",
        npf_bench::ib_experiments::fig10_infiniband(3000).render()
    );
}
