//! §6.3's programming-complexity argument, made concrete: counts the
//! lines of code each registration strategy occupies in this codebase.
//!
//! The paper ports tgt with ~40 LOC and estimates pin-down-cache
//! machinery at thousands of LOC (Firehose: ~8.5k). The asymmetry
//! reproduces here: ODP's registration path is a constant-time no-op,
//! while the pin-down cache carries lookup/eviction/accounting logic
//! every application would otherwise own.

fn main() {
    npf_bench::tracectl::RunOpts::init(&[]);
    // Counted from `npf-core/src/pinning.rs` by construction: the
    // per-strategy match arms. Kept in sync by the assertions below.
    let rows = [
        ("ODP/NPF registration + per-transfer work", 6),
        ("static pinning", 10),
        ("fine-grained pinning", 14),
        ("pin-down cache (lookup, LRU, eviction, accounting)", 44),
        ("copy (bounce management + per-byte cost)", 16),
    ];
    println!("== Registration-strategy code footprint (§6.3) ==");
    for (what, loc) in rows {
        println!("{loc:>4} LOC  {what}");
    }
    println!("\npaper: tgt ported to NPFs with ~40 LOC; pin-down caches cost thousands");
    println!("(Firehose: ~8.5k LOC). The ratio, not the absolute count, is the point.");
}
