//! Regenerates Table 5: memory overcommitment with 1-4 memcached VMs.
//!
//! Supports `--trace <path>` / `--metrics <path>` / `--jobs <n>` /
//! `--shards <n>` (testbeds within each figure run on the shard pool;
//! output is byte-identical at every shard count).
use npf_bench::par_runner::task;

fn main() {
    npf_bench::tracectl::RunOpts::init(&[]);
    npf_bench::tracectl::run_tasks(
        vec![task("table5", || npf_bench::eth_experiments::table5(4))],
        |reports| {
            for r in &reports {
                print!("{}", r.render());
            }
        },
    );
}
