//! Regenerates Table 5: memory overcommitment with 1-4 memcached VMs.
//!
//! Supports `--trace <path>` / `--metrics <path>`.
fn main() {
    npf_bench::tracectl::run(|| {
        print!("{}", npf_bench::eth_experiments::table5(4).render());
    });
}
