//! Regenerates Table 5: memory overcommitment with 1-4 memcached VMs.
fn main() {
    print!("{}", npf_bench::eth_experiments::table5(4).render());
}
