//! E8–E12: the InfiniBand-side experiments (Figure 8, Figure 9,
//! Table 6, Figure 10).

use npf_core::pinning::Strategy;
use simcore::time::SimDuration;
use simcore::units::ByteSize;
use testbed::ib::{IbCluster, IbConfig};
use testbed::mpi_run::{run_collective, MpiRunConfig};
use testbed::storage_bed::{run_storage, StorageBedConfig};
use testbed::stream_eth::{run_stream, StreamBedConfig, StreamMode};
use workloads::mpi::Collective;
use workloads::storage::StorageConfig;

use memsim::types::PageRange;
use rdmasim::types::{SendOp, WcOpcode};

use crate::report::{f, Report};

/// E8 — Figure 8(a): storage bandwidth vs target memory.
pub fn fig8a(total_ios: u64) -> Report {
    let mut r = Report::new("Storage bandwidth vs memory limit", "Figure 8(a)");
    r.columns(["memory[GB]", "npf[GB/s]", "pin[GB/s]", "npf/pin"]);
    for mem_gib in 4..=8u64 {
        let cfg = |odp| StorageBedConfig {
            target_memory: ByteSize::gib(mem_gib),
            // OS + tgt daemon heap + kernel structures (calibrated so the
            // pinned service caches the full LUN only from ~7 GB, §6.1).
            reserved: ByteSize::mib(1600),
            block_size: 512 * 1024,
            total_ios,
            odp,
            pinned_headroom: ByteSize::mib(2200),
            storage: StorageConfig::default(), // 4 GB LUN, 1 GiB pool
            queue_depth: 16,
            warm_cache: true,
            // The paper's "high-performance hard drive" with NCQ:
            // ~0.5 ms effective access, 500 MB/s streaming.
            disk: memsim::swap::DiskConfig {
                access_latency: simcore::SimDuration::from_micros(500),
                bandwidth: simcore::Bandwidth::mbytes_per_sec(500),
            },
            tier: crate::tracectl::tier_config(),
            npf: crate::tracectl::npf_config(),
            ..StorageBedConfig::default()
        };
        let npf = run_storage(cfg(true)).expect("npf run");
        let pin = run_storage(cfg(false));
        let (pin_cell, ratio) = match pin {
            Ok(p) => (
                f(p.bandwidth_gb_s, 2),
                f(npf.bandwidth_gb_s / p.bandwidth_gb_s.max(1e-9), 2),
            ),
            Err(_) => ("fails to load".to_owned(), "-".to_owned()),
        };
        r.row([
            format!("{mem_gib}"),
            f(npf.bandwidth_gb_s, 2),
            pin_cell,
            ratio,
        ]);
    }
    r.note("paper: pinned fails below 5GB; NPFs up to 1.9x faster; parity from ~7GB");
    r
}

/// E9 — Figure 8(b): target memory usage vs initiator sessions at a
/// fixed 6 GB.
pub fn fig8b(total_ios_per_point: u64) -> Report {
    let mut r = Report::new(
        "Target memory usage vs initiator sessions (6 GB)",
        "Figure 8(b)",
    );
    r.columns(["sessions", "pin[GB]", "npf 64KB[GB]", "npf 512KB[GB]"]);
    for sessions in [1u32, 16, 40, 80] {
        let run_cfg = |odp: bool, block: u64| StorageBedConfig {
            target_memory: ByteSize::gib(6),
            reserved: ByteSize::mib(100),
            block_size: block,
            sessions,
            queue_depth: 16,
            total_ios: total_ios_per_point,
            odp,
            pinned_headroom: ByteSize::ZERO,
            storage: StorageConfig::default(),
            tier: crate::tracectl::tier_config(),
            npf: crate::tracectl::npf_config(),
            ..StorageBedConfig::default()
        };
        let pin = run_storage(run_cfg(false, 512 * 1024)).expect("pin run");
        let npf64 = run_storage(run_cfg(true, 64 * 1024)).expect("npf64 run");
        let npf512 = run_storage(run_cfg(true, 512 * 1024)).expect("npf512 run");
        // Memory "used by the tgt daemon": comm buffers (resident) plus
        // the pinned pool for the baseline. The reserved baseline is
        // excluded, as the paper plots the daemon's resident set.
        let reserved = ByteSize::mib(100).as_gib_f64();
        r.row([
            format!("{sessions}"),
            f(pin.resident.as_gib_f64() - reserved, 2),
            f(npf64.resident.as_gib_f64() - reserved, 2),
            f(npf512.resident.as_gib_f64() - reserved, 2),
        ]);
    }
    r.note("paper: pin flat at ~1.05GB; npf grows with sessions; 64KB blocks use ~1/8 of 512KB");
    r
}

/// E10 — Figure 9: IMB collectives runtime by message size and
/// registration strategy.
pub fn fig9(iterations: u32, ranks: u32) -> Report {
    let mut r = Report::new(
        "IMB collectives (off-cache): time per iteration",
        "Figure 9",
    );
    r.columns([
        "benchmark",
        "size[KB]",
        "copy[us]",
        "pin[us]",
        "npf[us]",
        "copy/pin",
        "npf/pin",
    ]);
    let strategies = [
        Strategy::Copy,
        Strategy::PinDownCache {
            capacity: ByteSize::mib(256),
        },
        Strategy::Odp,
    ];
    for collective in [
        Collective::SendRecv,
        Collective::Bcast,
        Collective::AllToAll,
    ] {
        for kb in [16u64, 32, 64, 128] {
            let mut per_iter = Vec::new();
            for strategy in strategies {
                let res = run_collective(MpiRunConfig {
                    ranks,
                    message_bytes: kb * 1024,
                    iterations,
                    warmup_iterations: 18,
                    strategy,
                    off_cache_buffers: 16,
                    collective,
                    seed: 9,
                });
                per_iter.push(res.per_iteration.as_micros_f64());
            }
            r.row([
                collective.name().to_owned(),
                format!("{kb}"),
                f(per_iter[0], 1),
                f(per_iter[1], 1),
                f(per_iter[2], 1),
                f(per_iter[0] / per_iter[1], 2),
                f(per_iter[2] / per_iter[1], 2),
            ]);
        }
    }
    r.note("paper: copy 1.1-2.2x slower than pin-down cache; NPF matches the cache");
    r
}

/// E10b — allreduce: the collective where copying does not hurt (the
/// CPU reduction forces data through the caches anyway).
pub fn fig9_allreduce(iterations: u32, ranks: u32) -> Report {
    let mut r = Report::new("IMB allreduce: copy vs pin vs npf", "Figure 9 (text)");
    r.columns(["size[KB]", "copy[us]", "pin[us]", "npf[us]"]);
    for kb in [16u64, 64] {
        let mut per_iter = Vec::new();
        for strategy in [
            Strategy::Copy,
            Strategy::PinDownCache {
                capacity: ByteSize::mib(256),
            },
            Strategy::Odp,
        ] {
            let res = run_collective(MpiRunConfig {
                ranks,
                message_bytes: kb * 1024,
                iterations,
                warmup_iterations: 18,
                strategy,
                off_cache_buffers: 16,
                collective: Collective::AllReduce,
                seed: 10,
            });
            per_iter.push(res.per_iteration.as_micros_f64());
        }
        r.row([
            format!("{kb}"),
            f(per_iter[0], 1),
            f(per_iter[1], 1),
            f(per_iter[2], 1),
        ]);
    }
    r.note("paper: allreduce shows little difference between copying and pinning");
    r
}

/// E11 — Table 6: effective bandwidth (beff-style aggregate).
pub fn table6(iterations: u32, ranks: u32) -> Report {
    let mut r = Report::new("Effective communication bandwidth (beff)", "Table 6");
    r.columns(["strategy", "bandwidth[MB/s]", "vs pin"]);
    let mut results = Vec::new();
    for (name, strategy) in [
        (
            "pinning",
            Strategy::PinDownCache {
                capacity: ByteSize::mib(256),
            },
        ),
        ("NPF", Strategy::Odp),
        ("copying", Strategy::Copy),
    ] {
        // beff mixes patterns and sizes; aggregate bandwidth over the
        // mix.
        let mut bytes = 0u64;
        let mut secs = 0f64;
        for (collective, kb) in [
            (Collective::SendRecv, 64u64),
            (Collective::SendRecv, 1024),
            (Collective::AllToAll, 256),
            (Collective::Bcast, 256),
        ] {
            let res = run_collective(MpiRunConfig {
                ranks,
                message_bytes: kb * 1024,
                iterations,
                warmup_iterations: 18,
                strategy,
                off_cache_buffers: 16,
                collective,
                seed: 11,
            });
            bytes += res.bytes_moved;
            secs += res.total.as_secs_f64();
        }
        results.push((name, bytes as f64 / 1e6 / secs));
    }
    let pin_bw = results[0].1;
    for (name, bw) in &results {
        r.row([(*name).to_owned(), f(*bw, 0), f(*bw / pin_bw, 2)]);
    }
    r.note("paper: pinning 16410, NPF 16440, copying 8020 MB/s (copy ~0.5x)");
    r
}

/// E12 (Ethernet half) — Figure 10 left: stream throughput vs synthetic
/// rNPF frequency.
pub fn fig10_ethernet(duration_ms: u64) -> Report {
    let mut r = Report::new(
        "Stream throughput vs rNPF frequency (Ethernet)",
        "Figure 10 left",
    );
    r.columns([
        "freq",
        "minor brng[Gb/s]",
        "major brng[Gb/s]",
        "minor drop[Gb/s]",
        "major drop[Gb/s]",
    ]);
    for exp in [10u32, 14, 18, 22, 26] {
        let freq = (0.5f64).powi(exp as i32);
        let mut cells = vec![format!("2^-{exp}")];
        for (mode, major) in [
            (StreamMode::Backup, false),
            (StreamMode::Backup, true),
            (StreamMode::Drop, false),
            (StreamMode::Drop, true),
        ] {
            let res = run_stream(StreamBedConfig {
                mode,
                fault_frequency: freq,
                major_faults: major,
                duration: SimDuration::from_millis(duration_ms),
                ..StreamBedConfig::default()
            });
            cells.push(f(res.goodput_gbps, 2));
        }
        r.row(cells);
    }
    r.note("paper: backup ring sustains bandwidth at high frequencies; dropping collapses; fault type only matters when dropping (RTO >> resolution)");
    r
}

/// E12 (InfiniBand half) — Figure 10 right: ib_send_bw with RNR-NACK
/// recovery, as % of the clean optimum.
pub fn fig10_infiniband(messages: u64) -> Report {
    let mut r = Report::new(
        "ib_send_bw vs rNPF frequency (InfiniBand)",
        "Figure 10 right",
    );
    r.columns(["freq", "throughput[Gb/s]", "% of optimum"]);
    let run = |freq: f64| -> f64 {
        let mut c = IbCluster::new(
            IbConfig::default()
                .with_nodes(2)
                .with_seed(5)
                .with_profile(crate::tracectl::fabric_profile())
                .with_transport(crate::tracectl::transport_config())
                .with_chaos(crate::tracectl::chaos_or_disabled()),
        );
        let (qa, qb) = c.connect(0, 1);
        let msg = 64 * 1024u64;
        let src = c.alloc_buffers(0, ByteSize::mib(8));
        let dst = c.alloc_buffers(1, ByteSize::mib(8));
        let da = c.node(0).domain_of(qa);
        let db = c.node(1).domain_of(qb);
        c.node_mut(0)
            .engine_mut()
            .pin_and_map(da, PageRange::covering(src, 8 << 20))
            .expect("pre-fault");
        c.node_mut(1)
            .engine_mut()
            .pin_and_map(db, PageRange::covering(dst, 8 << 20))
            .expect("pre-fault");
        if freq > 0.0 {
            c.set_synthetic_faults(1, freq, SimDuration::from_micros(220), 77);
        }
        // Keep a deep pipeline of sends.
        let mut sent = 0u64;
        let mut done = 0u64;
        let depth = 64u64;
        for i in 0..depth.min(messages) {
            c.post_recv(1, qb, 10_000 + i, dst, 8 << 20);
            c.post_send(
                0,
                qa,
                i,
                SendOp::Send {
                    local: src,
                    len: msg,
                },
            );
            sent += 1;
        }
        let start = simcore::time::SimTime::ZERO;
        while done < messages {
            if !c.step() {
                break;
            }
            let comps = c.drain_completions(1);
            for comp in comps {
                if comp.opcode == WcOpcode::Recv {
                    done += 1;
                    if sent < messages {
                        c.post_recv(1, qb, 20_000 + sent, dst, 8 << 20);
                        c.post_send(
                            0,
                            qa,
                            sent,
                            SendOp::Send {
                                local: src,
                                len: msg,
                            },
                        );
                        sent += 1;
                    }
                }
            }
        }
        let elapsed = c.now().saturating_since(start).as_secs_f64();
        (done * msg) as f64 * 8.0 / 1e9 / elapsed.max(1e-12)
    };
    let optimum = run(0.0);
    for exp in [10u32, 12, 14, 16, 18, 20] {
        let freq = (0.5f64).powi(exp as i32);
        let bw = run(freq);
        r.row([format!("2^-{exp}"), f(bw, 1), f(100.0 * bw / optimum, 0)]);
    }
    r.note(format!("clean optimum: {optimum:.1} Gb/s"));
    r.note("paper: RNR NACK keeps high utilization; recovery costs grow as frequency rises");
    r
}
