//! E4–E7: the Ethernet memcached experiments (Figure 4, Table 5,
//! Figure 7).

use simcore::time::SimTime;
use simcore::units::ByteSize;
use testbed::eth::{EthConfig, EthTestbed, RxMode};
use workloads::memcached::MemcachedConfig;

use crate::report::{f, Report};

/// Runs independent testbed closures on the `--shards` pool (each is
/// one coupling group; see [`simcore::shard`]). Results come back in
/// task order and instrumentation is absorbed deterministically, so
/// every experiment is byte-identical at any shard count.
fn sharded<T: Send>(tasks: Vec<Box<dyn FnOnce() -> T + Send + '_>>) -> Vec<T> {
    simcore::shard::run_isolated(
        tasks,
        crate::tracectl::shards(),
        crate::tracectl::isolation_spec(),
    )
}

fn base_config(mode: RxMode) -> EthConfig {
    // <2 GB working set: ~450k pages of 1 KB values.
    EthConfig::default()
        .with_mode(mode)
        .with_instances(1)
        .with_conns_per_instance(16)
        .with_ring_entries(64)
        .with_host_memory(ByteSize::gib(8))
        .with_memcached(MemcachedConfig {
            max_bytes: ByteSize::gib(3),
            value_size: 1024,
            ..MemcachedConfig::default()
        })
        .with_working_set_keys(1_800_000)
        .with_chaos(crate::tracectl::chaos_or_disabled())
        .with_profile(crate::tracectl::fabric_profile())
        .with_npf(crate::tracectl::npf_config())
        .with_tier(crate::tracectl::tier_config())
}

/// E4 — Figure 4(a): startup throughput over time, 64-entry ring.
///
/// `horizon_secs` bounds the simulated duration (the paper runs 80 s;
/// the interesting dynamics finish well before).
pub fn fig4a(horizon_secs: u64) -> Report {
    let mut r = Report::new(
        "Cold-ring startup throughput over time (64-entry ring)",
        "Figure 4(a)",
    );
    r.columns(["t[s]", "pin[KTPS]", "backup[KTPS]", "drop[KTPS]"]);
    // Three independent testbeds (one per rx mode) — three coupling
    // groups for the shard pool.
    let series = sharded(
        [RxMode::Pin, RxMode::Backup, RxMode::Drop]
            .into_iter()
            .map(|mode| {
                Box::new(move || {
                    let mut bed = EthTestbed::new(base_config(mode)).expect("setup");
                    bed.start_sampling();
                    bed.run_until(SimTime::from_secs(horizon_secs));
                    (
                        bed.metrics()[0].ops.series().points().to_vec(),
                        bed.total_failed_conns(),
                    )
                }) as Box<dyn FnOnce() -> (Vec<(SimTime, f64)>, u32) + Send>
            })
            .collect(),
    );
    // Report 1-second windows.
    for sec in 0..horizon_secs {
        let from = SimTime::from_secs(sec);
        let to = SimTime::from_secs(sec + 1);
        let vals: Vec<String> = series
            .iter()
            .map(|(pts, _)| {
                let mean = workloads_window_mean(pts, from, to);
                f(mean / 1e3, 1)
            })
            .collect();
        r.row([
            format!("{sec}"),
            vals[0].clone(),
            vals[1].clone(),
            vals[2].clone(),
        ]);
    }
    r.note(format!(
        "failed connections: pin {}, backup {}, drop {}",
        series[0].1, series[1].1, series[2].1
    ));
    r.note("paper: pin and backup reach steady state immediately; drop stays near zero for ~60s");
    r
}

fn workloads_window_mean(points: &[(SimTime, f64)], from: SimTime, to: SimTime) -> f64 {
    let mut sum = 0.0;
    let mut n = 0;
    for &(t, v) in points {
        if t > from && t <= to {
            sum += v;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// E5 — Figure 4(b): time to complete 10 000 operations vs ring size.
pub fn fig4b(ops: u64, deadline_secs: u64) -> Report {
    let mut r = Report::new(
        "Time to perform operations vs receive ring size",
        "Figure 4(b)",
    );
    r.columns(["ring", "pin[s]", "backup[s]", "drop[s]"]);
    // 5 rings × 3 modes = 15 independent coupling groups.
    const RINGS: [u64; 5] = [16, 64, 256, 1024, 4096];
    const MODES: [RxMode; 3] = [RxMode::Pin, RxMode::Backup, RxMode::Drop];
    let cells = sharded(
        RINGS
            .into_iter()
            .flat_map(|ring| MODES.into_iter().map(move |mode| (ring, mode)))
            .map(|(ring, mode)| {
                Box::new(move || {
                    let mut cfg = base_config(mode);
                    cfg.ring_entries = ring;
                    cfg.bm_size = ring * 2;
                    let mut bed = EthTestbed::new(cfg).expect("setup");
                    let done = bed.run_until_ops(ops, SimTime::from_secs(deadline_secs));
                    match done {
                        Some(t) => f(t.as_secs_f64(), 2),
                        // TCP gave up (SYN retries exhaust after ~127 s of
                        // dropped cold-ring traffic — the paper's "stack
                        // announces a failure").
                        None if bed.total_failed_conns() > 0 => "FAILED".to_owned(),
                        None => format!(">{deadline_secs}"),
                    }
                }) as Box<dyn FnOnce() -> String + Send>
            })
            .collect(),
    );
    for (i, ring) in RINGS.into_iter().enumerate() {
        let mut row = vec![format!("{ring}")];
        row.extend(
            cells[i * MODES.len()..(i + 1) * MODES.len()]
                .iter()
                .cloned(),
        );
        r.row(row);
    }
    r.note("paper: drop takes >10s even at 16 entries and aborts (TCP max retries) at >=128");
    r
}

/// E6 — Table 5: aggregated throughput of 1–4 memcached VMs on an
/// 8 GB host (3 GB virtual each); pinning cannot start more than two.
pub fn table5(measure_secs: u64) -> Report {
    let mut r = Report::new("Overcommit: aggregated memcached throughput", "Table 5");
    r.columns(["instances", "NPF[KTPS]", "pinning[KTPS]"]);
    // 4 instance counts × 2 modes = 8 independent coupling groups.
    let cells = sharded(
        (1..=4u32)
            .flat_map(|n| {
                [RxMode::Backup, RxMode::Pin]
                    .into_iter()
                    .map(move |m| (n, m))
            })
            .map(|(n, mode)| {
                Box::new(move || {
                    let mut cfg = base_config(mode);
                    cfg.instances = n;
                    match EthTestbed::new(cfg) {
                        Ok(mut bed) => {
                            // Warm up 1 s, then measure.
                            bed.run_until(SimTime::from_secs(1));
                            let before = bed.total_ops();
                            bed.run_until(SimTime::from_secs(1 + measure_secs));
                            let rate = (bed.total_ops() - before) as f64 / measure_secs as f64;
                            f(rate / 1e3, 0)
                        }
                        Err(_) => "N/A".to_owned(),
                    }
                }) as Box<dyn FnOnce() -> String + Send>
            })
            .collect(),
    );
    for n in 1..=4usize {
        let mut row = vec![format!("{n}")];
        row.extend(cells[(n - 1) * 2..n * 2].iter().cloned());
        r.row(row);
    }
    r.note("paper: NPF 186/311/407/484; pinning 185/310/N/A/N/A (8GB host, 3GB VMs)");
    r
}

/// E7 — Figure 7: two instances whose working sets swap (100 MB ↔
/// 900 MB) under a shared 1 GB cgroup; hits per second over time.
///
/// Instance 1 starts with the large set (preloaded up to its capacity),
/// instance 0 with the small one; at `swap_at` they exchange sizes.
/// A `(time, hits-per-second)` series for one instance.
type HitSeries = Vec<(SimTime, f64)>;

pub fn fig7(total_secs: u64, swap_at: u64) -> Report {
    let value_size = 20 * 1024; // the paper's 20 KB items
    let small_keys = (100u64 << 20) / value_size;
    // ~850 MB: the large set; together with the small one it fits the
    // 1 GB cgroup with the headroom a real deployment has.
    let big_keys = (850u64 << 20) / value_size;

    let run = |pinned: bool| -> (HitSeries, HitSeries) {
        let mut cfg = base_config(if pinned { RxMode::Pin } else { RxMode::Backup });
        cfg.instances = 2;
        cfg.conns_per_instance = 8;
        cfg.memcached = MemcachedConfig {
            max_bytes: ByteSize::gib(1),
            value_size,
            ..MemcachedConfig::default()
        };
        cfg.working_set_keys = small_keys;
        cfg.preload = false; // per-instance manual warmup below
        if pinned {
            // Static split: 500 MB each (the paper's only choice).
            cfg.memcached.max_bytes = ByteSize::mib(500);
        } else {
            cfg.cgroup_limit = Some(ByteSize::gib(1));
        }
        let mut bed = EthTestbed::new(cfg).expect("setup");
        // Instance 0 starts small (100 MB), instance 1 big (850 MB).
        // Preload big first so the small set stays resident.
        bed.resize_working_set(1, big_keys);
        bed.preload_instance(1, big_keys);
        bed.preload_instance(0, small_keys);
        bed.start_sampling();
        bed.run_until(SimTime::from_secs(swap_at));
        // The sets exchange sizes.
        bed.resize_working_set(0, big_keys);
        bed.resize_working_set(1, small_keys);
        bed.run_until(SimTime::from_secs(total_secs));
        (
            bed.metrics()[0].hits.series().points().to_vec(),
            bed.metrics()[1].hits.series().points().to_vec(),
        )
    };

    // Two independent testbeds (NPF vs pinned) — two coupling groups.
    let mut results = sharded(vec![
        Box::new(|| run(false)) as Box<dyn FnOnce() -> (HitSeries, HitSeries) + Send>,
        Box::new(|| run(true)),
    ]);
    let (pin_a, pin_b) = results.pop().expect("two tasks");
    let (npf_a, npf_b) = results.pop().expect("two tasks");

    let mut r = Report::new("Dynamic working sets: hits per second", "Figure 7");
    r.columns([
        "t[s]",
        "npf 100->900 [KHPS]",
        "npf 900->100 [KHPS]",
        "pin 100->900 [KHPS]",
        "pin 900->100 [KHPS]",
    ]);
    for sec in (0..total_secs).step_by(2) {
        let from = SimTime::from_secs(sec);
        let to = SimTime::from_secs(sec + 2);
        r.row([
            format!("{sec}"),
            f(workloads_window_mean(&npf_a, from, to) / 1e3, 1),
            f(workloads_window_mean(&npf_b, from, to) / 1e3, 1),
            f(workloads_window_mean(&pin_a, from, to) / 1e3, 1),
            f(workloads_window_mean(&pin_b, from, to) / 1e3, 1),
        ]);
    }
    r.note(format!("working sets swap at t={swap_at}s"));
    r.note("paper: with NPFs both instances converge to equal rates; with static pinning the big-set instance always suffers");
    r
}
