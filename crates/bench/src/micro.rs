//! E1–E3: NPF and invalidation microbenchmarks (Figure 3, Table 4).
//!
//! Measures the engine's fault-resolution path directly: every
//! iteration faults a *cold* buffer (fresh pages, never touched) the
//! way a cold `ibv_post_send` does, and records the component breakdown
//! and end-to-end latency.

use memsim::manager::{MemConfig, MemoryManager};
use memsim::space::Backing;
use memsim::types::Vpn;
use npf_core::cost::NpfBreakdown;
use npf_core::npf::{NpfConfig, NpfEngine};
use simcore::rng::SimRng;
use simcore::stats::DurationHistogram;
use simcore::time::SimTime;
use simcore::trace::{self, TraceRecord, TraceRecorder};
use simcore::units::ByteSize;

use crate::report::{f, Report};

/// Component averages over a set of breakdowns, in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct BreakdownAvg {
    /// (i)→(ii), hardware.
    pub trigger: f64,
    /// (ii)→(iii), software.
    pub driver: f64,
    /// (iii)→(iv), software + hardware.
    pub update: f64,
    /// (iv)→(v), hardware.
    pub resume: f64,
}

impl BreakdownAvg {
    fn total(&self) -> f64 {
        self.trigger + self.driver + self.update + self.resume
    }
}

/// Runs `iterations` cold minor NPFs of `message_bytes` and returns the
/// component averages plus the latency histogram.
pub fn measure_npf(
    message_bytes: u64,
    iterations: u32,
    seed: u64,
) -> (BreakdownAvg, DurationHistogram) {
    let mm = MemoryManager::new(MemConfig {
        total_memory: ByteSize::gib(16),
        ..MemConfig::default()
    });
    let mut engine = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(seed));
    let space = engine.memory_mut().create_space();
    let pages_per_msg = message_bytes.div_ceil(memsim::PAGE_SIZE);
    let region = engine
        .memory_mut()
        .mmap(
            space,
            ByteSize::bytes_exact(message_bytes * u64::from(iterations) + memsim::PAGE_SIZE),
            Backing::Anonymous,
        )
        .expect("buffer region");
    let domain = engine.create_channel(space);

    let mut avg = BreakdownAvg::default();
    let mut hist = DurationHistogram::new();
    for i in 0..iterations {
        let addr = Vpn(region.start.0 + u64::from(i) * pages_per_msg).base();
        let rec = engine
            .begin_fault(SimTime::ZERO, domain, addr, message_bytes, true, None)
            .expect("fault")
            .clone();
        engine.complete_fault(rec.id);
        let b: NpfBreakdown = rec.breakdown;
        avg.trigger += b.trigger_interrupt.as_micros_f64();
        avg.driver += b.driver.as_micros_f64();
        avg.update += b.update_hw_pt.as_micros_f64();
        avg.resume += b.resume.as_micros_f64();
        hist.record(b.total());
    }
    let n = f64::from(iterations);
    avg.trigger /= n;
    avg.driver /= n;
    avg.update /= n;
    avg.resume /= n;
    (avg, hist)
}

/// E1+E2 — Figure 3: execution breakdown of NPF and invalidation.
pub fn fig3(iterations: u32) -> Report {
    let (small, _) = measure_npf(4 * 1024, iterations, 31);
    let (large, _) = measure_npf(4 << 20, iterations, 32);

    let mut r = Report::new("NPF & invalidation execution breakdown", "Figure 3");
    r.columns([
        "path",
        "size",
        "trigger[us]",
        "driver[us]",
        "updatePT[us]",
        "resume[us]",
        "total[us]",
    ]);
    r.row([
        "NPF".into(),
        "4KB".into(),
        f(small.trigger, 1),
        f(small.driver, 1),
        f(small.update, 1),
        f(small.resume, 1),
        f(small.total(), 1),
    ]);
    r.row([
        "NPF".into(),
        "4MB".into(),
        f(large.trigger, 1),
        f(large.driver, 1),
        f(large.update, 1),
        f(large.resume, 1),
        f(large.total(), 1),
    ]);

    // Invalidation breakdown (Figure 3b): mapped and unmapped cases.
    let cost = NpfConfig::default().cost;
    for (label, pages, mapped) in [
        ("inval (mapped)", 1u64, true),
        ("inval (mapped)", 1024, true),
        ("inval (lazy/unmapped)", 1, false),
    ] {
        let b = cost.invalidation(pages, mapped);
        r.row([
            label.into(),
            if pages == 1 { "4KB" } else { "4MB" }.into(),
            "-".into(),
            f(b.checks.as_micros_f64(), 1),
            f(b.update_hw_pt.as_micros_f64(), 1),
            f(b.updates.as_micros_f64(), 1),
            f(b.total().as_micros_f64(), 1),
        ]);
    }
    r.note("paper: 4KB minor NPF ~220us (90% firmware), 4MB ~350us; invalidation 25-65us");
    r.note(format!(
        "hardware fraction at 4KB: {:.0}%",
        100.0 * (small.trigger + small.resume + small.update / 2.0) / small.total()
    ));
    r
}

/// Component averages recovered from `npf` trace spans.
///
/// The engine emits one parent `npf` span per fault whose children
/// (`fault_trigger`, `driver_sw`, `os_translate`, `update_hw_pt`,
/// `resume`) tile it exactly; `driver_sw + os_translate` corresponds to
/// the cost model's `driver` component.
fn traced_breakdown<'a, I: Iterator<Item = &'a TraceRecord>>(records: I) -> (BreakdownAvg, u32) {
    let mut avg = BreakdownAvg::default();
    let mut faults = 0u32;
    for r in records {
        if let TraceRecord::Span {
            track: "npf",
            name,
            duration,
            ..
        } = r
        {
            let us = duration.as_micros_f64();
            match *name {
                "npf" => faults += 1,
                "fault_trigger" => avg.trigger += us,
                "driver_sw" | "os_translate" => avg.driver += us,
                "update_hw_pt" => avg.update += us,
                "resume" => avg.resume += us,
                _ => {}
            }
        }
    }
    if faults > 0 {
        let n = f64::from(faults);
        avg.trigger /= n;
        avg.driver /= n;
        avg.update /= n;
        avg.resume /= n;
    }
    (avg, faults)
}

/// Like [`measure_npf`], but with tracing live: returns the cost-model
/// averages alongside the averages re-derived from recorded spans, plus
/// the number of faults the spans cover.
///
/// Records into the already-installed recorder when one is present
/// (e.g. under a bench binary's `--trace` flag), otherwise installs a
/// private one for the duration of the run.
pub fn measure_npf_traced(
    message_bytes: u64,
    iterations: u32,
    seed: u64,
) -> (BreakdownAvg, BreakdownAvg, u32) {
    let own = !trace::enabled();
    if own {
        // Each fault emits its parent+children spans plus one memsim
        // instant per page, so size the ring to the page count or the
        // 4MB runs wrap and lose the early parent spans.
        let pages = message_bytes.div_ceil(memsim::PAGE_SIZE) as usize;
        trace::install(TraceRecorder::new(iterations as usize * (pages + 16) + 64));
    }
    let mut before = 0usize;
    trace::with(|t| before = t.len());
    let (model, _) = measure_npf(message_bytes, iterations, seed);
    let mut derived = (BreakdownAvg::default(), 0u32);
    trace::with(|t| derived = traced_breakdown(t.records().skip(before)));
    if own {
        trace::uninstall();
    }
    (model, derived.0, derived.1)
}

/// Figure 3 regenerated from recorded spans: the observability layer's
/// cross-check that span-derived component totals agree with the cost
/// model within 1%.
pub fn fig3_traced(iterations: u32) -> Report {
    let (m4k, s4k, n4k) = measure_npf_traced(4 * 1024, iterations, 31);
    let (m4m, s4m, n4m) = measure_npf_traced(4 << 20, iterations, 32);

    let mut r = Report::new(
        "NPF execution breakdown derived from recorded spans",
        "Figure 3, traced",
    );
    r.columns(["size", "component", "model[us]", "spans[us]", "delta[%]"]);
    let mut worst = 0.0f64;
    for (size, m, s) in [("4KB", m4k, s4k), ("4MB", m4m, s4m)] {
        for (name, model_us, span_us) in [
            ("trigger", m.trigger, s.trigger),
            ("driver", m.driver, s.driver),
            ("updatePT", m.update, s.update),
            ("resume", m.resume, s.resume),
            ("total", m.total(), s.total()),
        ] {
            let delta = if model_us == 0.0 {
                0.0
            } else {
                100.0 * (span_us - model_us).abs() / model_us
            };
            worst = worst.max(delta);
            r.row([
                size.into(),
                name.into(),
                f(model_us, 2),
                f(span_us, 2),
                f(delta, 3),
            ]);
        }
    }
    r.note(format!(
        "spans cover {}+{} faults; worst disagreement {worst:.3}% (acceptance: <1%)",
        n4k, n4m
    ));
    r
}

/// E3 — Table 4: tail latency of NPFs.
pub fn table4(iterations: u32) -> Report {
    let (_, mut h4k) = measure_npf(4 * 1024, iterations, 41);
    let (_, mut h4m) = measure_npf(4 << 20, iterations, 42);
    let mut r = Report::new("Tail latency of NPFs", "Table 4");
    r.columns(["message size", "50%", "95%", "99%", "max"]);
    for (label, h) in [("4KB", &mut h4k), ("4MB", &mut h4m)] {
        let p50 = h.percentile(0.50);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        let max = h.max();
        r.row([
            label.to_owned(),
            format!("{:.0}us", p50.as_micros_f64()),
            format!("{:.0}us", p95.as_micros_f64()),
            format!("{:.0}us", p99.as_micros_f64()),
            format!("{:.0}us", max.as_micros_f64()),
        ]);
    }
    r.note("paper: 4KB 215/250/261/464us; 4MB 352/431/440/687us");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn npf_4kb_matches_calibration() {
        let (avg, mut hist) = measure_npf(4 * 1024, 300, 7);
        let total = avg.total();
        assert!((190.0..260.0).contains(&total), "4KB total {total:.1}us");
        let p50 = hist.percentile(0.5).as_micros_f64();
        assert!((195.0..245.0).contains(&p50), "median {p50:.1}us");
        // Tails exceed the median but stay bounded.
        let max = hist.max().as_micros_f64();
        assert!(max > p50 * 1.05);
        assert!(max < p50 * 3.0);
    }

    #[test]
    fn npf_4mb_grows_in_software() {
        let (small, _) = measure_npf(4 * 1024, 100, 7);
        let (large, _) = measure_npf(4 << 20, 100, 8);
        assert!(
            large.driver > small.driver * 5.0,
            "software component grows"
        );
        assert!(
            (large.trigger - small.trigger).abs() < 20.0,
            "hardware trigger roughly constant"
        );
        assert!((300.0..420.0).contains(&large.total()));
    }

    #[test]
    fn reports_render() {
        let r = fig3(50);
        assert!(r.render().contains("NPF"));
        let r = table4(100);
        assert!(r.render().contains("4MB"));
    }

    #[test]
    fn span_breakdown_matches_cost_model_within_1pct() {
        for (bytes, seed) in [(4 * 1024, 31), (4 << 20, 32)] {
            let (model, spans, faults) = measure_npf_traced(bytes, 100, seed);
            assert_eq!(faults, 100, "one parent span per fault");
            for (name, m, s) in [
                ("trigger", model.trigger, spans.trigger),
                ("driver", model.driver, spans.driver),
                ("updatePT", model.update, spans.update),
                ("resume", model.resume, spans.resume),
                ("total", model.total(), spans.total()),
            ] {
                let delta = 100.0 * (s - m).abs() / m.max(f64::EPSILON);
                assert!(
                    delta < 1.0,
                    "{name}: model {m:.3}us spans {s:.3}us ({delta:.3}%)"
                );
            }
        }
    }

    #[test]
    fn traced_report_renders_and_leaves_tracing_off() {
        let r = fig3_traced(50);
        let text = r.render();
        assert!(text.contains("spans[us]"));
        assert!(text.contains("worst disagreement"));
        assert!(!trace::enabled(), "private recorder uninstalled");
    }
}
