//! Lossy-fabric transport sweep (the `lossybench` binary's engine).
//!
//! Runs the *same* cold-ring incast scenario — three senders fanning
//! into one receiver whose ODP memory is unmapped, so rNPFs fire on
//! first touch — once per fabric profile (lossless + PFC, then random
//! loss from 0.01% to 1%), per RC transport (legacy go-back-N vs the
//! IRN-style selective repeat), and per ODP backend. The differential
//! is the point of the figure: on the lossless PFC fabric the two
//! transports are equivalent, while under loss go-back-N pays a full
//! window rewind per drop and selective repeat retransmits only the
//! missing PSNs, so IRN's goodput must hold up as loss rises
//! (DESIGN §15). Cells shard across the sweep via
//! [`crate::par_runner`], so `--jobs N` and `--shards N` produce
//! byte-identical output to a serial run; the JSON the binary commits
//! (`BENCH_lossy.json`) carries only simulation-deterministic tallies,
//! never wall-clock.

use netsim::profile::{FabricProfile, RdmaTransport, TransportConfig};
use npf_core::{BackendKind, BackendSelect};
use simcore::time::SimDuration;
use simcore::units::ByteSize;
use testbed::builder::ScenarioBuilder;
use testbed::ib::IbCluster;

use crate::report::Report;
use rdmasim::types::{SendOp, WcOpcode, WcStatus};

/// The fabric profiles a full sweep visits, in artifact order:
/// "RoCE by the book" (lossless + PFC), then rising random loss. ECN
/// marking is armed everywhere so the incast's congestion shows up in
/// the `ecn_marks` column without changing delivery.
#[must_use]
pub fn sweep_profiles() -> Vec<FabricProfile> {
    let ecn = Some(SimDuration::from_micros(20));
    vec![
        FabricProfile::lossless_pfc().with_ecn(ecn),
        FabricProfile::lossy(0.0001).with_ecn(ecn),
        FabricProfile::lossy(0.001).with_ecn(ecn),
        FabricProfile::lossy(0.01).with_ecn(ecn),
    ]
}

/// The transports each profile is run under, in artifact order.
pub const SWEEP_TRANSPORTS: &[RdmaTransport] =
    &[RdmaTransport::GoBackN, RdmaTransport::SelectiveRepeat];

/// The ODP backends each (profile, transport) pair is run under.
pub const SWEEP_BACKENDS: &[BackendKind] = &[
    BackendKind::Firmware,
    BackendKind::SoftEmu,
    BackendKind::Pinned,
];

/// Senders fanning into the one receiver node.
pub const SENDERS: u32 = 3;

/// Messages each sender pushes through its QP.
pub const MESSAGES_PER_SENDER: u64 = 48;

/// Message payload bytes (16 MTU packets at the default 4 KiB MTU).
pub const MESSAGE_BYTES: u64 = 64 * 1024;

/// One sweep point. All fields are deterministic in
/// `(profile, transport, backend)` — nothing here may ever hold
/// wall-clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LossyCell {
    /// Fabric profile label (`pfc`, `loss0.01%`, …).
    pub profile: String,
    /// RC loss-recovery discipline this cell ran under.
    pub transport: RdmaTransport,
    /// The ODP backend servicing the receiver's cold-ring faults.
    pub backend: BackendKind,
    /// Messages delivered across all senders.
    pub delivered: u64,
    /// Aggregate receiver goodput in kilobits per simulated second.
    pub goodput_kbps: u64,
    /// Loss-driven retransmissions (timeout, sequence NAK, SACK hole),
    /// summed over the sender QPs.
    pub retransmits: u64,
    /// RNR-NACK-driven rewinds (receiver readiness, not loss).
    pub rnr_retransmits: u64,
    /// Transport timer expirations, summed over the sender QPs.
    pub timeouts: u64,
    /// Packets the fabric dropped (random loss; the queues are sized so
    /// tail drop never fires).
    pub fabric_drops: u64,
    /// Packets ECN-marked while queued at the incast bottleneck.
    pub ecn_marks: u64,
    /// PFC pause events raised by the switch (PFC profile only).
    pub pfc_pauses: u64,
}

/// Runs one sweep cell: the canonical cold-ring incast under one
/// fabric profile, transport, and backend.
///
/// # Panics
///
/// Panics when the cell's scenario fails validation or a QP completes
/// with an error — either is a lossybench bug, not an input error.
#[must_use]
pub fn run_cell(profile: FabricProfile, transport: RdmaTransport, backend: BackendKind) -> LossyCell {
    let receiver = SENDERS; // node index of the fan-in target
    let mut cluster: IbCluster = ScenarioBuilder::infiniband()
        .nodes(SENDERS + 1)
        .node_memory(ByteSize::mib(512))
        .npf(crate::tracectl::npf_config().with_backend(BackendSelect::of(backend)))
        .profile(profile)
        .transport(TransportConfig::default().with_transport(transport))
        .seed(7)
        .build()
        .expect("lossybench cell must validate");

    // One QP per sender into the receiver; the receive buffers stay
    // unmapped (cold), so the first packets of every ring raise rNPFs.
    let mut pairs = Vec::new();
    for s in 0..SENDERS {
        let (qs, qr) = cluster.connect(s, receiver);
        let src = cluster.alloc_buffers(s, ByteSize::mib(1));
        let dst = cluster.alloc_buffers(receiver, ByteSize::mib(1));
        pairs.push((s, qs, qr, src, dst));
    }

    // A deep pipeline per sender: enough recvs for every message, a
    // send window the transport is free to pace.
    for (s, qs, qr, src, dst) in &pairs {
        for i in 0..MESSAGES_PER_SENDER {
            cluster.post_recv(receiver, *qr, 10_000 + i, *dst, ByteSize::mib(1).bytes());
            cluster.post_send(
                *s,
                *qs,
                i,
                SendOp::Send {
                    local: *src,
                    len: MESSAGE_BYTES,
                },
            );
        }
    }

    let total = u64::from(SENDERS) * MESSAGES_PER_SENDER;
    let mut delivered = 0u64;
    let mut guard = 0u64;
    while delivered < total {
        if !cluster.step() {
            break;
        }
        guard += 1;
        assert!(guard < 50_000_000, "lossybench cell diverged");
        for comp in cluster.drain_completions(receiver) {
            if comp.opcode == WcOpcode::Recv {
                assert_eq!(comp.status, WcStatus::Success, "receiver QP errored");
                delivered += 1;
            }
        }
    }

    let elapsed = cluster.now().as_secs_f64();
    let goodput_kbps = ((delivered * MESSAGE_BYTES * 8) as f64 / elapsed.max(1e-12) / 1e3) as u64;
    let mut cell = LossyCell {
        profile: profile.label(),
        transport,
        backend,
        delivered,
        goodput_kbps,
        retransmits: 0,
        rnr_retransmits: 0,
        timeouts: 0,
        fabric_drops: cluster.fabric().total_drops(),
        ecn_marks: cluster.fabric().total_marked(),
        pfc_pauses: cluster.fabric().pfc_pauses(),
    };
    for (s, qs, _, _, _) in &pairs {
        let st = cluster.node(*s).qp_stats(*qs);
        cell.retransmits += st.retransmits;
        cell.rnr_retransmits += st.rnr_retransmits;
        cell.timeouts += st.timeouts;
    }
    cell
}

/// One cell as a single JSON line — the unit `--check` compares, so
/// the spelling must stay byte-stable.
#[must_use]
pub fn cell_json(c: &LossyCell) -> String {
    format!(
        "{{\"profile\": \"{}\", \"transport\": \"{}\", \"backend\": \"{}\", \
         \"delivered\": {}, \"goodput_kbps\": {}, \"retransmits\": {}, \
         \"rnr_retransmits\": {}, \"timeouts\": {}, \"fabric_drops\": {}, \
         \"ecn_marks\": {}, \"pfc_pauses\": {}}}",
        c.profile,
        c.transport.name(),
        c.backend.as_str(),
        c.delivered,
        c.goodput_kbps,
        c.retransmits,
        c.rnr_retransmits,
        c.timeouts,
        c.fabric_drops,
        c.ecn_marks,
        c.pfc_pauses
    )
}

/// The full JSON artifact: header plus one line per cell, in task
/// order. Deterministic in the cells — byte-identical at every
/// `--jobs` and `--shards` value.
#[must_use]
pub fn render_json(cells: &[LossyCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"npf-lossybench-v1\",\n");
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!("    {}{sep}\n", cell_json(c)));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Compares freshly-run cells against a committed baseline artifact:
/// every cell's JSON line must appear verbatim in `baseline`. Subset
/// runs (`--transport irn`, `--backend softemu`) check only their own
/// cells. Returns the mismatched cells' JSON lines.
#[must_use]
pub fn check_against(baseline: &str, cells: &[LossyCell]) -> Vec<String> {
    cells
        .iter()
        .map(cell_json)
        .filter(|line| !baseline.contains(line.as_str()))
        .collect()
}

/// Renders the sweep as one stdout table, in cell order.
#[must_use]
pub fn render_report(cells: &[LossyCell]) -> Report {
    let mut r = Report::new(
        "lossy-fabric transport differential: cold-ring incast",
        "go-back-N + PFC vs IRN-style selective repeat, per ODP backend",
    );
    r.columns([
        "profile",
        "transport",
        "backend",
        "delivered",
        "goodput[Mb/s]",
        "retransmits",
        "rnr",
        "timeouts",
        "drops",
        "ecn",
        "pauses",
    ]);
    for c in cells {
        r.row([
            c.profile.clone(),
            c.transport.name().to_owned(),
            c.backend.as_str().to_owned(),
            c.delivered.to_string(),
            format!("{}.{:01}", c.goodput_kbps / 1000, (c.goodput_kbps % 1000) / 100),
            c.retransmits.to_string(),
            c.rnr_retransmits.to_string(),
            c.timeouts.to_string(),
            c.fabric_drops.to_string(),
            c.ecn_marks.to_string(),
            c.pfc_pauses.to_string(),
        ]);
    }
    r.note("identical incast per row; only the recovery discipline and wire differ");
    r.note("paper argument (IRN): selective repeat keeps goodput as loss rises; go-back-N decays");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_deterministic() {
        let p = FabricProfile::lossy(0.001);
        let a = run_cell(p, RdmaTransport::SelectiveRepeat, BackendKind::Firmware);
        let b = run_cell(p, RdmaTransport::SelectiveRepeat, BackendKind::Firmware);
        assert_eq!(a, b);
        assert_eq!(a.delivered, u64::from(SENDERS) * MESSAGES_PER_SENDER);
        assert!(a.fabric_drops > 0, "1e-3 loss must drop something: {a:?}");
        assert!(a.retransmits > 0, "drops must force retransmits: {a:?}");
    }

    #[test]
    fn irn_beats_gbn_under_loss() {
        // The tentpole differential: at 0.1% loss on the cold-ring
        // incast, selective repeat must deliver at least go-back-N's
        // goodput (in practice it wins by a wide margin).
        let p = FabricProfile::lossy(0.001);
        let gbn = run_cell(p, RdmaTransport::GoBackN, BackendKind::Firmware);
        let irn = run_cell(p, RdmaTransport::SelectiveRepeat, BackendKind::Firmware);
        assert_eq!(gbn.delivered, irn.delivered, "both must finish the incast");
        assert!(
            irn.goodput_kbps >= gbn.goodput_kbps,
            "IRN must hold goodput under loss: irn={} gbn={}",
            irn.goodput_kbps,
            gbn.goodput_kbps
        );
    }

    #[test]
    fn pfc_cell_pauses_and_stays_lossless() {
        let p = FabricProfile::lossless_pfc().with_ecn(Some(SimDuration::from_micros(20)));
        let cell = run_cell(p, RdmaTransport::GoBackN, BackendKind::Firmware);
        assert_eq!(cell.delivered, u64::from(SENDERS) * MESSAGES_PER_SENDER);
        assert_eq!(cell.fabric_drops, 0, "PFC fabric must not drop: {cell:?}");
        assert_eq!(cell.retransmits, 0, "lossless ⇒ no loss recovery: {cell:?}");
    }

    #[test]
    fn check_against_spots_a_drifted_cell() {
        let p = FabricProfile::lossy(0.001);
        let cells = [
            run_cell(p, RdmaTransport::GoBackN, BackendKind::Pinned),
            run_cell(p, RdmaTransport::SelectiveRepeat, BackendKind::Pinned),
        ];
        let baseline = render_json(&cells);
        assert!(check_against(&baseline, &cells).is_empty());
        let mut drifted = cells;
        drifted[1].goodput_kbps += 1;
        let bad = check_against(&baseline, &drifted);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("\"transport\": \"irn\""), "{bad:?}");
    }
}
