//! Tail-latency attribution (the `whyslow` binary's engine).
//!
//! Answers the question every overcommitted deployment asks about
//! Figure 4's tails: *which phase of the NPF pipeline made the slow
//! faults slow?* It re-runs the multi-tenant memcached-overcommit
//! scenario from [`crate::scale`] with the [`simcore::journal`]
//! fault-lifecycle recorder installed, merges the per-seed journals in
//! task order, and renders the per-tenant per-phase p50/p99/p999
//! attribution table. Every number is simulation-deterministic: the
//! artifact is byte-identical at every `--jobs` value, so CI diffs it
//! and `--check` pins it against a committed golden copy.

use npf_core::ArbiterPolicy;
use simcore::chaos::ChaosConfig;
use simcore::journal::{JournalRecorder, JournalWatchdog};
use simcore::time::SimDuration;

use crate::par_runner::{self, task, JournalSpec};
use crate::scale;

/// The seeds a whyslow run shards across (matching the scale sweep).
pub const DEFAULT_SEEDS: &[u64] = &[1, 2];

/// Tenant count of the paper-sized overcommit scenario.
pub const OVERCOMMIT_TENANTS: u32 = 64;

/// Tenant count of the CI-sized smoke scenario.
pub const SMALL_TENANTS: u32 = 4;

/// Resolves a `--scenario` name to its tenant count. `overcommit` is
/// the paper-sized 64-tenant run; `small` (alias `fig3`) keeps the CI
/// byte-diff job cheap.
///
/// # Errors
///
/// Returns a one-line description for an unknown scenario name.
pub fn scenario_tenants(name: &str) -> Result<u32, String> {
    match name {
        "overcommit" => Ok(OVERCOMMIT_TENANTS),
        "small" | "fig3" => Ok(SMALL_TENANTS),
        other => Err(format!(
            "unknown --scenario {other:?} (try \"overcommit\" or \"small\")"
        )),
    }
}

/// Runs the scenario's cells — one task per seed, each an independent
/// [`scale::run_cell`] with its own journal — and returns the merged
/// journal plus the chaos tallies from the runner.
///
/// # Panics
///
/// Panics when the runner fails to return the requested journal — a
/// whyslow bug, not an input error.
#[must_use]
pub fn run_scenario(
    tenants: u32,
    seeds: &[u64],
    policy: ArbiterPolicy,
    budget: Option<SimDuration>,
    jobs: usize,
    chaos: Option<ChaosConfig>,
) -> (JournalRecorder, par_runner::RunOutcome) {
    let tasks: Vec<par_runner::Task> = seeds
        .iter()
        .map(|&seed| {
            task("whyslow_cell", move || {
                let _ = scale::run_cell_chaos(tenants, seed, policy, Some(16), chaos);
                crate::Report::new("", "")
            })
        })
        .collect();
    let spec = JournalSpec {
        watchdog: budget.map(|budget| JournalWatchdog { budget }),
    };
    let mut outcome = par_runner::run(tasks, jobs, chaos, false, 1 << 16, Some(spec));
    let journal = outcome.journal.take().expect("journal requested above");
    (journal, outcome)
}

/// Faults whose phase sums disagree with their end-to-end latency.
/// The journal constructs slices that tile `[begun, ready_at]`, so
/// anything nonzero here is an instrumentation bug.
#[must_use]
pub fn exact_sum_violations(journal: &JournalRecorder) -> usize {
    journal
        .faults()
        .iter()
        .filter(|f| f.phase_sum() != f.latency())
        .count()
}

/// The committed artifact: a scenario header, the attribution table,
/// and any SLO hits. Deterministic in `(tenants, policy, seeds)` —
/// byte-identical at every `--jobs` value.
#[must_use]
pub fn render_artifact(
    tenants: u32,
    policy: ArbiterPolicy,
    seeds: &[u64],
    journal: &JournalRecorder,
) -> String {
    let seed_list = seeds
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mut out = format!(
        "whyslow: {} tenants, arbiter {}, seeds [{}], horizon {}us\n",
        tenants,
        scale::policy_name(policy),
        seed_list,
        scale::CELL_HORIZON.as_micros()
    );
    out.push_str(&journal.attribution_report());
    out.push_str(&journal.slo_report());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_attributes_every_fault_exactly() {
        let (journal, outcome) = run_scenario(
            SMALL_TENANTS,
            &[1],
            ArbiterPolicy::WeightedFair,
            None,
            1,
            None,
        );
        assert_eq!(outcome.reports.len(), 1);
        assert!(!journal.faults().is_empty(), "cold rings must fault");
        assert_eq!(exact_sum_violations(&journal), 0);
        assert_eq!(journal.unbalanced_faults(), 0);
        let report = journal.attribution_report();
        assert!(report.contains("journal:"), "{report}");
        assert!(report.contains("queue"), "{report}");
    }

    #[test]
    fn artifact_is_byte_identical_across_jobs() {
        let render = |jobs| {
            let (journal, _) = run_scenario(
                SMALL_TENANTS,
                DEFAULT_SEEDS,
                ArbiterPolicy::WeightedFair,
                Some(SimDuration::from_micros(50)),
                jobs,
                None,
            );
            render_artifact(
                SMALL_TENANTS,
                ArbiterPolicy::WeightedFair,
                DEFAULT_SEEDS,
                &journal,
            )
        };
        assert_eq!(render(1), render(4));
    }

    #[test]
    fn scenario_names_resolve() {
        assert_eq!(scenario_tenants("overcommit"), Ok(OVERCOMMIT_TENANTS));
        assert_eq!(scenario_tenants("small"), Ok(SMALL_TENANTS));
        assert_eq!(scenario_tenants("fig3"), Ok(SMALL_TENANTS));
        assert!(scenario_tenants("gremlins").is_err());
    }
}
