//! `--trace` / `--metrics` support for the bench binaries.
//!
//! Every `bin/` target wraps its body in [`run`], which scans argv for
//!
//! * `--trace <path>` (or `--trace=<path>`): install a
//!   [`TraceRecorder`] for the duration of the run and write the
//!   Chrome trace-event JSON (Perfetto-loadable) to `path` on exit.
//! * `--metrics <path>` (or `--metrics=<path>`): write the flat
//!   metrics registry on exit — CSV if `path` ends in `.csv`, JSON
//!   otherwise.
//!
//! Traces are stamped exclusively with [`simcore::time::SimTime`], so
//! the same seed produces byte-identical files.

use std::path::{Path, PathBuf};

use simcore::trace::{self, TraceRecorder};

/// Default ring capacity for binary-driven traces: large enough to
/// hold full experiment runs without wrapping.
const DEFAULT_CAPACITY: usize = 1 << 20;

/// Extracts the value of `--<flag> <path>` or `--<flag>=<path>` from
/// an argv-style iterator.
fn flag_value<I: IntoIterator<Item = String>>(args: I, flag: &str) -> Option<PathBuf> {
    let long = format!("--{flag}");
    let eq = format!("--{flag}=");
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == long {
            let value = args.next();
            if value.is_none() {
                eprintln!("warning: {long} requires a path argument; ignoring");
            }
            return value.map(PathBuf::from);
        }
        if let Some(rest) = a.strip_prefix(&eq) {
            return Some(PathBuf::from(rest));
        }
    }
    None
}

/// `--trace <path>` from the process arguments, if present.
#[must_use]
pub fn trace_path() -> Option<PathBuf> {
    flag_value(std::env::args().skip(1), "trace")
}

/// `--metrics <path>` from the process arguments, if present.
#[must_use]
pub fn metrics_path() -> Option<PathBuf> {
    flag_value(std::env::args().skip(1), "metrics")
}

fn write_or_warn(path: &Path, what: &str, contents: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!("{what} written to {}", path.display()),
        Err(e) => eprintln!("failed to write {what} to {}: {e}", path.display()),
    }
}

/// Runs `body` with tracing installed when `--trace`/`--metrics` are
/// present in argv, exporting the requested files afterwards. Without
/// either flag this is a plain call to `body` (tracing stays disabled,
/// so instrumentation costs one branch per site).
pub fn run<R>(body: impl FnOnce() -> R) -> R {
    let trace_to = trace_path();
    let metrics_to = metrics_path();
    if trace_to.is_none() && metrics_to.is_none() {
        return body();
    }
    let prev = trace::install(TraceRecorder::new(DEFAULT_CAPACITY));
    let out = body();
    let recorder = trace::uninstall().expect("recorder installed above");
    if let Some(prev) = prev {
        trace::install(prev);
    }
    if let Some(path) = trace_to {
        if recorder.dropped() > 0 {
            eprintln!(
                "trace ring wrapped: {} oldest records dropped",
                recorder.dropped()
            );
        }
        write_or_warn(&path, "chrome trace", &recorder.export_chrome_json());
    }
    if let Some(path) = metrics_to {
        let is_csv = path.extension().is_some_and(|e| e == "csv");
        let contents = if is_csv {
            recorder.metrics().to_csv()
        } else {
            recorder.metrics().to_json()
        };
        write_or_warn(&path, "metrics", &contents);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_space_and_equals_forms() {
        assert_eq!(
            flag_value(argv(&["--trace", "/tmp/t.json"]), "trace"),
            Some(PathBuf::from("/tmp/t.json"))
        );
        assert_eq!(
            flag_value(argv(&["--trace=/tmp/t.json"]), "trace"),
            Some(PathBuf::from("/tmp/t.json"))
        );
        assert_eq!(flag_value(argv(&["--other", "x"]), "trace"), None);
        assert_eq!(flag_value(argv(&["--trace"]), "trace"), None);
    }

    #[test]
    fn run_without_flags_leaves_tracing_disabled() {
        let r = run(|| {
            assert!(!trace::enabled());
            7
        });
        assert_eq!(r, 7);
    }
}
