//! `--trace` / `--metrics` support for the bench binaries.
//!
//! Every `bin/` target wraps its body in [`run`], which scans argv for
//!
//! * `--trace <path>` (or `--trace=<path>`): install a
//!   [`TraceRecorder`] for the duration of the run and write the
//!   Chrome trace-event JSON (Perfetto-loadable) to `path` on exit.
//! * `--metrics <path>` (or `--metrics=<path>`): write the flat
//!   metrics registry on exit — CSV if `path` ends in `.csv`, JSON
//!   otherwise.
//! * `--chaos-seed <n>` / `--chaos-profile <name>`: build a
//!   [`ChaosConfig`] for fault injection ([`chaos_config`]). Profiles:
//!   `network`, `interrupts`, `npf`, `memory`, `iommu`, `all`
//!   (default `all`). Binaries that support chaos pass the config into
//!   their testbeds; a failing run prints the seed for replay.
//! * `--jobs <n>` (or `--jobs=<n>`): run the binary's experiment
//!   points across `n` worker threads via [`crate::par_runner`]
//!   ([`run_tasks`]). `0` means "all available cores". Output is
//!   byte-identical at every job count.
//!
//! Traces are stamped exclusively with [`simcore::time::SimTime`], so
//! the same seed produces byte-identical files.

use std::path::{Path, PathBuf};

use simcore::chaos::{invariant, ChaosConfig, ChaosProfile, InvariantChecker};
use simcore::trace::{self, TraceRecorder};

/// Default ring capacity for binary-driven traces: large enough to
/// hold full experiment runs without wrapping.
const DEFAULT_CAPACITY: usize = 1 << 20;

/// Extracts the value of `--<flag> <path>` or `--<flag>=<path>` from
/// an argv-style iterator.
fn flag_value<I: IntoIterator<Item = String>>(args: I, flag: &str) -> Option<PathBuf> {
    let long = format!("--{flag}");
    let eq = format!("--{flag}=");
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == long {
            let value = args.next();
            if value.is_none() {
                eprintln!("warning: {long} requires a path argument; ignoring");
            }
            return value.map(PathBuf::from);
        }
        if let Some(rest) = a.strip_prefix(&eq) {
            return Some(PathBuf::from(rest));
        }
    }
    None
}

/// `--trace <path>` from the process arguments, if present.
#[must_use]
pub fn trace_path() -> Option<PathBuf> {
    flag_value(std::env::args().skip(1), "trace")
}

/// `--metrics <path>` from the process arguments, if present.
#[must_use]
pub fn metrics_path() -> Option<PathBuf> {
    flag_value(std::env::args().skip(1), "metrics")
}

/// Builds a [`ChaosConfig`] from `--chaos-seed` / `--chaos-profile`
/// argv-style arguments. Returns `None` (chaos disabled) when neither
/// flag is present; `--chaos-profile` alone uses seed 0.
fn chaos_from_args<I: IntoIterator<Item = String>>(args: I) -> Option<ChaosConfig> {
    let args: Vec<String> = args.into_iter().collect();
    let seed = flag_value(args.iter().cloned(), "chaos-seed").map(|p| {
        p.to_string_lossy()
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("--chaos-seed must be an integer: {e}"))
    });
    let profile = flag_value(args, "chaos-profile").map(|p| {
        let name = p.to_string_lossy();
        ChaosProfile::from_name(&name)
            .unwrap_or_else(|| panic!("unknown --chaos-profile {name:?} (try \"all\")"))
    });
    if seed.is_none() && profile.is_none() {
        return None;
    }
    Some(ChaosConfig::profile(
        profile.unwrap_or(ChaosProfile::All),
        seed.unwrap_or(0),
    ))
}

/// The fault-injection config requested on the command line, if any.
/// On the first call with chaos enabled, prints the chosen seed so a
/// violation can be replayed (experiments build many testbeds; one
/// announcement is enough).
#[must_use]
pub fn chaos_config() -> Option<ChaosConfig> {
    static ANNOUNCE: std::sync::Once = std::sync::Once::new();
    let cfg = chaos_from_args(std::env::args().skip(1))?;
    ANNOUNCE.call_once(|| {
        eprintln!(
            "chaos enabled: seed {} (replay with --chaos-seed {})",
            cfg.seed, cfg.seed
        );
    });
    Some(cfg)
}

/// [`chaos_config`], defaulting to disabled: the form testbed config
/// literals splice in directly.
#[must_use]
pub fn chaos_or_disabled() -> ChaosConfig {
    chaos_config().unwrap_or_else(ChaosConfig::disabled)
}

/// Parses `--jobs <n>` from argv-style arguments. Absent → 1 (serial);
/// `0` → all available cores.
fn jobs_from_args<I: IntoIterator<Item = String>>(args: I) -> usize {
    let Some(raw) = flag_value(args, "jobs") else {
        return 1;
    };
    let n = raw
        .to_string_lossy()
        .parse::<usize>()
        .unwrap_or_else(|e| panic!("--jobs must be an integer: {e}"));
    if n == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        n
    }
}

/// The worker count requested with `--jobs`, defaulting to 1.
#[must_use]
pub fn jobs() -> usize {
    jobs_from_args(std::env::args().skip(1))
}

fn write_or_warn(path: &Path, what: &str, contents: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!("{what} written to {}", path.display()),
        Err(e) => eprintln!("failed to write {what} to {}: {e}", path.display()),
    }
}

/// Runs `body` with tracing installed when `--trace`/`--metrics` are
/// present in argv, exporting the requested files afterwards. Without
/// either flag this is a plain call to `body` (tracing stays disabled,
/// so instrumentation costs one branch per site).
///
/// When `--chaos-seed`/`--chaos-profile` are present, also installs a
/// global [`InvariantChecker`] around `body`: a violation prints the
/// failing seed (plus the trace ring, when recording) and the process
/// exits nonzero, so chaos-enabled experiment runs are CI-able.
pub fn run<R>(body: impl FnOnce() -> R) -> R {
    let chaos = chaos_config();
    if let Some(cfg) = chaos {
        assert!(
            invariant::install(InvariantChecker::new(cfg.seed)).is_none(),
            "an invariant checker was already installed"
        );
    }
    let trace_to = trace_path();
    let metrics_to = metrics_path();
    if trace_to.is_none() && metrics_to.is_none() {
        let out = body();
        if finish_chaos(chaos) {
            std::process::exit(1);
        }
        return out;
    }
    let prev = trace::install(TraceRecorder::new(DEFAULT_CAPACITY));
    let out = body();
    // Settle chaos while the recorder is still installed, so a
    // violation discovered by `finish()` can dump the trace ring.
    let violated = finish_chaos(chaos);
    let recorder = trace::uninstall().expect("recorder installed above");
    if let Some(prev) = prev {
        trace::install(prev);
    }
    if let Some(path) = trace_to {
        if recorder.dropped() > 0 {
            eprintln!(
                "trace ring wrapped: {} oldest records dropped",
                recorder.dropped()
            );
        }
        write_or_warn(&path, "chrome trace", &recorder.export_chrome_json());
    }
    if let Some(path) = metrics_to {
        let is_csv = path.extension().is_some_and(|e| e == "csv");
        let contents = if is_csv {
            recorder.metrics().to_csv()
        } else {
            recorder.metrics().to_json()
        };
        write_or_warn(&path, "metrics", &contents);
    }
    if violated {
        std::process::exit(1);
    }
    out
}

/// Uninstalls the chaos invariant checker (when one was installed),
/// runs its end-of-run predicates, and reports. Returns `true` when
/// any invariant was violated.
fn finish_chaos(chaos: Option<ChaosConfig>) -> bool {
    let Some(cfg) = chaos else {
        return false;
    };
    let checker = invariant::uninstall().expect("checker installed by run()");
    report_chaos(
        cfg,
        checker.outstanding_faults() as u64,
        checker.violations().len() as u64,
        checker.checks(),
    )
}

/// Prints the end-of-run chaos verdict. Returns `true` when any
/// invariant was violated.
///
/// Experiments stop at a wall-clock horizon, not at quiescence, so
/// in-flight NPFs at the cut are expected — report them as context,
/// not as `finish()`'s liveness violation (the sweep tests, which do
/// hunt a quiescent cut, assert that predicate instead).
fn report_chaos(cfg: ChaosConfig, outstanding: u64, violations: u64, checks: u64) -> bool {
    if outstanding > 0 {
        eprintln!(
            "chaos seed {}: {outstanding} NPFs still in flight at the horizon",
            cfg.seed
        );
    }
    if violations > 0 {
        eprintln!(
            "chaos seed {}: {violations} invariant violation(s) — replay with --chaos-seed {}",
            cfg.seed, cfg.seed
        );
        return true;
    }
    eprintln!(
        "chaos seed {}: no invariant violations ({checks} checks)",
        cfg.seed
    );
    false
}

/// Runs a binary's experiment points through [`crate::par_runner`] with
/// everything argv asks for — `--jobs` workers, per-task chaos
/// checkers, per-task trace recorders — then hands the reports (in
/// task order) to `emit` for printing and settles trace export and the
/// chaos verdict exactly like [`run`]: stdout first, chaos verdict on
/// stderr, trace/metrics files, then a nonzero exit on violation.
///
/// The merge is deterministic in task order, so a binary's stdout,
/// trace file, and metrics file are byte-identical at every `--jobs`
/// value.
pub fn run_tasks(tasks: Vec<crate::par_runner::Task>, emit: impl FnOnce(Vec<crate::Report>)) {
    let chaos = chaos_config();
    let trace_to = trace_path();
    let metrics_to = metrics_path();
    let record = trace_to.is_some() || metrics_to.is_some();
    let outcome = crate::par_runner::run(tasks, jobs(), chaos, record, DEFAULT_CAPACITY);
    emit(outcome.reports);
    let violated = chaos.is_some_and(|cfg| {
        report_chaos(
            cfg,
            outcome.outstanding_faults,
            outcome.violations,
            outcome.checks,
        )
    });
    if let Some(recorder) = outcome.recorder {
        if let Some(path) = trace_to {
            if recorder.dropped() > 0 {
                eprintln!(
                    "trace ring wrapped: {} oldest records dropped",
                    recorder.dropped()
                );
            }
            write_or_warn(&path, "chrome trace", &recorder.export_chrome_json());
        }
        if let Some(path) = metrics_to {
            let is_csv = path.extension().is_some_and(|e| e == "csv");
            let contents = if is_csv {
                recorder.metrics().to_csv()
            } else {
                recorder.metrics().to_json()
            };
            write_or_warn(&path, "metrics", &contents);
        }
    }
    if violated {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_space_and_equals_forms() {
        assert_eq!(
            flag_value(argv(&["--trace", "/tmp/t.json"]), "trace"),
            Some(PathBuf::from("/tmp/t.json"))
        );
        assert_eq!(
            flag_value(argv(&["--trace=/tmp/t.json"]), "trace"),
            Some(PathBuf::from("/tmp/t.json"))
        );
        assert_eq!(flag_value(argv(&["--other", "x"]), "trace"), None);
        assert_eq!(flag_value(argv(&["--trace"]), "trace"), None);
    }

    #[test]
    fn parses_chaos_flags() {
        assert_eq!(chaos_from_args(argv(&["--foo", "1"])), None);
        let cfg = chaos_from_args(argv(&["--chaos-seed", "42"])).expect("enabled");
        assert_eq!(cfg.seed, 42);
        assert!(cfg.enabled());
        let cfg =
            chaos_from_args(argv(&["--chaos-seed=7", "--chaos-profile=network"])).expect("enabled");
        assert_eq!(cfg.seed, 7);
        assert!(cfg.net.active());
        assert!(!cfg.interrupt.active());
        let cfg = chaos_from_args(argv(&["--chaos-profile", "irq"])).expect("enabled");
        assert!(cfg.interrupt.active());
        assert_eq!(cfg.seed, 0);
    }

    #[test]
    #[should_panic(expected = "unknown --chaos-profile")]
    fn rejects_unknown_profile() {
        let _ = chaos_from_args(argv(&["--chaos-profile", "gremlins"]));
    }

    #[test]
    fn run_without_flags_leaves_tracing_disabled() {
        let r = run(|| {
            assert!(!trace::enabled());
            7
        });
        assert_eq!(r, 7);
    }
}
