//! Command-line handling for the bench binaries.
//!
//! Every `bin/` target starts `main` with [`RunOpts::init`] — one
//! strict parse of argv shared by all binaries, so an unknown or
//! malformed flag fails uniformly (status 2) everywhere — then wraps
//! its body in [`run`] or [`run_tasks`]. The shared flags:
//!
//! * `--trace <path>` (or `--trace=<path>`): install a
//!   [`TraceRecorder`] for the duration of the run and write the
//!   Chrome trace-event JSON (Perfetto-loadable) to `path` on exit.
//! * `--metrics <path>` (or `--metrics=<path>`): write the flat
//!   metrics registry on exit — CSV if `path` ends in `.csv`, JSON
//!   otherwise.
//! * `--journal <path>` (or `--journal=<path>`): install a
//!   [`simcore::journal`] fault-lifecycle recorder for the run and
//!   write it on exit — the tail-attribution text report if `path`
//!   ends in `.txt`, Chrome trace-event flow JSON otherwise.
//! * `--chaos-seed <n>` / `--chaos-profile <name>`: build a
//!   [`ChaosConfig`] for fault injection ([`chaos_config`]). Profiles:
//!   `network`, `interrupts`, `npf`, `memory`, `iommu`, `all`
//!   (default `all`). Binaries that support chaos pass the config into
//!   their testbeds; a failing run prints the seed for replay.
//! * `--jobs <n>` (or `--jobs=<n>`): run the binary's experiment
//!   points across `n` worker threads via [`crate::par_runner`]
//!   ([`run_tasks`]). `0` means "all available cores". Output is
//!   byte-identical at every job count.
//! * `--shards <n>` (or `--shards=<n>`): shard *within* an experiment
//!   point — independent coupling groups (testbeds, scalebench cells)
//!   run on `n` workers via [`simcore::shard::run_isolated`] with
//!   deterministic instrumentation absorption. `0` means "all
//!   available cores"; default 1 reproduces the serial path exactly.
//!   Output is byte-identical at every shard count.
//! * `--tenants <n>` / `--arbiter <policy>` / `--quota <entries>`:
//!   multi-tenant scale knobs — tenant count, cross-channel fault
//!   arbitration policy (`channel`, `rr`, `wfq`), and per-tenant
//!   backup-ring quota — consumed by the binaries that sweep tenants
//!   (`scalebench`), accepted uniformly by all.
//! * `--backend <kind>`: which ODP backend services faults —
//!   `firmware` (the paper's NPF path, default), `softemu` (NP-RDMA-
//!   style driver-level emulation), or `pinned` — consumed by the
//!   binaries that compare backends (`backendbench`), accepted
//!   uniformly by all.
//! * `--hugepages <on|off>` / `--prefetch <depth>` / `--tier <mib>`:
//!   the translation/backing-memory knobs — 2 MiB huge-page folding in
//!   the IOMMU tables and IOTLB, speculative stride-stream NPF
//!   prefetch (`depth` pages per issue, 0 disables), and an NVM
//!   backing tier of `mib` MiB in front of the swap disk (0 disables).
//!   All default off so every existing figure is byte-identical; the
//!   experiment drivers splice them into [`npf_config`] and
//!   [`tier_config`] uniformly.
//! * `--transport <gbn|irn>` / `--loss <p>` / `--pfc <on|off>` /
//!   `--ecn <on|off>`: the lossy-fabric knobs — RC loss-recovery
//!   discipline (go-back-N or IRN-style selective repeat), random
//!   per-packet loss probability, 802.1Qbb priority flow control on
//!   the switch, and ECN marking. All default to the legacy lossless
//!   go-back-N fabric so every existing figure is byte-identical; the
//!   experiment drivers splice them in via [`fabric_profile`] and
//!   [`transport_config`].
//!
//! Traces are stamped exclusively with [`simcore::time::SimTime`], so
//! the same seed produces byte-identical files.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use memsim::manager::TierConfig;
use memsim::swap::DiskConfig;
use netsim::profile::{FabricProfile, RdmaTransport, TransportConfig};
use npf_core::npf::NpfConfig;
use npf_core::{ArbiterPolicy, BackendKind};
use simcore::chaos::{invariant, ChaosConfig, ChaosProfile, InvariantChecker};
use simcore::journal::{self, JournalRecorder};
use simcore::trace::{self, TraceRecorder};
use simcore::units::ByteSize;

/// Default ring capacity for binary-driven traces: large enough to
/// hold full experiment runs without wrapping.
const DEFAULT_CAPACITY: usize = 1 << 20;

/// Extracts the value of `--<flag> <path>` or `--<flag>=<path>` from
/// an argv-style iterator.
fn flag_value<I: IntoIterator<Item = String>>(args: I, flag: &str) -> Option<PathBuf> {
    let long = format!("--{flag}");
    let eq = format!("--{flag}=");
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == long {
            let value = args.next();
            if value.is_none() {
                eprintln!("warning: {long} requires a path argument; ignoring");
            }
            return value.map(PathBuf::from);
        }
        if let Some(rest) = a.strip_prefix(&eq) {
            return Some(PathBuf::from(rest));
        }
    }
    None
}

/// The flags every bench binary accepts. A binary registers any extra
/// value-taking flags of its own via [`RunOpts::init`]; anything else
/// on the command line is rejected with a uniform error.
const STANDARD_FLAGS: &[&str] = &[
    "trace",
    "metrics",
    "journal",
    "chaos-seed",
    "chaos-profile",
    "jobs",
    "shards",
    "tenants",
    "arbiter",
    "quota",
    "backend",
    "hugepages",
    "prefetch",
    "tier",
    "transport",
    "loss",
    "pfc",
    "ecn",
];

/// The one parsed view of a bench binary's command line.
///
/// Every `bin/` target calls [`RunOpts::init`] first thing in `main`,
/// naming whatever extra value-taking flags it understands (for most
/// binaries: none). Parsing is strict — an unknown `--flag`, a missing
/// value, a duplicate, or a stray positional argument prints one
/// uniform error line and exits with status 2 — so every binary
/// rejects typos the same way instead of silently ignoring them.
///
/// The module's free functions ([`trace_path`], [`chaos_config`],
/// [`jobs`], …) consult the initialized `RunOpts` when one exists and
/// fall back to a lenient argv scan otherwise (the in-process test
/// path, where libtest owns argv).
#[derive(Debug, Clone, Default)]
pub struct RunOpts {
    /// `--trace <path>`: write a Chrome trace-event JSON on exit.
    pub trace: Option<PathBuf>,
    /// `--metrics <path>`: write the metrics registry on exit.
    pub metrics: Option<PathBuf>,
    /// `--journal <path>`: write the fault-lifecycle journal on exit.
    pub journal: Option<PathBuf>,
    /// `--chaos-seed` / `--chaos-profile`: fault injection, if asked.
    pub chaos: Option<ChaosConfig>,
    /// `--jobs <n>` worker threads; absent → 1, `0` → all cores.
    pub jobs: usize,
    /// `--shards <n>` intra-run shard workers; absent → 1, `0` → all
    /// cores.
    pub shards: usize,
    /// `--tenants <n>`: tenant/IOchannel count for scale sweeps.
    pub tenants: Option<u32>,
    /// `--arbiter <policy>`: cross-channel fault arbitration policy
    /// (`channel`, `rr`, `wfq`).
    pub arbiter: Option<ArbiterPolicy>,
    /// `--quota <entries>`: per-tenant backup-ring quota.
    pub quota: Option<u64>,
    /// `--backend <kind>`: the ODP backend (`firmware`, `softemu`,
    /// `pinned`).
    pub backend: Option<BackendKind>,
    /// `--hugepages <on|off>`: 2 MiB huge-page folding in the IOMMU
    /// page tables and IOTLB.
    pub huge_pages: bool,
    /// `--prefetch <depth>`: speculative stride-stream NPF prefetch
    /// depth in pages (0 disables).
    pub prefetch: u32,
    /// `--tier <mib>`: NVM backing-tier capacity in MiB (absent or 0
    /// disables tiering).
    pub tier_mib: Option<u64>,
    /// `--transport <gbn|irn>`: the RC loss-recovery discipline.
    pub transport: RdmaTransport,
    /// `--loss <p>`: random per-packet loss probability in `[0, 1)`.
    pub loss: f64,
    /// `--pfc <on|off>`: 802.1Qbb priority flow control at the switch.
    pub pfc: bool,
    /// `--ecn <on|off>`: ECN marking when the queueing delay crosses
    /// the profile's threshold.
    pub ecn: bool,
    /// Values of the binary-specific flags registered with `init`.
    extras: BTreeMap<String, String>,
}

static OPTS: OnceLock<RunOpts> = OnceLock::new();

/// The `--help` text shared by every bench binary: the standard flags
/// plus whatever extras the binary registered with [`RunOpts::init`].
fn usage(bin: &str, extra: &[&str]) -> String {
    let mut out = format!("usage: {bin} [--flag value ...]\n\nstandard flags:\n");
    out.push_str(
        "  --trace <path>         write a Chrome trace-event JSON on exit\n\
         \x20 --metrics <path>       write the metrics registry (CSV for .csv paths)\n\
         \x20 --journal <path>       write the fault-lifecycle journal (.txt for text)\n\
         \x20 --chaos-seed <n>       enable fault injection with seed n\n\
         \x20 --chaos-profile <p>    chaos profile: network, interrupts, npf, memory,\n\
         \x20                        iommu, all (default all)\n\
         \x20 --jobs <n>             run experiment points on n workers (0 = all\n\
         \x20                        cores); output is byte-identical at any n\n\
         \x20 --shards <n>           shard within each experiment point: independent\n\
         \x20                        testbeds run on n workers with deterministic\n\
         \x20                        epoch/instrumentation merging (0 = all cores);\n\
         \x20                        output is byte-identical at any n\n\
         \x20 --tenants <n>          tenant/IO-channel count for scale sweeps\n\
         \x20 --arbiter <policy>     cross-channel fault arbitration: channel, rr, wfq\n\
         \x20 --quota <entries>      per-tenant backup-ring quota\n\
         \x20 --backend <kind>       ODP backend: firmware, softemu, pinned\n\
         \x20 --hugepages <on|off>   fold 2 MiB huge pages in the IOMMU tables + IOTLB\n\
         \x20 --prefetch <depth>     speculative NPF prefetch depth in pages (0 = off)\n\
         \x20 --tier <mib>           NVM backing tier of <mib> MiB before swap (0 = off)\n\
         \x20 --transport <t>        RC loss recovery: gbn (go-back-N, default), irn\n\
         \x20                        (selective repeat with a BDP cap)\n\
         \x20 --loss <p>             random per-packet loss probability (default 0)\n\
         \x20 --pfc <on|off>         802.1Qbb priority flow control at the switch\n\
         \x20 --ecn <on|off>         ECN marking above the queueing-delay threshold\n",
    );
    if !extra.is_empty() {
        out.push_str("\nbinary-specific flags:\n");
        for name in extra {
            out.push_str(&format!("  --{name} <value>\n"));
        }
    }
    out
}

impl RunOpts {
    /// Parses the process command line, accepting [`STANDARD_FLAGS`]
    /// plus the binary's own `extra` value-taking flags. Call once at
    /// the top of `main`; later calls (and the module's free
    /// functions) reuse the first result. Exits with status 2 on any
    /// malformed or unknown argument.
    pub fn init(extra: &[&str]) -> &'static RunOpts {
        OPTS.get_or_init(|| {
            let args: Vec<String> = std::env::args().skip(1).collect();
            if args.iter().any(|a| a == "--help" || a == "-h") {
                let bin = std::env::args()
                    .next()
                    .unwrap_or_else(|| "bench".to_owned());
                print!("{}", usage(&bin, extra));
                std::process::exit(0);
            }
            match Self::parse(&args, extra) {
                Ok(opts) => opts,
                Err(e) => {
                    let bin = std::env::args()
                        .next()
                        .unwrap_or_else(|| "bench".to_owned());
                    eprintln!("{bin}: error: {e}");
                    std::process::exit(2);
                }
            }
        })
    }

    /// The options parsed by [`RunOpts::init`], when a binary has run
    /// it; `None` in library/test contexts where argv belongs to the
    /// test harness.
    #[must_use]
    pub fn get() -> Option<&'static RunOpts> {
        OPTS.get()
    }

    /// Strict parse of an argv slice. Every flag takes a value, in
    /// either `--flag value` or `--flag=value` form.
    ///
    /// # Errors
    ///
    /// Returns a one-line description for an unknown flag, a missing
    /// value, a duplicated flag, a positional argument, or a value
    /// that fails typed conversion.
    pub fn parse(args: &[String], extra: &[&str]) -> Result<Self, String> {
        let mut values: BTreeMap<String, String> = BTreeMap::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let Some(body) = arg.strip_prefix("--") else {
                return Err(format!(
                    "unexpected argument {arg:?} (flags are --name value)"
                ));
            };
            let (name, inline) = match body.split_once('=') {
                Some((n, v)) => (n, Some(v.to_owned())),
                None => (body, None),
            };
            if !STANDARD_FLAGS.contains(&name) && !extra.contains(&name) {
                return Err(format!("unknown flag --{name}"));
            }
            let value = match inline {
                Some(v) => v,
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("--{name} requires a value"))?,
            };
            if values.insert(name.to_owned(), value).is_some() {
                return Err(format!("--{name} given more than once"));
            }
        }
        Self::from_values(values, extra)
    }

    fn from_values(mut values: BTreeMap<String, String>, extra: &[&str]) -> Result<Self, String> {
        let seed = values
            .remove("chaos-seed")
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|e| format!("--chaos-seed must be an integer: {e}"))
            })
            .transpose()?;
        let profile = values
            .remove("chaos-profile")
            .map(|v| {
                ChaosProfile::from_name(&v)
                    .ok_or_else(|| format!("unknown --chaos-profile {v:?} (try \"all\")"))
            })
            .transpose()?;
        let chaos = if seed.is_none() && profile.is_none() {
            None
        } else {
            Some(ChaosConfig::profile(
                profile.unwrap_or(ChaosProfile::All),
                seed.unwrap_or(0),
            ))
        };
        let jobs = match values.remove("jobs") {
            None => 1,
            Some(v) => {
                let n = v
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs must be an integer: {e}"))?;
                if n == 0 {
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
                } else {
                    n
                }
            }
        };
        let shards = match values.remove("shards") {
            None => 1,
            Some(v) => {
                let n = v
                    .parse::<usize>()
                    .map_err(|e| format!("--shards must be an integer: {e}"))?;
                if n == 0 {
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
                } else {
                    n
                }
            }
        };
        let tenants = values
            .remove("tenants")
            .map(|v| {
                v.parse::<u32>()
                    .map_err(|e| format!("--tenants must be an integer: {e}"))
            })
            .transpose()?;
        let arbiter = values
            .remove("arbiter")
            .map(|v| ArbiterPolicy::parse(&v).map_err(|e| format!("--arbiter: {e}")))
            .transpose()?;
        let quota = values
            .remove("quota")
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|e| format!("--quota must be an integer: {e}"))
            })
            .transpose()?;
        let backend = values
            .remove("backend")
            .map(|v| BackendKind::parse(&v).map_err(|e| format!("--backend: {e}")))
            .transpose()?;
        let huge_pages = values
            .remove("hugepages")
            .map(|v| parse_switch(&v).ok_or_else(|| format!("--hugepages must be on|off: {v:?}")))
            .transpose()?
            .unwrap_or(false);
        let prefetch = values
            .remove("prefetch")
            .map(|v| {
                v.parse::<u32>()
                    .map_err(|e| format!("--prefetch must be an integer: {e}"))
            })
            .transpose()?
            .unwrap_or(0);
        let tier_mib = values
            .remove("tier")
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|e| format!("--tier must be an integer (MiB): {e}"))
            })
            .transpose()?
            .filter(|&mib| mib > 0);
        let transport = values
            .remove("transport")
            .map(|v| {
                RdmaTransport::from_name(&v)
                    .ok_or_else(|| format!("--transport must be gbn|irn: {v:?}"))
            })
            .transpose()?
            .unwrap_or_default();
        let loss = values
            .remove("loss")
            .map(|v| {
                let p = v
                    .parse::<f64>()
                    .map_err(|e| format!("--loss must be a probability: {e}"))?;
                if !p.is_finite() || !(0.0..1.0).contains(&p) {
                    return Err(format!("--loss must be in [0, 1): {v:?}"));
                }
                Ok(p)
            })
            .transpose()?
            .unwrap_or(0.0);
        let pfc = values
            .remove("pfc")
            .map(|v| parse_switch(&v).ok_or_else(|| format!("--pfc must be on|off: {v:?}")))
            .transpose()?
            .unwrap_or(false);
        let ecn = values
            .remove("ecn")
            .map(|v| parse_switch(&v).ok_or_else(|| format!("--ecn must be on|off: {v:?}")))
            .transpose()?
            .unwrap_or(false);
        if pfc && loss > 0.0 {
            return Err(format!(
                "--pfc models a lossless fabric; it cannot be combined with --loss {loss}"
            ));
        }
        let trace = values.remove("trace").map(PathBuf::from);
        let metrics = values.remove("metrics").map(PathBuf::from);
        let journal = values.remove("journal").map(PathBuf::from);
        // What's left can only be the binary's registered extras.
        debug_assert!(values.keys().all(|k| extra.contains(&k.as_str())));
        Ok(RunOpts {
            trace,
            metrics,
            journal,
            chaos,
            jobs,
            shards,
            tenants,
            arbiter,
            quota,
            backend,
            huge_pages,
            prefetch,
            tier_mib,
            transport,
            loss,
            pfc,
            ecn,
            extras: values,
        })
    }

    /// The value of a binary-specific flag registered with `init`.
    #[must_use]
    pub fn extra(&self, name: &str) -> Option<&str> {
        self.extras.get(name).map(String::as_str)
    }

    /// The requested chaos config, defaulting to disabled.
    #[must_use]
    pub fn chaos_or_disabled(&self) -> ChaosConfig {
        self.chaos.unwrap_or_else(ChaosConfig::disabled)
    }
}

/// `--trace <path>` from the process arguments, if present.
#[must_use]
pub fn trace_path() -> Option<PathBuf> {
    if let Some(opts) = RunOpts::get() {
        return opts.trace.clone();
    }
    flag_value(std::env::args().skip(1), "trace")
}

/// `--metrics <path>` from the process arguments, if present.
#[must_use]
pub fn metrics_path() -> Option<PathBuf> {
    if let Some(opts) = RunOpts::get() {
        return opts.metrics.clone();
    }
    flag_value(std::env::args().skip(1), "metrics")
}

/// `--journal <path>` from the process arguments, if present.
#[must_use]
pub fn journal_path() -> Option<PathBuf> {
    if let Some(opts) = RunOpts::get() {
        return opts.journal.clone();
    }
    flag_value(std::env::args().skip(1), "journal")
}

/// Builds a [`ChaosConfig`] from `--chaos-seed` / `--chaos-profile`
/// argv-style arguments. Returns `None` (chaos disabled) when neither
/// flag is present; `--chaos-profile` alone uses seed 0.
fn chaos_from_args<I: IntoIterator<Item = String>>(args: I) -> Option<ChaosConfig> {
    let args: Vec<String> = args.into_iter().collect();
    let seed = flag_value(args.iter().cloned(), "chaos-seed").map(|p| {
        p.to_string_lossy()
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("--chaos-seed must be an integer: {e}"))
    });
    let profile = flag_value(args, "chaos-profile").map(|p| {
        let name = p.to_string_lossy();
        ChaosProfile::from_name(&name)
            .unwrap_or_else(|| panic!("unknown --chaos-profile {name:?} (try \"all\")"))
    });
    if seed.is_none() && profile.is_none() {
        return None;
    }
    Some(ChaosConfig::profile(
        profile.unwrap_or(ChaosProfile::All),
        seed.unwrap_or(0),
    ))
}

/// The fault-injection config requested on the command line, if any.
/// On the first call with chaos enabled, prints the chosen seed so a
/// violation can be replayed (experiments build many testbeds; one
/// announcement is enough).
#[must_use]
pub fn chaos_config() -> Option<ChaosConfig> {
    static ANNOUNCE: std::sync::Once = std::sync::Once::new();
    let cfg = match RunOpts::get() {
        Some(opts) => opts.chaos?,
        None => chaos_from_args(std::env::args().skip(1))?,
    };
    ANNOUNCE.call_once(|| {
        eprintln!(
            "chaos enabled: seed {} (replay with --chaos-seed {})",
            cfg.seed, cfg.seed
        );
    });
    Some(cfg)
}

/// [`chaos_config`], defaulting to disabled: the form testbed config
/// literals splice in directly.
#[must_use]
pub fn chaos_or_disabled() -> ChaosConfig {
    chaos_config().unwrap_or_else(ChaosConfig::disabled)
}

/// Parses `--jobs <n>` from argv-style arguments. Absent → 1 (serial);
/// `0` → all available cores.
fn jobs_from_args<I: IntoIterator<Item = String>>(args: I) -> usize {
    let Some(raw) = flag_value(args, "jobs") else {
        return 1;
    };
    let n = raw
        .to_string_lossy()
        .parse::<usize>()
        .unwrap_or_else(|e| panic!("--jobs must be an integer: {e}"));
    if n == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        n
    }
}

/// The worker count requested with `--jobs`, defaulting to 1.
#[must_use]
pub fn jobs() -> usize {
    if let Some(opts) = RunOpts::get() {
        return opts.jobs;
    }
    jobs_from_args(std::env::args().skip(1))
}

/// Parses an on/off switch value (`on`, `true`, `1` / `off`, `false`,
/// `0`).
fn parse_switch(v: &str) -> Option<bool> {
    match v {
        "on" | "true" | "1" => Some(true),
        "off" | "false" | "0" => Some(false),
        _ => None,
    }
}

thread_local! {
    static SHARDS_OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
    /// `(huge_pages, prefetch_depth, tier_mib)` forced by
    /// [`with_mem_features`] on this thread.
    static MEM_FEATURES_OVERRIDE: std::cell::Cell<Option<(bool, u32, Option<u64>)>> =
        const { std::cell::Cell::new(None) };
}

/// Runs `body` with [`huge_pages`], [`prefetch_depth`], and
/// [`tier_mib`] forced on this thread — `enginebench` uses this to run
/// the same figure with and without the memory features inside one
/// process (the ablation cells).
pub fn with_mem_features<R>(
    huge: bool,
    prefetch: u32,
    tier_mib_override: Option<u64>,
    body: impl FnOnce() -> R,
) -> R {
    let prev = MEM_FEATURES_OVERRIDE.with(|c| c.replace(Some((huge, prefetch, tier_mib_override))));
    let out = body();
    MEM_FEATURES_OVERRIDE.with(|c| c.set(prev));
    out
}

/// `--hugepages on`: whether 2 MiB huge-page folding is enabled.
/// Defaults to off, so existing figures stay byte-identical.
#[must_use]
pub fn huge_pages() -> bool {
    if let Some((huge, _, _)) = MEM_FEATURES_OVERRIDE.with(std::cell::Cell::get) {
        return huge;
    }
    if let Some(opts) = RunOpts::get() {
        return opts.huge_pages;
    }
    flag_value(std::env::args().skip(1), "hugepages")
        .and_then(|v| parse_switch(&v.to_string_lossy()))
        .unwrap_or(false)
}

/// `--prefetch <depth>`: the speculative NPF prefetch depth in pages.
/// Defaults to 0 (disabled).
#[must_use]
pub fn prefetch_depth() -> u32 {
    if let Some((_, depth, _)) = MEM_FEATURES_OVERRIDE.with(std::cell::Cell::get) {
        return depth;
    }
    if let Some(opts) = RunOpts::get() {
        return opts.prefetch;
    }
    flag_value(std::env::args().skip(1), "prefetch")
        .and_then(|v| v.to_string_lossy().parse::<u32>().ok())
        .unwrap_or(0)
}

/// `--tier <mib>`: the NVM backing-tier capacity in MiB, if tiering is
/// enabled.
#[must_use]
pub fn tier_mib() -> Option<u64> {
    if let Some((_, _, tier)) = MEM_FEATURES_OVERRIDE.with(std::cell::Cell::get) {
        return tier.filter(|&mib| mib > 0);
    }
    if let Some(opts) = RunOpts::get() {
        return opts.tier_mib;
    }
    flag_value(std::env::args().skip(1), "tier")
        .and_then(|v| v.to_string_lossy().parse::<u64>().ok())
        .filter(|&mib| mib > 0)
}

/// The [`NpfConfig`] matching the command line's memory-feature flags:
/// defaults plus `--hugepages` and `--prefetch`. Experiment drivers
/// build on this (e.g. `.with_backend(...)`) so every binary honors
/// the flags uniformly.
#[must_use]
pub fn npf_config() -> NpfConfig {
    NpfConfig::default()
        .with_huge_pages(huge_pages())
        .with_prefetch_depth(prefetch_depth())
}

/// The [`TierConfig`] requested with `--tier <mib>`, if any: an
/// Optane-class NVM device of that capacity in front of the swap disk.
#[must_use]
pub fn tier_config() -> Option<TierConfig> {
    tier_mib().map(|mib| TierConfig {
        capacity: ByteSize::mib(mib),
        disk: DiskConfig::nvm(),
    })
}

/// The [`FabricProfile`] matching the command line's lossy-fabric
/// flags: lossless by default, `--loss <p>` for random loss, `--pfc on`
/// for 802.1Qbb flow control, `--ecn on` for marking at the default
/// queueing-delay threshold. The lenient fallback (test contexts) scans
/// argv the same way the strict parser does.
#[must_use]
pub fn fabric_profile() -> FabricProfile {
    let (loss, pfc, ecn) = match RunOpts::get() {
        Some(opts) => (opts.loss, opts.pfc, opts.ecn),
        None => {
            let loss = flag_value(std::env::args().skip(1), "loss")
                .and_then(|v| v.to_string_lossy().parse::<f64>().ok())
                .unwrap_or(0.0);
            let pfc = flag_value(std::env::args().skip(1), "pfc")
                .and_then(|v| parse_switch(&v.to_string_lossy()))
                .unwrap_or(false);
            let ecn = flag_value(std::env::args().skip(1), "ecn")
                .and_then(|v| parse_switch(&v.to_string_lossy()))
                .unwrap_or(false);
            (loss, pfc, ecn)
        }
    };
    let mut profile = FabricProfile::default().with_loss(loss).with_pfc(pfc);
    if ecn {
        profile = profile.with_ecn(Some(simcore::time::SimDuration::from_micros(20)));
    }
    profile
}

/// The [`TransportConfig`] matching `--transport <gbn|irn>`: the
/// default BDP cap with the requested discipline.
#[must_use]
pub fn transport_config() -> TransportConfig {
    let transport = match RunOpts::get() {
        Some(opts) => opts.transport,
        None => flag_value(std::env::args().skip(1), "transport")
            .and_then(|v| RdmaTransport::from_name(&v.to_string_lossy()))
            .unwrap_or_default(),
    };
    TransportConfig::default().with_transport(transport)
}

/// Runs `body` with [`shards`] forced to `n` on this thread —
/// `enginebench` uses this to time the same figure at several shard
/// counts inside one process.
pub fn with_shards<R>(n: usize, body: impl FnOnce() -> R) -> R {
    let prev = SHARDS_OVERRIDE.with(|c| c.replace(Some(n)));
    let out = body();
    SHARDS_OVERRIDE.with(|c| c.set(prev));
    out
}

/// The intra-run shard count requested with `--shards`, defaulting to 1
/// (serial; byte-identical to every other value). `0` → all cores.
#[must_use]
pub fn shards() -> usize {
    if let Some(n) = SHARDS_OVERRIDE.with(std::cell::Cell::get) {
        return n;
    }
    if let Some(opts) = RunOpts::get() {
        return opts.shards;
    }
    let Some(raw) = flag_value(std::env::args().skip(1), "shards") else {
        return 1;
    };
    let n = raw
        .to_string_lossy()
        .parse::<usize>()
        .unwrap_or_else(|e| panic!("--shards must be an integer: {e}"));
    if n == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        n
    }
}

/// Builds the [`simcore::shard::IsolationSpec`] matching whatever
/// instrumentation is installed on the **current** thread, so a shard
/// pool reproduces the caller's environment per LP: recording when the
/// caller records, checking under the caller's chaos seed, journaling
/// (with the caller's watchdog) when the caller journals. Shard workers
/// run each LP under fresh instruments built from this spec; the pool
/// absorbs them back into the caller's in LP order.
#[must_use]
pub fn isolation_spec() -> simcore::shard::IsolationSpec {
    simcore::shard::IsolationSpec {
        record: trace::enabled(),
        ring_capacity: DEFAULT_CAPACITY,
        chaos_seed: invariant::with(|c| c.seed()),
        journal: journal::enabled(),
        watchdog: journal::enabled()
            .then(|| {
                let mut w = None;
                journal::with(|j| w = j.watchdog());
                w
            })
            .flatten(),
    }
}

fn write_or_warn(path: &Path, what: &str, contents: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!("{what} written to {}", path.display()),
        Err(e) => eprintln!("failed to write {what} to {}: {e}", path.display()),
    }
}

/// Runs `body` with tracing installed when `--trace`/`--metrics` are
/// present in argv, exporting the requested files afterwards. Without
/// either flag this is a plain call to `body` (tracing stays disabled,
/// so instrumentation costs one branch per site).
///
/// When `--chaos-seed`/`--chaos-profile` are present, also installs a
/// global [`InvariantChecker`] around `body`: a violation prints the
/// failing seed (plus the trace ring, when recording) and the process
/// exits nonzero, so chaos-enabled experiment runs are CI-able.
pub fn run<R>(body: impl FnOnce() -> R) -> R {
    let chaos = chaos_config();
    if let Some(cfg) = chaos {
        assert!(
            invariant::install(InvariantChecker::new(cfg.seed)).is_none(),
            "an invariant checker was already installed"
        );
    }
    let trace_to = trace_path();
    let metrics_to = metrics_path();
    let journal_to = journal_path();
    if trace_to.is_none() && metrics_to.is_none() && journal_to.is_none() {
        let out = body();
        if finish_chaos(chaos) {
            std::process::exit(1);
        }
        return out;
    }
    let record = trace_to.is_some() || metrics_to.is_some();
    let prev = if record {
        trace::install(TraceRecorder::new(DEFAULT_CAPACITY))
    } else {
        None
    };
    if journal_to.is_some() {
        assert!(
            journal::install(JournalRecorder::new()).is_none(),
            "a fault journal was already installed"
        );
    }
    let out = body();
    // Settle chaos while the recorder is still installed, so a
    // violation discovered by `finish()` can dump the trace ring.
    let violated = finish_chaos(chaos);
    let journal_rec = journal_to
        .is_some()
        .then(|| journal::uninstall().expect("journal installed above"));
    if record {
        let recorder = trace::uninstall().expect("recorder installed above");
        if let Some(prev) = prev {
            trace::install(prev);
        }
        if let Some(path) = trace_to {
            if recorder.dropped() > 0 {
                eprintln!(
                    "trace ring wrapped: {} oldest records dropped",
                    recorder.dropped()
                );
            }
            write_or_warn(&path, "chrome trace", &recorder.export_chrome_json());
        }
        if let Some(path) = metrics_to {
            let is_csv = path.extension().is_some_and(|e| e == "csv");
            let contents = if is_csv {
                recorder.metrics().to_csv()
            } else {
                recorder.metrics().to_json()
            };
            write_or_warn(&path, "metrics", &contents);
        }
    }
    if let (Some(path), Some(j)) = (journal_to.as_deref(), journal_rec.as_ref()) {
        finish_journal(j, path, violated);
    }
    if violated {
        std::process::exit(1);
    }
    out
}

/// Settles a captured fault journal: prints any SLO-watchdog hits,
/// dumps the attribution report on a chaos violation (the journal is
/// the "why was this fault slow" companion to the trace-ring dump),
/// and writes the requested export — attribution text for `.txt`
/// paths, Chrome flow-event JSON otherwise.
fn finish_journal(j: &JournalRecorder, path: &Path, violated: bool) {
    if !j.slo_hits().is_empty() {
        eprint!("{}", j.slo_report());
    }
    if violated {
        eprint!("{}", j.attribution_report());
    }
    let contents = if path.extension().is_some_and(|e| e == "txt") {
        j.attribution_report()
    } else {
        j.export_chrome_json()
    };
    write_or_warn(path, "fault journal", &contents);
}

/// Uninstalls the chaos invariant checker (when one was installed),
/// runs its end-of-run predicates, and reports. Returns `true` when
/// any invariant was violated.
fn finish_chaos(chaos: Option<ChaosConfig>) -> bool {
    let Some(cfg) = chaos else {
        return false;
    };
    let checker = invariant::uninstall().expect("checker installed by run()");
    report_chaos(
        cfg,
        checker.outstanding_faults() as u64,
        checker.violations().len() as u64,
        checker.checks(),
    )
}

/// Prints the end-of-run chaos verdict. Returns `true` when any
/// invariant was violated.
///
/// Experiments stop at a wall-clock horizon, not at quiescence, so
/// in-flight NPFs at the cut are expected — report them as context,
/// not as `finish()`'s liveness violation (the sweep tests, which do
/// hunt a quiescent cut, assert that predicate instead).
fn report_chaos(cfg: ChaosConfig, outstanding: u64, violations: u64, checks: u64) -> bool {
    if outstanding > 0 {
        eprintln!(
            "chaos seed {}: {outstanding} NPFs still in flight at the horizon",
            cfg.seed
        );
    }
    if violations > 0 {
        eprintln!(
            "chaos seed {}: {violations} invariant violation(s) — replay with --chaos-seed {}",
            cfg.seed, cfg.seed
        );
        return true;
    }
    eprintln!(
        "chaos seed {}: no invariant violations ({checks} checks)",
        cfg.seed
    );
    false
}

/// Runs a binary's experiment points through [`crate::par_runner`] with
/// everything argv asks for — `--jobs` workers, per-task chaos
/// checkers, per-task trace recorders — then hands the reports (in
/// task order) to `emit` for printing and settles trace export and the
/// chaos verdict exactly like [`run`]: stdout first, chaos verdict on
/// stderr, trace/metrics files, then a nonzero exit on violation.
///
/// The merge is deterministic in task order, so a binary's stdout,
/// trace file, and metrics file are byte-identical at every `--jobs`
/// value.
pub fn run_tasks(tasks: Vec<crate::par_runner::Task>, emit: impl FnOnce(Vec<crate::Report>)) {
    let chaos = chaos_config();
    let trace_to = trace_path();
    let metrics_to = metrics_path();
    let journal_to = journal_path();
    let record = trace_to.is_some() || metrics_to.is_some();
    let journal_spec = journal_to
        .is_some()
        .then(crate::par_runner::JournalSpec::default);
    let outcome =
        crate::par_runner::run(tasks, jobs(), chaos, record, DEFAULT_CAPACITY, journal_spec);
    emit(outcome.reports);
    let violated = chaos.is_some_and(|cfg| {
        report_chaos(
            cfg,
            outcome.outstanding_faults,
            outcome.violations,
            outcome.checks,
        )
    });
    if let Some(recorder) = outcome.recorder {
        if let Some(path) = trace_to {
            if recorder.dropped() > 0 {
                eprintln!(
                    "trace ring wrapped: {} oldest records dropped",
                    recorder.dropped()
                );
            }
            write_or_warn(&path, "chrome trace", &recorder.export_chrome_json());
        }
        if let Some(path) = metrics_to {
            let is_csv = path.extension().is_some_and(|e| e == "csv");
            let contents = if is_csv {
                recorder.metrics().to_csv()
            } else {
                recorder.metrics().to_json()
            };
            write_or_warn(&path, "metrics", &contents);
        }
    }
    if let (Some(path), Some(j)) = (journal_to.as_deref(), outcome.journal.as_ref()) {
        finish_journal(j, path, violated);
    }
    if violated {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_space_and_equals_forms() {
        assert_eq!(
            flag_value(argv(&["--trace", "/tmp/t.json"]), "trace"),
            Some(PathBuf::from("/tmp/t.json"))
        );
        assert_eq!(
            flag_value(argv(&["--trace=/tmp/t.json"]), "trace"),
            Some(PathBuf::from("/tmp/t.json"))
        );
        assert_eq!(flag_value(argv(&["--other", "x"]), "trace"), None);
        assert_eq!(flag_value(argv(&["--trace"]), "trace"), None);
    }

    #[test]
    fn parses_chaos_flags() {
        assert_eq!(chaos_from_args(argv(&["--foo", "1"])), None);
        let cfg = chaos_from_args(argv(&["--chaos-seed", "42"])).expect("enabled");
        assert_eq!(cfg.seed, 42);
        assert!(cfg.enabled());
        let cfg =
            chaos_from_args(argv(&["--chaos-seed=7", "--chaos-profile=network"])).expect("enabled");
        assert_eq!(cfg.seed, 7);
        assert!(cfg.net.active());
        assert!(!cfg.interrupt.active());
        let cfg = chaos_from_args(argv(&["--chaos-profile", "irq"])).expect("enabled");
        assert!(cfg.interrupt.active());
        assert_eq!(cfg.seed, 0);
    }

    #[test]
    #[should_panic(expected = "unknown --chaos-profile")]
    fn rejects_unknown_profile() {
        let _ = chaos_from_args(argv(&["--chaos-profile", "gremlins"]));
    }

    #[test]
    fn runopts_parses_standard_flags() {
        let opts = RunOpts::parse(
            &argv(&[
                "--trace=/tmp/t.json",
                "--metrics",
                "/tmp/m.csv",
                "--jobs=4",
                "--shards=2",
                "--tenants",
                "256",
                "--arbiter=wfq",
                "--quota=64",
                "--backend=softemu",
                "--chaos-seed",
                "9",
                "--hugepages=on",
                "--prefetch=16",
                "--tier",
                "2048",
            ]),
            &[],
        )
        .expect("all standard flags");
        assert_eq!(opts.trace, Some(PathBuf::from("/tmp/t.json")));
        assert_eq!(opts.metrics, Some(PathBuf::from("/tmp/m.csv")));
        assert_eq!(opts.jobs, 4);
        assert_eq!(opts.shards, 2);
        assert_eq!(opts.tenants, Some(256));
        assert_eq!(opts.arbiter, Some(ArbiterPolicy::WeightedFair));
        assert_eq!(opts.quota, Some(64));
        assert_eq!(opts.backend, Some(BackendKind::SoftEmu));
        assert_eq!(opts.chaos.expect("chaos on").seed, 9);
        assert!(opts.huge_pages);
        assert_eq!(opts.prefetch, 16);
        assert_eq!(opts.tier_mib, Some(2048));
    }

    #[test]
    fn mem_feature_flags_default_off_and_reject_junk() {
        let opts = RunOpts::parse(&[], &[]).expect("empty argv");
        assert!(!opts.huge_pages);
        assert_eq!(opts.prefetch, 0);
        assert_eq!(opts.tier_mib, None);
        // `--tier 0` means "no tier", same as absent.
        let opts = RunOpts::parse(&argv(&["--tier", "0"]), &[]).expect("tier 0");
        assert_eq!(opts.tier_mib, None);
        let bad = RunOpts::parse(&argv(&["--hugepages", "maybe"]), &[]).unwrap_err();
        assert!(bad.contains("--hugepages"), "{bad}");
        let bad = RunOpts::parse(&argv(&["--prefetch", "lots"]), &[]).unwrap_err();
        assert!(bad.contains("--prefetch must be an integer"), "{bad}");
    }

    #[test]
    fn mem_feature_overrides_scope_to_the_closure() {
        assert!(!huge_pages());
        assert_eq!(prefetch_depth(), 0);
        assert_eq!(tier_mib(), None);
        with_mem_features(true, 32, Some(1024), || {
            assert!(huge_pages());
            assert_eq!(prefetch_depth(), 32);
            assert_eq!(tier_mib(), Some(1024));
            let npf = npf_config();
            assert!(npf.huge_pages);
            assert_eq!(npf.prefetch_depth, 32);
            let tier = tier_config().expect("tier on");
            assert_eq!(tier.capacity, ByteSize::mib(1024));
        });
        assert!(!huge_pages());
        assert!(tier_config().is_none());
    }

    #[test]
    fn transport_flags_parse_and_validate() {
        let opts = RunOpts::parse(
            &argv(&["--transport", "irn", "--loss=0.01", "--ecn=on"]),
            &[],
        )
        .expect("lossy transport flags");
        assert_eq!(opts.transport, RdmaTransport::SelectiveRepeat);
        assert!((opts.loss - 0.01).abs() < 1e-12);
        assert!(opts.ecn);
        assert!(!opts.pfc);

        let opts = RunOpts::parse(&argv(&["--pfc", "on"]), &[]).expect("pfc alone");
        assert!(opts.pfc);
        assert_eq!(opts.transport, RdmaTransport::GoBackN);

        let bad = RunOpts::parse(&argv(&["--transport", "tcp"]), &[]).unwrap_err();
        assert!(bad.contains("--transport must be gbn|irn"), "{bad}");
        let bad = RunOpts::parse(&argv(&["--loss", "1.5"]), &[]).unwrap_err();
        assert!(bad.contains("--loss must be in [0, 1)"), "{bad}");
        let bad = RunOpts::parse(&argv(&["--pfc=on", "--loss=0.01"]), &[]).unwrap_err();
        assert!(bad.contains("cannot be combined"), "{bad}");
    }

    #[test]
    fn transport_defaults_reproduce_the_legacy_fabric() {
        let opts = RunOpts::parse(&[], &[]).expect("empty argv");
        assert_eq!(opts.transport, RdmaTransport::GoBackN);
        assert_eq!(opts.loss, 0.0);
        assert!(!opts.pfc);
        assert!(!opts.ecn);
        // The accessor view: a transparent profile and a GBN transport.
        assert!(fabric_profile().is_lossless_default());
        assert_eq!(transport_config().transport, RdmaTransport::GoBackN);
    }

    #[test]
    fn runopts_defaults_when_argv_is_empty() {
        let opts = RunOpts::parse(&[], &[]).expect("empty argv is fine");
        assert_eq!(opts.trace, None);
        assert_eq!(opts.metrics, None);
        assert!(opts.chaos.is_none());
        assert!(!opts.chaos_or_disabled().enabled());
        assert_eq!(opts.jobs, 1);
        assert_eq!(opts.shards, 1);
        assert_eq!(opts.tenants, None);
        assert_eq!(opts.arbiter, None);
        assert_eq!(opts.quota, None);
        assert_eq!(opts.backend, None);
        assert_eq!(opts.extra("out"), None);
    }

    #[test]
    fn runopts_rejects_malformed_command_lines() {
        let unknown = RunOpts::parse(&argv(&["--frobnicate", "1"]), &[]).unwrap_err();
        assert!(unknown.contains("unknown flag --frobnicate"), "{unknown}");
        let positional = RunOpts::parse(&argv(&["stray"]), &[]).unwrap_err();
        assert!(positional.contains("unexpected argument"), "{positional}");
        let missing = RunOpts::parse(&argv(&["--jobs"]), &[]).unwrap_err();
        assert!(missing.contains("--jobs requires a value"), "{missing}");
        let twice = RunOpts::parse(&argv(&["--jobs", "1", "--jobs=2"]), &[]).unwrap_err();
        assert!(twice.contains("more than once"), "{twice}");
        let bad_policy = RunOpts::parse(&argv(&["--arbiter", "lottery"]), &[]).unwrap_err();
        assert!(bad_policy.contains("--arbiter"), "{bad_policy}");
        let bad_backend = RunOpts::parse(&argv(&["--backend", "quantum"]), &[]).unwrap_err();
        assert!(bad_backend.contains("--backend"), "{bad_backend}");
        let bad_int = RunOpts::parse(&argv(&["--tenants", "many"]), &[]).unwrap_err();
        assert!(
            bad_int.contains("--tenants must be an integer"),
            "{bad_int}"
        );
    }

    #[test]
    fn runopts_accepts_registered_extras_only() {
        let opts = RunOpts::parse(
            &argv(&["--out", "B.json", "--check=old.json"]),
            &["out", "check"],
        )
        .expect("registered extras");
        assert_eq!(opts.extra("out"), Some("B.json"));
        assert_eq!(opts.extra("check"), Some("old.json"));
        assert_eq!(opts.extra("other"), None);
        let err = RunOpts::parse(&argv(&["--out", "B.json"]), &[]).unwrap_err();
        assert!(err.contains("unknown flag --out"), "{err}");
    }

    #[test]
    fn run_without_flags_leaves_tracing_disabled() {
        let r = run(|| {
            assert!(!trace::enabled());
            7
        });
        assert_eq!(r, 7);
    }
}
