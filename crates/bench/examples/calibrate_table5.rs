//! Calibration helper: prints per-instance-count throughput so the
//! Table 5 constants (`cpu_per_op`, interrupt holdoff) can be re-tuned
//! if the cost model changes.
//!
//! Run with: `cargo run --release -p npf-bench --example calibrate_table5`

fn main() {
    use simcore::{ByteSize, SimTime};
    use testbed::eth::{EthConfig, EthTestbed, RxMode};
    use workloads::memcached::MemcachedConfig;
    for n in [1u32, 2, 3, 4] {
        let cfg = EthConfig::default()
            .with_mode(RxMode::Backup)
            .with_instances(n)
            .with_memcached(MemcachedConfig {
                max_bytes: ByteSize::gib(3),
                ..MemcachedConfig::default()
            })
            .with_working_set_keys(1_800_000);
        let mut bed = EthTestbed::new(cfg).unwrap();
        bed.run_until(SimTime::from_secs(1));
        let before = bed.total_ops();
        bed.run_until(SimTime::from_secs(3));
        println!(
            "{n} instances: {} KTPS",
            (bed.total_ops() - before) / 2 / 1000
        );
    }
}
