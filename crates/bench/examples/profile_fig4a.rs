//! Profiling driver: one reduced fig4a run (the enginebench wall-clock
//! workload) so a sampling profiler sees only the experiment.

fn main() {
    let r = npf_bench::eth_experiments::fig4a(4);
    std::hint::black_box(r.row_count());
}
