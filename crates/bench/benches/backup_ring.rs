//! Micro-benchmark: Figure 6 backup-ring operations.
use criterion::{criterion_group, criterion_main, Criterion};
use memsim::types::VirtAddr;
use nicsim::rx::{RingId, RxDescriptor, RxEngine, RxFaultMode};

fn bench(c: &mut Criterion) {
    c.bench_function("backup_ring_fault_merge_cycle", |b| {
        b.iter(|| {
            let mut rx: RxEngine<u32> = RxEngine::new(RxFaultMode::BackupRing { capacity: 256 });
            rx.create_ring(RingId(0), 64, 128);
            for i in 0..64u64 {
                rx.post_descriptor(
                    RingId(0),
                    RxDescriptor {
                        addr: VirtAddr(0x1000 * i),
                        capacity: 4096,
                    },
                );
            }
            for i in 0..32u32 {
                let v = rx.recv(RingId(0), i, 1500, i % 4 == 0);
                if let nicsim::rx::RxVerdict::Backup {
                    bit_index,
                    target_index,
                    ..
                } = v
                {
                    let e = rx.pop_backup().unwrap();
                    rx.place_resolved(RingId(0), target_index, e.payload, e.len);
                    rx.resolve_rnpfs(RingId(0), bit_index);
                }
            }
            while rx.consume(RingId(0)).is_some() {}
            std::hint::black_box(rx.counters().get("stored"))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
