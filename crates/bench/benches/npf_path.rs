//! Micro-benchmark: the full NPF resolution path (engine-level).
use criterion::{criterion_group, criterion_main, Criterion};
use memsim::manager::{MemConfig, MemoryManager};
use memsim::space::Backing;
use memsim::types::Vpn;
use npf_core::npf::{NpfConfig, NpfEngine};
use simcore::rng::SimRng;
use simcore::units::ByteSize;
use simcore::SimTime;

fn bench(c: &mut Criterion) {
    c.bench_function("npf_begin_complete_4kb", |b| {
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::gib(4),
            ..MemConfig::default()
        });
        let mut engine = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(1));
        let space = engine.memory_mut().create_space();
        let region = engine
            .memory_mut()
            .mmap(space, ByteSize::gib(2), Backing::Anonymous)
            .unwrap();
        let domain = engine.create_channel(space);
        let mut i = 0u64;
        b.iter(|| {
            let addr = Vpn(region.start.0 + i % 500_000).base();
            i += 1;
            if engine.dma_ready(domain, addr, 4096, true) {
                return;
            }
            let id = engine
                .begin_fault(SimTime::ZERO, domain, addr, 4096, true, None)
                .unwrap()
                .id;
            std::hint::black_box(engine.complete_fault(id));
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
