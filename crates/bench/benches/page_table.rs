//! Micro-benchmark: I/O page-table walks (ODP mode).
use criterion::{criterion_group, criterion_main, Criterion};
use iommu::pagetable::{IoPageTable, TableMode};
use iommu::DomainId;
use memsim::types::{FrameId, Vpn};

fn bench(c: &mut Criterion) {
    c.bench_function("io_pagetable_walk_present", |b| {
        let mut t = IoPageTable::new(DomainId(0), TableMode::PageFaultCapable);
        for i in 0..4096 {
            t.map(Vpn(i), FrameId(i), true);
        }
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % 4096;
            std::hint::black_box(t.translate(Vpn(i), true))
        })
    });
    c.bench_function("io_pagetable_walk_fault", |b| {
        let mut t = IoPageTable::new(DomainId(0), TableMode::PageFaultCapable);
        let mut i = 0;
        b.iter(|| {
            i += 1;
            std::hint::black_box(t.translate(Vpn(i), true))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
