//! Micro-benchmark: RC QP send/recv pipeline (loopback).
use criterion::{criterion_group, criterion_main, Criterion};
use memsim::types::VirtAddr;
use netsim::packet::NodeId;
use rdmasim::rc::RcQp;
use rdmasim::types::{PinnedGate, QpId, QpOutput, RcConfig, RecvWqe, SendOp};
use simcore::SimTime;

fn bench(c: &mut Criterion) {
    c.bench_function("rc_send_recv_4kb_message", |b| {
        let mut a = RcQp::new(RcConfig::default(), QpId(1), QpId(2), NodeId(1));
        let mut bqp = RcQp::new(RcConfig::default(), QpId(2), QpId(1), NodeId(0));
        let mut wr = 0u64;
        b.iter(|| {
            wr += 1;
            bqp.post_recv(RecvWqe {
                wr_id: wr,
                addr: VirtAddr(0x10000),
                capacity: 4096,
            });
            let outs = a.post_send(
                SimTime::ZERO,
                wr,
                SendOp::Send {
                    local: VirtAddr(0x2000),
                    len: 4096,
                },
                &mut PinnedGate,
            );
            let mut to_b = Vec::new();
            for o in outs {
                if let QpOutput::Send { packet, .. } = o {
                    to_b.push(packet);
                }
            }
            let mut to_a = Vec::new();
            for p in to_b {
                for o in bqp.on_packet(SimTime::ZERO, p, &mut PinnedGate) {
                    if let QpOutput::Send { packet, .. } = o {
                        to_a.push(packet);
                    }
                }
            }
            for p in to_a {
                std::hint::black_box(a.on_packet(SimTime::ZERO, p, &mut PinnedGate));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
