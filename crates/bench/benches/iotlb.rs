//! Micro-benchmark: IOTLB lookup/insert/invalidate.
use criterion::{criterion_group, criterion_main, Criterion};
use iommu::iotlb::IoTlb;
use iommu::DomainId;
use memsim::types::{FrameId, Vpn};

fn bench(c: &mut Criterion) {
    c.bench_function("iotlb_lookup_hit", |b| {
        let mut tlb = IoTlb::new(1024);
        for i in 0..1024 {
            tlb.insert(DomainId(0), Vpn(i), FrameId(i));
        }
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % 1024;
            std::hint::black_box(tlb.lookup(DomainId(0), Vpn(i)))
        })
    });
    c.bench_function("iotlb_insert_evict", |b| {
        let mut tlb = IoTlb::new(256);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tlb.insert(DomainId(0), Vpn(i), FrameId(i));
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
