//! Micro-benchmark: TCP segment processing (established data path).
use criterion::{criterion_group, criterion_main, Criterion};
use simcore::SimTime;
use tcpsim::{TcpConfig, TcpConnection, TcpOutput};

fn bench(c: &mut Criterion) {
    c.bench_function("tcp_data_segment_roundtrip", |b| {
        // Establish once, then stream data segments through both ends.
        let mut client = TcpConnection::new(TcpConfig::linux(), 1, 2);
        let mut server = TcpConnection::new(TcpConfig::lwip(), 2, 1);
        server.listen();
        let mut wire: Vec<_> = client
            .connect(SimTime::ZERO)
            .into_iter()
            .filter_map(|o| match o {
                TcpOutput::Send(s) => Some(s),
                _ => None,
            })
            .collect();
        for _ in 0..4 {
            let mut next = Vec::new();
            for seg in wire.drain(..) {
                let outs = if seg.dst_port == 2 {
                    server.on_segment(SimTime::ZERO, seg, false)
                } else {
                    client.on_segment(SimTime::ZERO, seg, false)
                };
                for o in outs {
                    if let TcpOutput::Send(s) = o {
                        next.push(s);
                    }
                }
            }
            wire = next;
        }
        b.iter(|| {
            let outs = client.write(SimTime::ZERO, 1448);
            let mut acks = Vec::new();
            for o in outs {
                if let TcpOutput::Send(s) = o {
                    for o2 in server.on_segment(SimTime::ZERO, s, false) {
                        if let TcpOutput::Send(a) = o2 {
                            acks.push(a);
                        }
                    }
                }
            }
            for a in acks {
                client.on_segment(SimTime::ZERO, a, false);
            }
            std::hint::black_box(server.read(1448))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
