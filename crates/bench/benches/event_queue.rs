//! Micro-benchmark: the deterministic event queue (every testbed's hot
//! loop).
use criterion::{criterion_group, criterion_main, Criterion};
use simcore::event::EventQueue;
use simcore::time::SimDuration;

fn bench(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule_in(SimDuration::from_nanos(i * 13 % 977), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            std::hint::black_box(sum)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
