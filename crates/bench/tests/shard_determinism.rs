//! Byte-identity of the sharded executor across shard counts.
//!
//! The contract the sharded engine sells (`DESIGN.md` §13) is that
//! `--shards N` is *unobservable* in every artifact: stdout tables,
//! trace exports, journal exports, and invariant tallies are
//! byte-identical whether the coupling groups run serially or on N
//! workers. This suite pins that contract down with property tests
//! over randomly drawn scalebench cells, in three instrumentation
//! variants:
//!
//! * plain — trace + journal recording only;
//! * chaos — fault injection plus the invariant checker;
//! * chaos + watchdog — the above with a journal SLO watchdog armed.
//!
//! Each case runs the same task set at shards 1, 2, and 8 and demands
//! identical bytes from every export. The epoch-edge test at the
//! bottom pins the `< horizon` rule: a message landing *exactly* at
//! `barrier + lookahead` belongs to the next epoch at every shard
//! count.
//!
//! Tuned small (`PROPTEST_CASES` overrides): the point is the
//! cross-shard comparison, not scenario coverage — `scale_determinism`
//! and the golden checks cover breadth.

use npf_core::ArbiterPolicy;
use proptest::prelude::*;
use simcore::chaos::{invariant, ChaosConfig, ChaosProfile, InvariantChecker};
use simcore::journal::{self, JournalRecorder};
use simcore::shard::{self, IsolationSpec, Outbox, ShardLp};
use simcore::trace::{self, TraceRecorder};
use simcore::{JournalWatchdog, SimDuration, SimTime};

const POLICIES: [ArbiterPolicy; 3] = [
    ArbiterPolicy::ChannelOnly,
    ArbiterPolicy::RoundRobin,
    ArbiterPolicy::WeightedFair,
];

/// Ring capacity for the per-task recorders: big enough that no cell
/// here wraps, small enough that 8 concurrent rings stay cheap.
const RING: usize = 1 << 16;

/// Everything one run exports, as bytes.
#[derive(PartialEq, Eq)]
struct Capture {
    cells: String,
    trace: String,
    journal: String,
    attribution: String,
    chaos: String,
}

/// First line where `a` and `b` disagree, for a readable failure.
fn first_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("first diff at line {}: {la:?} vs {lb:?}", i + 1);
        }
    }
    format!("common prefix equal; lengths {} vs {}", a.len(), b.len())
}

/// Runs three coupled-by-nothing scalebench cells through
/// [`shard::run_isolated`] at `shards` workers with caller-side
/// instruments installed, exactly as the bench binaries do, and
/// returns every export.
fn run_at(
    shards: usize,
    tenants: u32,
    seed: u64,
    policy: ArbiterPolicy,
    quota: Option<u64>,
    chaos_seed: Option<u64>,
    watchdog: bool,
) -> Capture {
    // Caller-side instruments, mirroring `tracectl::run`'s setup.
    assert!(
        trace::install(TraceRecorder::new(RING)).is_none(),
        "test thread must start uninstrumented"
    );
    if let Some(s) = chaos_seed {
        assert!(invariant::install(InvariantChecker::new(s)).is_none());
    }
    let mut jr = JournalRecorder::new();
    if watchdog {
        jr.set_watchdog(JournalWatchdog {
            budget: SimDuration::from_micros(200),
        });
    }
    assert!(journal::install(jr).is_none());

    // The spec the binaries would build from the installed set — but
    // with the test-sized ring, so all shard counts share it.
    let spec = IsolationSpec {
        ring_capacity: RING,
        ..npf_bench::tracectl::isolation_spec()
    };
    let chaos = chaos_seed.map(|s| ChaosConfig::profile(ChaosProfile::All, s));

    let params = [
        (tenants, seed),
        (tenants, seed.wrapping_add(1)),
        (tenants + 1, seed),
    ];
    let cells = shard::run_isolated(
        params
            .iter()
            .map(|&(t, s)| {
                Box::new(move || npf_bench::scale::run_cell_chaos(t, s, policy, quota, chaos))
                    as Box<dyn FnOnce() -> npf_bench::scale::ScaleCell + Send>
            })
            .collect(),
        shards,
        spec,
    );

    let recorder = trace::uninstall().expect("installed above");
    let journal = journal::uninstall().expect("installed above");
    let chaos_summary = chaos_seed
        .map(|_| {
            let mut checker = invariant::uninstall().expect("installed above");
            let violations = format!("{:?}", checker.finish());
            format!(
                "seed={} checks={} resolved={} delivered={} violations={violations:?}",
                checker.seed(),
                checker.checks(),
                checker.resolved_faults(),
                checker.messages_delivered(),
            )
        })
        .unwrap_or_default();

    Capture {
        cells: cells
            .iter()
            .map(npf_bench::scale::cell_json)
            .collect::<Vec<_>>()
            .join("\n"),
        trace: recorder.export_chrome_json(),
        journal: journal.export_chrome_json(),
        attribution: journal.attribution_report(),
        chaos: chaos_summary,
    }
}

/// Asserts byte-identity of every export at shards 1 vs 2 vs 8.
fn assert_shard_invariant(
    tenants: u32,
    seed: u64,
    policy: ArbiterPolicy,
    quota: Option<u64>,
    chaos_seed: Option<u64>,
    watchdog: bool,
) -> Result<(), TestCaseError> {
    let base = run_at(1, tenants, seed, policy, quota, chaos_seed, watchdog);
    for shards in [2usize, 8] {
        let got = run_at(shards, tenants, seed, policy, quota, chaos_seed, watchdog);
        for (name, a, b) in [
            ("cells", &base.cells, &got.cells),
            ("trace", &base.trace, &got.trace),
            ("journal", &base.journal, &got.journal),
            ("attribution", &base.attribution, &got.attribution),
            ("chaos", &base.chaos, &got.chaos),
        ] {
            prop_assert!(
                a == b,
                "{name} diverged at shards {shards} vs 1 \
                 (tenants={tenants} seed={seed} policy={policy:?} quota={quota:?} \
                 chaos={chaos_seed:?} watchdog={watchdog}): {}",
                first_diff(a, b)
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]
    #[test]
    fn plain_runs_are_byte_identical_across_shard_counts(
        tenants in 2u32..5,
        seed in 1u64..1000,
        policy_idx in 0usize..3,
        quota_raw in 0u64..32,
    ) {
        // The shim has no `prop::option`; 0 stands in for "no quota".
        let quota = (quota_raw >= 4).then_some(quota_raw);
        assert_shard_invariant(tenants, seed, POLICIES[policy_idx], quota, None, false)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]
    #[test]
    fn chaos_runs_are_byte_identical_across_shard_counts(
        tenants in 2u32..5,
        seed in 1u64..1000,
        chaos_seed in 1u64..1000,
        policy_idx in 0usize..3,
    ) {
        assert_shard_invariant(
            tenants, seed, POLICIES[policy_idx], Some(16), Some(chaos_seed), false,
        )?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]
    #[test]
    fn chaos_watchdog_runs_are_byte_identical_across_shard_counts(
        tenants in 2u32..5,
        seed in 1u64..1000,
        chaos_seed in 1u64..1000,
    ) {
        assert_shard_invariant(
            tenants, seed, ArbiterPolicy::WeightedFair, Some(16), Some(chaos_seed), true,
        )?;
    }
}

/// The epoch-edge rule, shard-count-invariant: a cross-LP message
/// arriving *exactly* at `barrier + lookahead` must wait for the next
/// epoch, and the resulting delivery log is identical at every shard
/// count.
#[test]
fn epoch_edge_arrivals_are_identical_at_every_shard_count() {
    #[derive(Clone)]
    struct EdgeLp {
        id: usize,
        peers: usize,
        pending: Vec<(SimTime, u64)>,
        log: Vec<(SimTime, u64)>,
    }

    impl ShardLp for EdgeLp {
        type Msg = u64;

        fn next_event_time(&self) -> Option<SimTime> {
            self.pending.iter().map(|&(t, _)| t).min()
        }

        fn advance(&mut self, horizon: SimTime, outbox: &mut Outbox<u64>) {
            // Strict `<`: events exactly on the horizon stay pending.
            let mut i = 0;
            while i < self.pending.len() {
                if self.pending[i].0 < horizon {
                    let (at, v) = self.pending.remove(i);
                    self.log.push((at, v));
                    if v % 3 == 0 {
                        // Fabric hop at exactly the lookahead: lands
                        // precisely on the receiver's epoch edge.
                        outbox.send(
                            (self.id + 1) % self.peers,
                            at.saturating_add(SimDuration::from_nanos(100)),
                            v + 1,
                        );
                    }
                } else {
                    i += 1;
                }
            }
        }

        fn deliver(&mut self, at: SimTime, msg: u64) {
            self.pending.push((at, msg));
        }
    }

    let build = || -> Vec<EdgeLp> {
        (0..4)
            .map(|id| EdgeLp {
                id,
                peers: 4,
                // Every LP starts with events at t = 0, 100, 200 ns —
                // multiples of the 100 ns lookahead, so every barrier
                // and every fabric arrival sits exactly on an edge.
                pending: (0..3)
                    .map(|k| (SimTime::from_nanos(k * 100), (id as u64) * 3 + k))
                    .collect(),
                log: Vec::new(),
            })
            .collect()
    };

    let mut reports = Vec::new();
    for shards in [1usize, 2, 4] {
        let report = shard::run_epochs(
            build(),
            SimDuration::from_nanos(100),
            SimTime::from_nanos(10_000),
            shards,
            IsolationSpec::none(),
        );
        reports.push((shards, report));
    }

    let (_, base) = &reports[0];
    assert!(
        base.epochs >= 3,
        "edge events must spread across epochs, got {}",
        base.epochs
    );
    assert!(base.messages > 0, "fabric hops must cross shards");
    for (shards, r) in &reports[1..] {
        assert_eq!(r.epochs, base.epochs, "epoch count at shards {shards}");
        assert_eq!(
            r.messages, base.messages,
            "message count at shards {shards}"
        );
        for (i, (a, b)) in base.lps.iter().zip(&r.lps).enumerate() {
            assert_eq!(a.log, b.log, "LP {i} delivery log at shards {shards}");
        }
    }
}
