//! The scalebench sweep's jobs-invariance, pinned at the scale the
//! acceptance cares about: a 256-tenant cell sharded across seeds must
//! render a byte-identical artifact whether the cells run serially or
//! across four workers.

use std::sync::Mutex;

use npf_bench::par_runner::{self, task};
use npf_bench::scale::{self, ScaleCell};
use npf_core::ArbiterPolicy;

fn sweep(jobs: usize) -> String {
    let seeds: &[u64] = &[1, 2, 3, 4];
    let cells: &'static Mutex<Vec<Option<ScaleCell>>> =
        Box::leak(Box::new(Mutex::new(vec![None; seeds.len()])));
    let tasks = seeds
        .iter()
        .enumerate()
        .map(|(idx, &seed)| {
            task("scale_cell", move || {
                let cell = scale::run_cell(256, seed, ArbiterPolicy::WeightedFair, Some(16));
                cells.lock().expect("slots")[idx] = Some(cell);
                npf_bench::Report::new("", "")
            })
        })
        .collect();
    let _ = par_runner::run(tasks, jobs, None, false, 1 << 16, None);
    let cells: Vec<ScaleCell> = cells
        .lock()
        .expect("slots")
        .iter()
        .map(|c| c.expect("every task fills its slot"))
        .collect();
    // Zero wall_ms placeholders: timings are informational and must
    // never reach the compared cell lines anyway.
    scale::render_json(
        ArbiterPolicy::WeightedFair,
        Some(16),
        &cells,
        &vec![0; cells.len()],
    )
}

#[test]
fn jobs_1_and_4_render_identical_256_tenant_artifacts() {
    let serial = sweep(1);
    let parallel = sweep(4);
    assert_eq!(
        serial, parallel,
        "the scale artifact must be byte-identical at every --jobs value"
    );
    assert!(serial.contains("\"tenants\": 256"), "{serial}");
}
