//! Golden-trace determinism: the simulation is a deterministic DES and
//! every trace record is stamped with `SimTime`, so the same seed must
//! produce a byte-identical Chrome trace export — and a different seed
//! must not.

use npf_bench::micro::measure_npf;
use simcore::trace::{self, TraceRecorder};

/// Runs the Figure 3 microbenchmark under a fresh recorder and returns
/// the Chrome trace-event JSON it exports.
fn traced_run(seed: u64) -> String {
    assert!(!trace::enabled(), "no recorder leaked from a previous run");
    trace::install(TraceRecorder::new(1 << 16));
    let _ = measure_npf(4 * 1024, 200, seed);
    let recorder = trace::uninstall().expect("installed above");
    assert_eq!(recorder.dropped(), 0, "ring must not wrap in this test");
    recorder.export_chrome_json()
}

#[test]
fn same_seed_yields_byte_identical_traces() {
    let a = traced_run(31);
    let b = traced_run(31);
    assert_eq!(a, b, "same seed must reproduce the trace byte-for-byte");
}

#[test]
fn different_seed_yields_a_different_trace() {
    let a = traced_run(31);
    let b = traced_run(99);
    assert_ne!(a, b, "seed must influence recorded timings");
}

#[test]
fn export_is_wellformed_chrome_trace_json() {
    let json = traced_run(31);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with("],\"displayTimeUnit\":\"ns\"}"));
    // One complete event per NPF parent span plus its five children.
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"name\":\"npf\""));
    for child in [
        "fault_trigger",
        "driver_sw",
        "os_translate",
        "update_hw_pt",
        "resume",
    ] {
        assert!(json.contains(&format!("\"name\":\"{child}\"")), "{child}");
    }
    // Counters and instants ride along.
    assert!(json.contains("\"ph\":\"C\""));
    assert!(json.contains("\"ph\":\"i\""));
    // Thread-name metadata gives Perfetto its track labels.
    assert!(json.contains("\"thread_name\""));
    // Balanced braces as a cheap structural check (no string values in
    // this export contain braces).
    let open = json.matches('{').count();
    let close = json.matches('}').count();
    assert_eq!(open, close);
}

#[test]
fn metrics_registry_populated_by_traced_run() {
    assert!(!trace::enabled());
    trace::install(TraceRecorder::new(1 << 16));
    let _ = measure_npf(4 * 1024, 50, 7);
    let recorder = trace::uninstall().expect("installed above");
    let m = recorder.metrics();
    assert_eq!(m.counter("npf.events"), 50);
    let json = m.to_json();
    assert!(json.contains("\"npf.events\": 50"));
    let csv = m.to_csv();
    assert!(csv.starts_with("kind,name,value\n"));
    assert!(csv.contains("counter,npf.events,50"));
}
