//! Serial-vs-parallel equivalence: the same experiments at `--jobs 1`
//! and `--jobs 4` must produce byte-identical output — stdout, metrics
//! files, trace files, and the chaos verdict — because every task is a
//! hermetic deterministic island and results merge in task order.
//!
//! Two angles:
//!
//! * end-to-end through a real binary (`ablations`, six tasks), with
//!   `--metrics`/`--trace` export and with a chaos profile armed;
//! * in-process through [`npf_bench::par_runner`] with fault injection
//!   actually firing (the binaries' ablation testbeds don't take a
//!   chaos config, so injection equivalence needs a direct testbed).

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::Command;

use npf_bench::par_runner;
use npf_bench::report::Report;
use simcore::chaos::{ChaosConfig, ChaosProfile};
use simcore::units::ByteSize;

/// Output of one binary run: stdout, the chaos-relevant stderr lines,
/// and any exported files' contents.
struct BinRun {
    stdout: Vec<u8>,
    chaos_stderr: String,
    metrics: String,
    trace: String,
}

/// Runs the `ablations` binary with `jobs` workers, exporting metrics
/// and a trace into a per-run temp directory.
fn run_ablations(jobs: u32, extra: &[&str]) -> BinRun {
    let dir = std::env::temp_dir().join(format!(
        "npf-par-determinism-{}-j{jobs}-{}",
        std::process::id(),
        extra.len()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics: PathBuf = dir.join("metrics.json");
    let trace: PathBuf = dir.join("trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_ablations"))
        .arg(format!("--jobs={jobs}"))
        .arg(format!("--metrics={}", metrics.display()))
        .arg(format!("--trace={}", trace.display()))
        .args(extra)
        .output()
        .expect("run ablations");
    assert!(out.status.success(), "ablations --jobs {jobs} failed");
    let chaos_stderr = String::from_utf8_lossy(&out.stderr)
        .lines()
        .filter(|l| l.starts_with("chaos"))
        .collect::<Vec<_>>()
        .join("\n");
    let run = BinRun {
        stdout: out.stdout,
        chaos_stderr,
        metrics: std::fs::read_to_string(&metrics).expect("metrics written"),
        trace: std::fs::read_to_string(&trace).expect("trace written"),
    };
    let _ = std::fs::remove_dir_all(&dir);
    run
}

#[test]
fn ablations_binary_is_byte_identical_across_jobs() {
    let serial = run_ablations(1, &[]);
    let parallel = run_ablations(4, &[]);
    assert_eq!(
        String::from_utf8_lossy(&serial.stdout),
        String::from_utf8_lossy(&parallel.stdout),
        "stdout must not depend on --jobs"
    );
    assert_eq!(serial.metrics, parallel.metrics, "metrics export");
    assert_eq!(serial.trace, parallel.trace, "trace export");
    assert!(!serial.stdout.is_empty(), "reports actually printed");
    assert!(serial.metrics.contains('{'), "metrics actually exported");
}

#[test]
fn ablations_binary_is_byte_identical_across_jobs_under_chaos() {
    let chaos = ["--chaos-profile", "all", "--chaos-seed", "9"];
    let serial = run_ablations(1, &chaos);
    let parallel = run_ablations(4, &chaos);
    assert_eq!(
        String::from_utf8_lossy(&serial.stdout),
        String::from_utf8_lossy(&parallel.stdout),
        "stdout must not depend on --jobs under chaos"
    );
    assert_eq!(
        serial.chaos_stderr, parallel.chaos_stderr,
        "aggregated chaos verdict must not depend on --jobs"
    );
    assert_eq!(serial.metrics, parallel.metrics, "metrics export");
    assert_eq!(serial.trace, parallel.trace, "trace export");
    assert!(
        serial.chaos_stderr.contains("no invariant violations"),
        "verdict line present: {}",
        serial.chaos_stderr
    );
}

/// A small two-node IB transfer with fault injection armed through the
/// testbed config (not argv), so chaos actually fires inside the task.
fn chaos_ib_task(seed: u64) -> par_runner::Task {
    par_runner::task("chaos_ib", move || {
        use rdmasim::types::{RcConfig, SendOp, WcStatus};
        use testbed::ib::{IbCluster, IbConfig};
        let mut c = IbCluster::new(
            IbConfig::default()
                .with_nodes(2)
                .with_rc(RcConfig {
                    max_retries: 100_000,
                    max_rnr_retries: 100_000,
                    ..RcConfig::default()
                })
                .with_chaos(ChaosConfig::profile(ChaosProfile::All, seed))
                .with_disk(memsim::swap::DiskConfig::nvme()),
        );
        let (qa, qb) = c.connect(0, 1);
        let src = c.alloc_buffers(0, ByteSize::mib(4));
        let dst = c.alloc_buffers(1, ByteSize::mib(4));
        const MSGS: u64 = 8;
        for i in 0..MSGS {
            c.post_recv(1, qb, 1000 + i, dst, 4 << 20);
        }
        for i in 0..MSGS {
            c.post_send(
                0,
                qa,
                i,
                SendOp::Send {
                    local: src,
                    len: (i + 1) * 4096,
                },
            );
        }
        c.run_until_quiescent(50_000_000);
        let recv = c.drain_completions(1);
        let mut r = Report::new(&format!("chaos ib seed {seed}"), "par_determinism");
        r.columns(["wr_id", "len", "status"]);
        for comp in &recv {
            r.row([
                comp.wr_id.to_string(),
                comp.len.to_string(),
                format!("{:?}", comp.status),
            ]);
        }
        assert_eq!(recv.len() as u64, MSGS, "delivery at seed {seed}");
        assert!(
            recv.iter().all(|c| c.status == WcStatus::Success),
            "status at seed {seed}"
        );
        r
    })
}

/// Renders everything observable about a run into one comparable blob.
fn fingerprint(outcome: &par_runner::RunOutcome) -> String {
    let reports = outcome
        .reports
        .iter()
        .map(Report::render)
        .collect::<Vec<_>>()
        .join("\n");
    let recorder = outcome.recorder.as_ref().expect("recording enabled");
    format!(
        "{reports}\n---\nviolations={} checks={} outstanding={}\n---\n{}\n---\n{}",
        outcome.violations,
        outcome.checks,
        outcome.outstanding_faults,
        recorder.metrics().to_json(),
        recorder.export_chrome_json(),
    )
}

#[test]
fn injected_chaos_runs_are_identical_across_jobs() {
    let cfg = ChaosConfig::profile(ChaosProfile::All, 21);
    let tasks = |n: u64| (0..n).map(|i| chaos_ib_task(21 + i)).collect::<Vec<_>>();
    let serial = par_runner::run(tasks(4), 1, Some(cfg), true, 1 << 16, None);
    let parallel = par_runner::run(tasks(4), 4, Some(cfg), true, 1 << 16, None);
    let (fs, fp) = (fingerprint(&serial), fingerprint(&parallel));
    if fs != fp {
        std::fs::write("/tmp/fp_serial.txt", &fs).ok();
        std::fs::write("/tmp/fp_parallel.txt", &fp).ok();
    }
    assert_eq!(
        fs, fp,
        "injected chaos must merge identically at every job count"
    );
    assert!(
        serial.checks > 0,
        "the invariant checker actually observed the runs"
    );
    // The report bodies differ per seed, so merge order is observable.
    let mut seen = HashMap::new();
    for r in &serial.reports {
        *seen.entry(r.render()).or_insert(0u32) += 1;
    }
    assert_eq!(seen.len(), 4, "per-seed tasks produced distinct reports");
}
