//! The TCP connection state machine.
//!
//! Sans-IO: each call returns [`TcpOutput`] effects (segments to emit,
//! the retransmission timer to arm, application notifications); the host
//! event loop performs them. The implementation covers what the paper's
//! experiments exercise:
//!
//! * three-way handshake with SYN retransmission and exponential backoff
//!   (connection establishment "fails before" NPFs can be signalled, §3),
//! * slow start / congestion avoidance / fast retransmit / NewReno-style
//!   recovery,
//! * RFC 6298 RTO estimation with exponential backoff and a maximum
//!   retry count after which the stack reports failure to the
//!   application (the cold-ring abort of §5),
//! * out-of-order reassembly and cumulative ACKs (whose duplicates drive
//!   fast retransmit),
//! * ECN echo handling (§3 discusses why ECN cannot substitute for rNPF
//!   support).
//!
//! Deliberately out of scope: SACK, timestamps, window scaling beyond a
//! fixed advertised window, and zero-window probing — none affect the
//! reproduced figures.

use std::collections::BTreeMap;

use simcore::time::{SimDuration, SimTime};
use simcore::trace::{self, ArgValue};

use crate::types::{TcpConfig, TcpFlags, TcpSegment};

/// Connection lifecycle states (RFC 793 subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open; waiting for a SYN.
    Listen,
    /// Active open; SYN sent.
    SynSent,
    /// SYN received; SYN-ACK sent.
    SynReceived,
    /// Data may flow.
    Established,
    /// We sent FIN, awaiting its ACK.
    FinWait1,
    /// Our FIN is acked; awaiting the peer's FIN.
    FinWait2,
    /// Peer sent FIN; we may still send.
    CloseWait,
    /// We sent FIN after CloseWait.
    LastAck,
    /// Connection over.
    Done,
    /// The stack gave up (max retries, reset).
    Failed,
}

/// Why a connection failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// SYN retransmission limit exceeded.
    ConnectTimeout,
    /// Data retransmission limit exceeded (`tcp_retries2`).
    RetransmitLimit,
    /// Peer reset the connection.
    Reset,
}

/// Effects produced by the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpOutput {
    /// Transmit a segment.
    Send(TcpSegment),
    /// (Re)arm the retransmission timer for this absolute time,
    /// replacing any previous arm.
    SetTimer(SimTime),
    /// Disarm the retransmission timer.
    CancelTimer,
    /// The three-way handshake completed.
    Connected,
    /// New in-order bytes are readable.
    Readable,
    /// The peer closed its direction.
    PeerClosed,
    /// The connection failed.
    Failed(FailReason),
}

/// A TCP endpoint.
#[derive(Debug)]
pub struct TcpConnection {
    config: TcpConfig,
    state: TcpState,
    local_port: u16,
    remote_port: u16,

    // Send side.
    iss: u64,
    snd_una: u64,
    snd_nxt: u64,
    /// Absolute sequence limit of application data written so far.
    snd_limit: u64,
    cwnd: u64,
    ssthresh: u64,
    dupacks: u32,
    /// NewReno recovery point: in recovery until snd_una passes this.
    recover: Option<u64>,
    peer_window: u64,
    /// Congestion response armed once per window for ECN.
    ecn_cwr_point: u64,

    // Timers / RTO state.
    rto: SimDuration,
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    retries: u32,
    rtt_probe: Option<(u64, SimTime)>,
    timer_armed: bool,

    // Receive side.
    irs: u64,
    rcv_nxt: u64,
    ooo: BTreeMap<u64, u64>, // start -> end
    readable: u64,
    pending_ece: bool,

    fin_queued: bool,

    // Statistics.
    retransmitted_segments: u64,
    fast_retransmits: u64,
    timeouts: u64,
    delivered_bytes: u64,
}

impl TcpConnection {
    /// Creates a closed endpoint bound to `local_port` talking to
    /// `remote_port`.
    #[must_use]
    pub fn new(config: TcpConfig, local_port: u16, remote_port: u16) -> Self {
        let iss = 1; // deterministic ISN: contents are virtual
        TcpConnection {
            state: TcpState::Closed,
            local_port,
            remote_port,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_limit: iss + 1, // +1 for the SYN
            cwnd: config.initial_cwnd(),
            ssthresh: u64::MAX / 2,
            dupacks: 0,
            recover: None,
            peer_window: config.receive_window,
            ecn_cwr_point: 0,
            rto: config.rto_initial,
            srtt: None,
            rttvar: SimDuration::ZERO,
            retries: 0,
            rtt_probe: None,
            timer_armed: false,
            irs: 0,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            readable: 0,
            pending_ece: false,
            fin_queued: false,
            retransmitted_segments: 0,
            fast_retransmits: 0,
            timeouts: 0,
            delivered_bytes: 0,
            config,
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// The local port.
    #[must_use]
    pub fn local_port(&self) -> u16 {
        self.local_port
    }

    /// The remote port.
    #[must_use]
    pub fn remote_port(&self) -> u16 {
        self.remote_port
    }

    /// Bytes readable by the application.
    #[must_use]
    pub fn readable_bytes(&self) -> u64 {
        self.readable
    }

    /// Consumes up to `n` readable bytes, returning how many were read.
    pub fn read(&mut self, n: u64) -> u64 {
        let taken = n.min(self.readable);
        self.readable -= taken;
        taken
    }

    /// Total in-order bytes delivered to the application so far.
    #[must_use]
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Segments retransmitted (any cause).
    #[must_use]
    pub fn retransmitted_segments(&self) -> u64 {
        self.retransmitted_segments
    }

    /// Fast retransmits triggered.
    #[must_use]
    pub fn fast_retransmits(&self) -> u64 {
        self.fast_retransmits
    }

    /// RTO expirations.
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Current congestion window in bytes.
    #[must_use]
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// Current retransmission timeout.
    #[must_use]
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Bytes in flight.
    #[must_use]
    pub fn flight_size(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Bytes written but not yet transmitted.
    #[must_use]
    pub fn send_queue_bytes(&self) -> u64 {
        self.snd_limit.saturating_sub(self.snd_nxt)
    }

    fn segment(&self, seq: u64, len: u64, flags: TcpFlags) -> TcpSegment {
        TcpSegment {
            src_port: self.local_port,
            dst_port: self.remote_port,
            seq,
            ack: self.rcv_nxt,
            len,
            window: self.config.receive_window,
            flags,
        }
    }

    fn ack_segment(&mut self) -> TcpSegment {
        let mut flags = TcpFlags::ack();
        if self.pending_ece {
            flags.ece = true;
            self.pending_ece = false;
        }
        self.segment(self.snd_nxt, 0, flags)
    }

    fn arm_timer(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        self.timer_armed = true;
        out.push(TcpOutput::SetTimer(now + self.rto));
    }

    fn cancel_timer(&mut self, out: &mut Vec<TcpOutput>) {
        if self.timer_armed {
            self.timer_armed = false;
            out.push(TcpOutput::CancelTimer);
        }
    }

    /// Starts an active open. Returns the SYN and timer arm.
    ///
    /// # Panics
    ///
    /// Panics unless the connection is closed.
    pub fn connect(&mut self, now: SimTime) -> Vec<TcpOutput> {
        assert_eq!(self.state, TcpState::Closed, "connect on open connection");
        self.state = TcpState::SynSent;
        let mut out = vec![TcpOutput::Send(self.segment(self.iss, 0, TcpFlags::syn()))];
        self.snd_nxt = self.iss + 1;
        self.arm_timer(now, &mut out);
        out
    }

    /// Starts a passive open.
    ///
    /// # Panics
    ///
    /// Panics unless the connection is closed.
    pub fn listen(&mut self) {
        assert_eq!(self.state, TcpState::Closed, "listen on open connection");
        self.state = TcpState::Listen;
    }

    /// Queues `bytes` of application data and transmits what the windows
    /// allow.
    pub fn write(&mut self, now: SimTime, bytes: u64) -> Vec<TcpOutput> {
        self.snd_limit += bytes;
        let mut out = Vec::new();
        self.pump(now, &mut out);
        out
    }

    /// Requests an orderly close after all queued data.
    pub fn close(&mut self, now: SimTime) -> Vec<TcpOutput> {
        self.fin_queued = true;
        let mut out = Vec::new();
        self.pump(now, &mut out);
        out
    }

    /// Transmits new data permitted by the congestion and peer windows.
    fn pump(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        if !matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait1 | TcpState::LastAck
        ) {
            return;
        }
        let window = self.cwnd.min(self.peer_window);
        let mut sent_any = false;
        while self.snd_nxt < self.snd_limit && self.flight_size() < window {
            let remaining = self.snd_limit - self.snd_nxt;
            let allowance = window - self.flight_size();
            let len = remaining.min(self.config.mss).min(allowance);
            if len == 0 {
                break;
            }
            let seg = self.segment(self.snd_nxt, len, TcpFlags::ack());
            if self.rtt_probe.is_none() {
                self.rtt_probe = Some((self.snd_nxt + len, now));
            }
            self.snd_nxt += len;
            out.push(TcpOutput::Send(seg));
            sent_any = true;
        }
        // FIN once all data is out.
        if self.fin_queued && self.snd_nxt == self.snd_limit && self.flight_size() < window {
            let mut flags = TcpFlags::ack();
            flags.fin = true;
            let seg = self.segment(self.snd_nxt, 0, flags);
            self.snd_nxt += 1;
            self.snd_limit += 1;
            self.fin_queued = false;
            self.state = match self.state {
                TcpState::CloseWait => TcpState::LastAck,
                _ => TcpState::FinWait1,
            };
            out.push(TcpOutput::Send(seg));
            sent_any = true;
        }
        if sent_any && !self.timer_armed {
            self.arm_timer(now, out);
        }
    }

    /// Handles the retransmission timer firing.
    pub fn on_timer(&mut self, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        self.timer_armed = false;
        self.timeouts += 1;
        if trace::enabled() {
            trace::instant(
                now,
                "tcpsim",
                "rto_expiry",
                vec![
                    ("flight", ArgValue::U64(self.flight_size())),
                    ("rto_us", ArgValue::F64(self.rto.as_micros_f64())),
                ],
            );
            trace::metrics(|m| m.counter_add("tcpsim.rto_expiries", 1));
        }
        match self.state {
            TcpState::SynSent => {
                self.retries += 1;
                if self.retries > self.config.max_syn_retries {
                    self.state = TcpState::Failed;
                    out.push(TcpOutput::Failed(FailReason::ConnectTimeout));
                    return out;
                }
                self.rto = self.rto.doubled().min(self.config.rto_max);
                out.push(TcpOutput::Send(self.segment(self.iss, 0, TcpFlags::syn())));
                self.arm_timer(now, &mut out);
                self.retransmitted_segments += 1;
            }
            TcpState::SynReceived => {
                self.retries += 1;
                if self.retries > self.config.max_syn_retries {
                    self.state = TcpState::Failed;
                    out.push(TcpOutput::Failed(FailReason::ConnectTimeout));
                    return out;
                }
                self.rto = self.rto.doubled().min(self.config.rto_max);
                out.push(TcpOutput::Send(self.segment(
                    self.iss,
                    0,
                    TcpFlags::syn_ack(),
                )));
                self.arm_timer(now, &mut out);
                self.retransmitted_segments += 1;
            }
            _ if self.flight_size() > 0 => {
                self.retries += 1;
                if self.retries > self.config.max_data_retries {
                    self.state = TcpState::Failed;
                    out.push(TcpOutput::Failed(FailReason::RetransmitLimit));
                    return out;
                }
                // RFC 5681 timeout response.
                let flight = self.flight_size();
                self.ssthresh = (flight / 2).max(2 * self.config.mss);
                self.cwnd = self.config.mss;
                self.recover = None;
                self.dupacks = 0;
                self.rto = self.rto.doubled().min(self.config.rto_max);
                self.rtt_probe = None; // Karn: do not sample retransmits
                self.retransmit_head(&mut out);
                self.arm_timer(now, &mut out);
                self.trace_cwnd(now);
            }
            _ => {
                // Spurious timer with nothing outstanding: ignore.
            }
        }
        out
    }

    fn retransmit_head(&mut self, out: &mut Vec<TcpOutput>) {
        let len = (self.snd_limit.min(self.snd_una + self.config.mss) - self.snd_una)
            .min(self.flight_size())
            .min(self.config.mss);
        let seg = self.segment(self.snd_una, len, TcpFlags::ack());
        self.retransmitted_segments += 1;
        if trace::enabled() {
            trace::instant_now(
                "tcpsim",
                "retransmit",
                vec![("seq", ArgValue::U64(seg.seq)), ("len", ArgValue::U64(len))],
            );
            trace::metrics(|m| m.counter_add("tcpsim.retransmits", 1));
        }
        out.push(TcpOutput::Send(seg));
    }

    /// Samples the congestion window into the trace (time series for
    /// Figure 4-style plots).
    fn trace_cwnd(&self, now: SimTime) {
        if trace::enabled() {
            let cwnd = self.cwnd as f64;
            trace::counter(now, "tcpsim", "cwnd", cwnd);
            trace::metrics(|m| m.series_push("tcpsim.cwnd", now, cwnd));
        }
    }

    /// Processes an incoming segment. `ecn_marked` reports a
    /// congestion-experienced mark from the network.
    pub fn on_segment(
        &mut self,
        now: SimTime,
        seg: TcpSegment,
        ecn_marked: bool,
    ) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        if matches!(
            self.state,
            TcpState::Failed | TcpState::Done | TcpState::Closed
        ) {
            return out;
        }
        if seg.flags.rst {
            self.state = TcpState::Failed;
            self.cancel_timer(&mut out);
            out.push(TcpOutput::Failed(FailReason::Reset));
            return out;
        }
        if ecn_marked && self.config.ecn {
            self.pending_ece = true;
        }

        match self.state {
            TcpState::Listen => {
                if seg.flags.syn {
                    self.irs = seg.seq;
                    self.rcv_nxt = seg.seq + 1;
                    self.peer_window = seg.window;
                    self.state = TcpState::SynReceived;
                    self.retries = 0;
                    out.push(TcpOutput::Send(self.segment(
                        self.iss,
                        0,
                        TcpFlags::syn_ack(),
                    )));
                    self.snd_nxt = self.iss + 1;
                    self.arm_timer(now, &mut out);
                }
                out
            }
            TcpState::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == self.iss + 1 {
                    self.irs = seg.seq;
                    self.rcv_nxt = seg.seq + 1;
                    self.snd_una = seg.ack;
                    self.peer_window = seg.window;
                    self.state = TcpState::Established;
                    self.retries = 0;
                    self.rto = self.config.rto_initial;
                    self.cancel_timer(&mut out);
                    out.push(TcpOutput::Connected);
                    out.push(TcpOutput::Send(self.ack_segment()));
                    self.pump(now, &mut out);
                }
                out
            }
            _ => {
                self.established_path(now, seg, &mut out);
                out
            }
        }
    }

    fn established_path(&mut self, now: SimTime, seg: TcpSegment, out: &mut Vec<TcpOutput>) {
        // Handshake completion on the passive side.
        if self.state == TcpState::SynReceived && seg.flags.ack && seg.ack > self.iss {
            self.state = TcpState::Established;
            self.snd_una = self.snd_una.max(seg.ack.min(self.snd_nxt));
            self.retries = 0;
            self.rto = self.config.rto_initial;
            self.cancel_timer(out);
            out.push(TcpOutput::Connected);
        }

        if seg.flags.ack {
            self.process_ack(now, &seg, out);
        }

        // Receive data / FIN.
        let had_payload = seg.len > 0 || seg.flags.fin;
        if had_payload {
            self.process_data(&seg, out);
            out.push(TcpOutput::Send(self.ack_segment()));
        }
        self.pump(now, out);
    }

    fn process_ack(&mut self, now: SimTime, seg: &TcpSegment, out: &mut Vec<TcpOutput>) {
        self.peer_window = seg.window;
        let ack = seg.ack.min(self.snd_nxt);

        // ECN echo from the peer: one multiplicative decrease per window.
        if seg.flags.ece && self.config.ecn && self.snd_una >= self.ecn_cwr_point {
            let flight = self.flight_size();
            self.ssthresh = (flight / 2).max(2 * self.config.mss);
            self.cwnd = self.ssthresh;
            self.ecn_cwr_point = self.snd_nxt;
        }

        if ack > self.snd_una {
            let acked = ack - self.snd_una;
            self.snd_una = ack;
            self.retries = 0;

            // RTT sampling (Karn-compliant: probe cleared on retransmit).
            if let Some((probe_end, sent_at)) = self.rtt_probe {
                if ack >= probe_end {
                    self.sample_rtt(now.saturating_since(sent_at));
                    self.rtt_probe = None;
                }
            }

            match self.recover {
                Some(point) if ack < point => {
                    // NewReno partial ack: the next hole is lost too.
                    self.retransmit_head(out);
                    self.cwnd =
                        self.cwnd.saturating_sub(acked).max(self.config.mss) + self.config.mss;
                }
                _ => {
                    if self.recover.take().is_some() {
                        // Full recovery: deflate.
                        self.cwnd = self.ssthresh;
                    } else if self.cwnd < self.ssthresh {
                        self.cwnd += acked.min(self.config.mss); // slow start
                    } else {
                        // Congestion avoidance: +mss per RTT.
                        self.cwnd += (self.config.mss * self.config.mss / self.cwnd).max(1);
                    }
                    self.dupacks = 0;
                }
            }

            if self.flight_size() == 0 {
                self.cancel_timer(out);
            } else {
                self.arm_timer(now, out);
            }

            // Our FIN acked?
            if self.state == TcpState::FinWait1 && self.snd_una == self.snd_nxt {
                self.state = TcpState::FinWait2;
            } else if self.state == TcpState::LastAck && self.snd_una == self.snd_nxt {
                self.state = TcpState::Done;
                self.cancel_timer(out);
            }
            self.trace_cwnd(now);
        } else if ack == self.snd_una && self.flight_size() > 0 && seg.len == 0 && !seg.flags.fin {
            self.dupacks += 1;
            if self.dupacks == 3 {
                // Fast retransmit + NewReno recovery.
                let flight = self.flight_size();
                self.ssthresh = (flight / 2).max(2 * self.config.mss);
                self.cwnd = self.ssthresh + 3 * self.config.mss;
                self.recover = Some(self.snd_nxt);
                self.fast_retransmits += 1;
                self.rtt_probe = None;
                if trace::enabled() {
                    trace::instant(now, "tcpsim", "fast_retransmit", Vec::new());
                    trace::metrics(|m| m.counter_add("tcpsim.fast_retransmits", 1));
                }
                self.retransmit_head(out);
                self.trace_cwnd(now);
            } else if self.dupacks > 3 && self.recover.is_some() {
                self.cwnd += self.config.mss; // inflation
            }
        }
    }

    fn process_data(&mut self, seg: &TcpSegment, out: &mut Vec<TcpOutput>) {
        let start = seg.seq;
        let end = seg.seq + seg.len;
        if seg.len > 0 {
            if end <= self.rcv_nxt {
                // Entirely old: the ACK we send is a duplicate.
            } else if start <= self.rcv_nxt {
                let fresh = end - self.rcv_nxt;
                self.rcv_nxt = end;
                self.readable += fresh;
                self.delivered_bytes += fresh;
                self.drain_ooo();
                out.push(TcpOutput::Readable);
            } else {
                // Out of order: buffer.
                let e = self.ooo.entry(start).or_insert(end);
                if *e < end {
                    *e = end;
                }
            }
        }
        if seg.flags.fin && seg.seq_end() - 1 == self.rcv_nxt {
            // FIN in order (its sequence number is end-of-data).
            self.rcv_nxt += 1;
            match self.state {
                TcpState::Established => self.state = TcpState::CloseWait,
                TcpState::FinWait2 | TcpState::FinWait1 => self.state = TcpState::Done,
                _ => {}
            }
            out.push(TcpOutput::PeerClosed);
        }
    }

    fn drain_ooo(&mut self) {
        loop {
            let Some((&start, &end)) = self.ooo.iter().next() else {
                return;
            };
            if start > self.rcv_nxt {
                return;
            }
            self.ooo.remove(&start);
            if end > self.rcv_nxt {
                let fresh = end - self.rcv_nxt;
                self.rcv_nxt = end;
                self.readable += fresh;
                self.delivered_bytes += fresh;
            }
        }
    }

    fn sample_rtt(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let delta = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = (self.rttvar * 3) / 4 + delta / 4;
                self.srtt = Some((srtt * 7) / 8 + rtt / 8);
            }
        }
        let srtt = self.srtt.expect("just set");
        self.rto = (srtt + self.rttvar * 4)
            .max(self.config.rto_min)
            .min(self.config.rto_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpConnection, TcpConnection) {
        let client = TcpConnection::new(TcpConfig::linux(), 1000, 80);
        let mut server = TcpConnection::new(TcpConfig::lwip(), 80, 1000);
        server.listen();
        (client, server)
    }

    /// Drives two connections to completion over a perfect zero-latency
    /// wire, returning all app-visible notifications in order.
    fn run_lockstep(
        client: &mut TcpConnection,
        server: &mut TcpConnection,
        mut first: Vec<TcpOutput>,
        now: SimTime,
    ) -> Vec<&'static str> {
        let mut notes = Vec::new();
        let mut to_server: Vec<TcpSegment> = Vec::new();
        let mut to_client: Vec<TcpSegment> = Vec::new();
        let absorb = |outs: Vec<TcpOutput>,
                      tx: &mut Vec<TcpSegment>,
                      notes: &mut Vec<&'static str>,
                      who: &'static str| {
            for o in outs {
                match o {
                    TcpOutput::Send(s) => tx.push(s),
                    TcpOutput::Connected => notes.push(if who == "c" {
                        "client-connected"
                    } else {
                        "server-connected"
                    }),
                    TcpOutput::Readable => notes.push(if who == "c" {
                        "client-readable"
                    } else {
                        "server-readable"
                    }),
                    TcpOutput::PeerClosed => notes.push("peer-closed"),
                    TcpOutput::Failed(_) => notes.push("failed"),
                    _ => {}
                }
            }
        };
        absorb(std::mem::take(&mut first), &mut to_server, &mut notes, "c");
        for _ in 0..200 {
            if to_server.is_empty() && to_client.is_empty() {
                break;
            }
            for seg in std::mem::take(&mut to_server) {
                let outs = server.on_segment(now, seg, false);
                absorb(outs, &mut to_client, &mut notes, "s");
            }
            for seg in std::mem::take(&mut to_client) {
                let outs = client.on_segment(now, seg, false);
                absorb(outs, &mut to_server, &mut notes, "c");
            }
        }
        notes
    }

    #[test]
    fn three_way_handshake() {
        let (mut c, mut s) = pair();
        let first = c.connect(SimTime::ZERO);
        let notes = run_lockstep(&mut c, &mut s, first, SimTime::ZERO);
        assert!(notes.contains(&"client-connected"));
        assert!(notes.contains(&"server-connected"));
        assert_eq!(c.state(), TcpState::Established);
        assert_eq!(s.state(), TcpState::Established);
    }

    #[test]
    fn data_transfer_delivers_bytes() {
        let (mut c, mut s) = pair();
        let first = c.connect(SimTime::ZERO);
        run_lockstep(&mut c, &mut s, first, SimTime::ZERO);
        let outs = c.write(SimTime::ZERO, 10_000);
        let notes = run_lockstep(&mut c, &mut s, outs, SimTime::ZERO);
        assert!(notes.contains(&"server-readable"));
        assert_eq!(s.readable_bytes(), 10_000);
        assert_eq!(s.read(4_000), 4_000);
        assert_eq!(s.readable_bytes(), 6_000);
        assert_eq!(c.flight_size(), 0, "everything acked");
    }

    #[test]
    fn write_respects_initial_cwnd() {
        let (mut c, mut s) = pair();
        let first = c.connect(SimTime::ZERO);
        run_lockstep(&mut c, &mut s, first, SimTime::ZERO);
        // Write far more than the initial window; only cwnd may fly.
        let outs = c.write(SimTime::ZERO, 1_000_000);
        let sent: u64 = outs
            .iter()
            .filter_map(|o| match o {
                TcpOutput::Send(s) => Some(s.len),
                _ => None,
            })
            .sum();
        assert_eq!(sent, c.cwnd().min(1_000_000));
        assert!(sent < 1_000_000);
    }

    #[test]
    fn syn_retransmits_with_backoff_then_fails() {
        let mut c = TcpConnection::new(TcpConfig::linux(), 1, 2);
        let outs = c.connect(SimTime::ZERO);
        let TcpOutput::SetTimer(t1) = outs[1] else {
            panic!("timer expected");
        };
        assert_eq!(t1, SimTime::from_secs(1));
        let mut deadline = t1;
        let mut failures = 0;
        let mut rtos = Vec::new();
        for _ in 0..10 {
            let outs = c.on_timer(deadline);
            let mut next = None;
            for o in &outs {
                match o {
                    TcpOutput::SetTimer(t) => next = Some(*t),
                    TcpOutput::Failed(FailReason::ConnectTimeout) => failures += 1,
                    _ => {}
                }
            }
            match next {
                Some(t) => {
                    rtos.push(t.saturating_since(deadline));
                    deadline = t;
                }
                None => break,
            }
        }
        assert_eq!(failures, 1, "exactly one failure notification");
        assert_eq!(c.state(), TcpState::Failed);
        // Exponential backoff: 2s, 4s, 8s, ...
        assert_eq!(rtos[0], SimDuration::from_secs(2));
        assert_eq!(rtos[1], SimDuration::from_secs(4));
        assert_eq!(rtos[2], SimDuration::from_secs(8));
    }

    #[test]
    fn lost_data_recovered_by_rto() {
        let (mut c, mut s) = pair();
        let first = c.connect(SimTime::ZERO);
        run_lockstep(&mut c, &mut s, first, SimTime::ZERO);
        // Send one segment and lose it.
        let outs = c.write(SimTime::ZERO, 1000);
        let timer = outs.iter().find_map(|o| match o {
            TcpOutput::SetTimer(t) => Some(*t),
            _ => None,
        });
        let deadline = timer.expect("retransmission timer armed");
        // RTO fires; the retransmission reaches the server this time.
        let outs = c.on_timer(deadline);
        let retx: Vec<TcpSegment> = outs
            .iter()
            .filter_map(|o| match o {
                TcpOutput::Send(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(retx.len(), 1);
        assert_eq!(retx[0].len, 1000);
        assert_eq!(c.cwnd(), TcpConfig::linux().mss, "timeout collapses cwnd");
        let notes = run_lockstep(&mut c, &mut s, outs, deadline);
        assert!(notes.contains(&"server-readable"));
        assert_eq!(s.readable_bytes(), 1000);
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let (mut c, mut s) = pair();
        let first = c.connect(SimTime::ZERO);
        run_lockstep(&mut c, &mut s, first, SimTime::ZERO);
        let mss = TcpConfig::linux().mss;
        // Send 5 segments; drop the first, deliver the rest.
        let outs = c.write(SimTime::ZERO, 5 * mss);
        let segs: Vec<TcpSegment> = outs
            .iter()
            .filter_map(|o| match o {
                TcpOutput::Send(sg) => Some(*sg),
                _ => None,
            })
            .collect();
        assert_eq!(segs.len(), 5);
        let mut acks = Vec::new();
        for seg in &segs[1..] {
            for o in s.on_segment(SimTime::ZERO, *seg, false) {
                if let TcpOutput::Send(a) = o {
                    acks.push(a);
                }
            }
        }
        // Four dupacks come back; the third triggers fast retransmit.
        let mut retransmitted = Vec::new();
        for a in acks {
            for o in c.on_segment(SimTime::ZERO, a, false) {
                if let TcpOutput::Send(sg) = o {
                    retransmitted.push(sg);
                }
            }
        }
        assert_eq!(c.fast_retransmits(), 1);
        assert!(retransmitted.iter().any(|sg| sg.seq == segs[0].seq));
        // Deliver the retransmission: everything is acked cumulatively.
        let mut final_acks = Vec::new();
        for o in s.on_segment(SimTime::ZERO, retransmitted[0], false) {
            if let TcpOutput::Send(a) = o {
                final_acks.push(a);
            }
        }
        for a in final_acks {
            c.on_segment(SimTime::ZERO, a, false);
        }
        assert_eq!(c.flight_size(), 0);
        assert_eq!(s.readable_bytes(), 5 * mss);
    }

    #[test]
    fn out_of_order_data_reassembles() {
        let (mut c, mut s) = pair();
        let first = c.connect(SimTime::ZERO);
        run_lockstep(&mut c, &mut s, first, SimTime::ZERO);
        let mss = TcpConfig::linux().mss;
        let outs = c.write(SimTime::ZERO, 3 * mss);
        let segs: Vec<TcpSegment> = outs
            .iter()
            .filter_map(|o| match o {
                TcpOutput::Send(sg) => Some(*sg),
                _ => None,
            })
            .collect();
        // Deliver in order 2, 0, 1.
        s.on_segment(SimTime::ZERO, segs[2], false);
        assert_eq!(s.readable_bytes(), 0, "gap holds delivery");
        s.on_segment(SimTime::ZERO, segs[0], false);
        assert_eq!(s.readable_bytes(), mss);
        s.on_segment(SimTime::ZERO, segs[1], false);
        assert_eq!(s.readable_bytes(), 3 * mss, "hole filled drains OOO");
    }

    #[test]
    fn data_retry_limit_fails_connection() {
        let cfg = TcpConfig {
            max_data_retries: 3,
            ..TcpConfig::linux()
        };
        let mut c = TcpConnection::new(cfg, 1, 2);
        let mut s = TcpConnection::new(TcpConfig::lwip(), 2, 1);
        s.listen();
        let first = c.connect(SimTime::ZERO);
        run_lockstep(&mut c, &mut s, first, SimTime::ZERO);
        let outs = c.write(SimTime::ZERO, 100);
        let mut deadline = outs
            .iter()
            .find_map(|o| match o {
                TcpOutput::SetTimer(t) => Some(*t),
                _ => None,
            })
            .expect("timer");
        let mut failed = false;
        for _ in 0..10 {
            let outs = c.on_timer(deadline);
            let mut next = None;
            for o in outs {
                match o {
                    TcpOutput::SetTimer(t) => next = Some(t),
                    TcpOutput::Failed(FailReason::RetransmitLimit) => failed = true,
                    _ => {}
                }
            }
            match next {
                Some(t) => deadline = t,
                None => break,
            }
        }
        assert!(failed, "retry limit must fail the connection");
        assert_eq!(c.state(), TcpState::Failed);
    }

    #[test]
    fn rst_fails_immediately() {
        let (mut c, mut s) = pair();
        let first = c.connect(SimTime::ZERO);
        run_lockstep(&mut c, &mut s, first, SimTime::ZERO);
        let rst = TcpSegment {
            src_port: 80,
            dst_port: 1000,
            seq: 0,
            ack: 0,
            len: 0,
            window: 0,
            flags: TcpFlags::rst(),
        };
        let outs = c.on_segment(SimTime::ZERO, rst, false);
        assert!(outs.contains(&TcpOutput::Failed(FailReason::Reset)));
    }

    #[test]
    fn orderly_close_both_ways() {
        let (mut c, mut s) = pair();
        let first = c.connect(SimTime::ZERO);
        run_lockstep(&mut c, &mut s, first, SimTime::ZERO);
        let outs = c.close(SimTime::ZERO);
        let notes = run_lockstep(&mut c, &mut s, outs, SimTime::ZERO);
        assert!(notes.contains(&"peer-closed"));
        assert_eq!(s.state(), TcpState::CloseWait);
        // Server closes its side; shuttle segments in the right
        // direction until both ends are done.
        let mut to_client: Vec<TcpSegment> = s
            .close(SimTime::ZERO)
            .into_iter()
            .filter_map(|o| match o {
                TcpOutput::Send(sg) => Some(sg),
                _ => None,
            })
            .collect();
        let mut to_server: Vec<TcpSegment> = Vec::new();
        for _ in 0..20 {
            if to_client.is_empty() && to_server.is_empty() {
                break;
            }
            for seg in std::mem::take(&mut to_client) {
                for o in c.on_segment(SimTime::ZERO, seg, false) {
                    if let TcpOutput::Send(sg) = o {
                        to_server.push(sg);
                    }
                }
            }
            for seg in std::mem::take(&mut to_server) {
                for o in s.on_segment(SimTime::ZERO, seg, false) {
                    if let TcpOutput::Send(sg) = o {
                        to_client.push(sg);
                    }
                }
            }
        }
        assert_eq!(s.state(), TcpState::Done);
        assert_eq!(c.state(), TcpState::Done);
    }

    #[test]
    fn rtt_sampling_tightens_rto() {
        let (mut c, mut s) = pair();
        let first = c.connect(SimTime::ZERO);
        run_lockstep(&mut c, &mut s, first, SimTime::ZERO);
        assert_eq!(c.rto(), SimDuration::from_secs(1));
        // One send/ack exchange with a 10 ms RTT.
        let outs = c.write(SimTime::ZERO, 100);
        let seg = outs
            .iter()
            .find_map(|o| match o {
                TcpOutput::Send(sg) => Some(*sg),
                _ => None,
            })
            .expect("segment");
        let acks = s.on_segment(SimTime::from_millis(5), seg, false);
        let ack = acks
            .iter()
            .find_map(|o| match o {
                TcpOutput::Send(a) => Some(*a),
                _ => None,
            })
            .expect("ack");
        c.on_segment(SimTime::from_millis(10), ack, false);
        // RTO now reflects srtt + 4*rttvar, floored at rto_min.
        assert_eq!(c.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn ecn_echo_halves_rate_once_per_window() {
        let cfg = TcpConfig {
            ecn: true,
            ..TcpConfig::linux()
        };
        let mut c = TcpConnection::new(cfg, 1, 2);
        let scfg = TcpConfig {
            ecn: true,
            ..TcpConfig::lwip()
        };
        let mut s = TcpConnection::new(scfg, 2, 1);
        s.listen();
        let first = c.connect(SimTime::ZERO);
        run_lockstep(&mut c, &mut s, first, SimTime::ZERO);
        let before = c.cwnd();
        let outs = c.write(SimTime::ZERO, 4 * cfg.mss);
        let segs: Vec<TcpSegment> = outs
            .iter()
            .filter_map(|o| match o {
                TcpOutput::Send(sg) => Some(*sg),
                _ => None,
            })
            .collect();
        // Mark the first segment as congestion-experienced.
        let acks: Vec<TcpSegment> = s
            .on_segment(SimTime::ZERO, segs[0], true)
            .into_iter()
            .filter_map(|o| match o {
                TcpOutput::Send(a) => Some(a),
                _ => None,
            })
            .collect();
        assert!(acks.iter().any(|a| a.flags.ece), "receiver echoes ECN");
        for a in acks {
            c.on_segment(SimTime::ZERO, a, false);
        }
        assert!(c.cwnd() < before, "ECE reduces the window");
    }
}

#[cfg(test)]
mod congestion_tests {
    use super::*;

    /// cwnd grows while acks flow, collapses on timeout, and regrows
    /// past the new ssthresh into congestion avoidance.
    #[test]
    fn slow_start_then_congestion_avoidance() {
        let cfg = TcpConfig {
            initial_cwnd_segments: 2,
            ..TcpConfig::linux()
        };
        let mut c = TcpConnection::new(cfg, 1, 2);
        let mut s = TcpConnection::new(TcpConfig::lwip(), 2, 1);
        s.listen();
        let mut now = SimTime::ZERO;
        let mut timer: Option<SimTime> = None;

        // Shuttle helper: runs segments both ways, tracking the client's
        // retransmission timer.
        let shuttle = |c: &mut TcpConnection,
                       s: &mut TcpConnection,
                       first: Vec<TcpOutput>,
                       now: SimTime,
                       timer: &mut Option<SimTime>| {
            let mut wire: Vec<TcpSegment> = Vec::new();
            let absorb = |outs: Vec<TcpOutput>,
                          wire: &mut Vec<TcpSegment>,
                          timer: &mut Option<SimTime>,
                          from_client: bool| {
                for o in outs {
                    match o {
                        TcpOutput::Send(seg) => wire.push(seg),
                        TcpOutput::SetTimer(t) if from_client => *timer = Some(t),
                        TcpOutput::CancelTimer if from_client => *timer = None,
                        _ => {}
                    }
                }
            };
            absorb(first, &mut wire, timer, true);
            for _ in 0..200 {
                if wire.is_empty() {
                    break;
                }
                let mut next = Vec::new();
                for seg in wire.drain(..) {
                    let from_client = seg.dst_port != 2;
                    let outs = if seg.dst_port == 2 {
                        s.on_segment(now, seg, false)
                    } else {
                        c.on_segment(now, seg, false)
                    };
                    absorb(outs, &mut next, timer, !from_client);
                }
                wire = next;
            }
        };

        let first = c.connect(now);
        shuttle(&mut c, &mut s, first, now, &mut timer);
        assert_eq!(c.state(), TcpState::Established);

        // Slow start: each fully-acked flight grows cwnd roughly
        // exponentially.
        let mut growth = vec![c.cwnd()];
        for _ in 0..4 {
            let outs = c.write(now, 64 * cfg.mss);
            shuttle(&mut c, &mut s, outs, now, &mut timer);
            growth.push(c.cwnd());
        }
        assert!(
            growth.windows(2).all(|w| w[1] >= w[0]),
            "cwnd grows in slow start: {growth:?}"
        );
        assert!(
            *growth.last().expect("nonempty") >= growth[0] * 4,
            "growth is multiplicative early on: {growth:?}"
        );

        // Lose a flight: the timeout collapses cwnd to 1 MSS and halves
        // ssthresh.
        let before = c.cwnd();
        let outs = c.write(now, 4 * cfg.mss);
        // Discard the segments (lost); keep the timer.
        for o in outs {
            if let TcpOutput::SetTimer(t) = o {
                timer = Some(t);
            }
        }
        now = timer.expect("retransmission timer armed");
        let outs = c.on_timer(now);
        assert_eq!(c.cwnd(), cfg.mss, "timeout collapses cwnd");
        assert!(c.timeouts() >= 1);
        // Recover: keep delivering retransmissions (and firing the timer
        // when needed) until the flight clears.
        shuttle(&mut c, &mut s, outs, now, &mut timer);
        for _ in 0..20 {
            if c.flight_size() == 0 {
                break;
            }
            now = timer.expect("timer while data in flight");
            let outs = c.on_timer(now);
            shuttle(&mut c, &mut s, outs, now, &mut timer);
        }
        assert_eq!(c.flight_size(), 0, "recovery completes");
        assert!(c.cwnd() < before, "post-recovery window is modest");

        // Congestion avoidance: per-ack growth is mss^2/cwnd, so the
        // per-round deltas shrink as the window grows (concave), unlike
        // slow start's multiplicative (convex) trajectory.
        let mut ca = vec![c.cwnd()];
        for _ in 0..3 {
            let outs = c.write(now, 64 * cfg.mss);
            shuttle(&mut c, &mut s, outs, now, &mut timer);
            ca.push(c.cwnd());
        }
        let deltas: Vec<u64> = ca.windows(2).map(|w| w[1].saturating_sub(w[0])).collect();
        assert!(
            deltas.windows(2).all(|d| d[1] <= d[0]),
            "sublinear growth in congestion avoidance: {ca:?} (deltas {deltas:?})"
        );
    }
}
