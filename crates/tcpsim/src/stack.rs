//! A multi-connection TCP stack: demultiplexing and listeners.
//!
//! Hosts own one [`TcpStack`] per network interface. Segments are
//! demultiplexed by `(local port, remote port)`; SYNs to a listening
//! port spawn new connections. All effects bubble up tagged with the
//! connection they belong to.

use std::collections::HashMap;

use simcore::time::SimTime;

use crate::conn::{TcpConnection, TcpOutput, TcpState};
use crate::types::{TcpConfig, TcpSegment};

/// Identifies a connection within a stack: `(local_port, remote_port)`.
pub type ConnId = (u16, u16);

/// A TCP stack instance.
#[derive(Debug, Default)]
pub struct TcpStack {
    conns: HashMap<ConnId, TcpConnection>,
    listeners: HashMap<u16, TcpConfig>,
}

impl TcpStack {
    /// Creates an empty stack.
    #[must_use]
    pub fn new() -> Self {
        TcpStack::default()
    }

    /// Starts listening on `port`; inbound connections adopt `config`.
    pub fn listen(&mut self, port: u16, config: TcpConfig) {
        self.listeners.insert(port, config);
    }

    /// Opens a connection from `local` to `remote`, returning its id and
    /// the initial effects (SYN + timer).
    pub fn connect(
        &mut self,
        now: SimTime,
        local: u16,
        remote: u16,
        config: TcpConfig,
    ) -> (ConnId, Vec<TcpOutput>) {
        let id = (local, remote);
        let mut conn = TcpConnection::new(config, local, remote);
        let outs = conn.connect(now);
        self.conns.insert(id, conn);
        (id, outs)
    }

    /// The connection with this id, if it exists.
    #[must_use]
    pub fn conn(&self, id: ConnId) -> Option<&TcpConnection> {
        self.conns.get(&id)
    }

    /// Mutable access to a connection (for `write`/`read`/`close`).
    pub fn conn_mut(&mut self, id: ConnId) -> Option<&mut TcpConnection> {
        self.conns.get_mut(&id)
    }

    /// Ids of all live connections.
    pub fn conn_ids(&self) -> impl Iterator<Item = ConnId> + '_ {
        self.conns.keys().copied()
    }

    /// Number of connections (any state).
    #[must_use]
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// `true` when no connections exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// Handles an inbound segment, returning `(connection, effects)`.
    /// Segments to unknown ports are dropped silently (no RST generation
    /// — the experiments never need it).
    pub fn on_segment(
        &mut self,
        now: SimTime,
        seg: TcpSegment,
        ecn_marked: bool,
    ) -> Option<(ConnId, Vec<TcpOutput>)> {
        let id = (seg.dst_port, seg.src_port);
        if let Some(conn) = self.conns.get_mut(&id) {
            return Some((id, conn.on_segment(now, seg, ecn_marked)));
        }
        if seg.flags.syn && !seg.flags.ack {
            if let Some(&config) = self.listeners.get(&seg.dst_port) {
                let mut conn = TcpConnection::new(config, seg.dst_port, seg.src_port);
                conn.listen();
                let outs = conn.on_segment(now, seg, ecn_marked);
                self.conns.insert(id, conn);
                return Some((id, outs));
            }
        }
        None
    }

    /// Handles the retransmission timer of one connection.
    pub fn on_timer(&mut self, now: SimTime, id: ConnId) -> Vec<TcpOutput> {
        match self.conns.get_mut(&id) {
            Some(conn) => conn.on_timer(now),
            None => Vec::new(),
        }
    }

    /// Drops connections that are finished or failed, returning how many
    /// were reaped.
    pub fn reap(&mut self) -> usize {
        let before = self.conns.len();
        self.conns
            .retain(|_, c| !matches!(c.state(), TcpState::Done | TcpState::Failed));
        before - self.conns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::TcpOutput;

    /// Shuttles segments between two stacks until quiescent.
    fn pump(a: &mut TcpStack, b: &mut TcpStack, mut from_a: Vec<TcpSegment>) {
        let mut from_b: Vec<TcpSegment> = Vec::new();
        for _ in 0..100 {
            if from_a.is_empty() && from_b.is_empty() {
                return;
            }
            for seg in std::mem::take(&mut from_a) {
                if let Some((_, outs)) = b.on_segment(SimTime::ZERO, seg, false) {
                    for o in outs {
                        if let TcpOutput::Send(s) = o {
                            from_b.push(s);
                        }
                    }
                }
            }
            for seg in std::mem::take(&mut from_b) {
                if let Some((_, outs)) = a.on_segment(SimTime::ZERO, seg, false) {
                    for o in outs {
                        if let TcpOutput::Send(s) = o {
                            from_a.push(s);
                        }
                    }
                }
            }
        }
    }

    fn sends(outs: &[TcpOutput]) -> Vec<TcpSegment> {
        outs.iter()
            .filter_map(|o| match o {
                TcpOutput::Send(s) => Some(*s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn listener_accepts_connection() {
        let mut client = TcpStack::new();
        let mut server = TcpStack::new();
        server.listen(80, TcpConfig::lwip());
        let (id, outs) = client.connect(SimTime::ZERO, 4000, 80, TcpConfig::linux());
        pump(&mut client, &mut server, sends(&outs));
        assert_eq!(
            client.conn(id).expect("conn").state(),
            TcpState::Established
        );
        assert_eq!(
            server.conn((80, 4000)).expect("conn").state(),
            TcpState::Established
        );
    }

    #[test]
    fn syn_to_closed_port_is_ignored() {
        let mut client = TcpStack::new();
        let mut server = TcpStack::new();
        let (_, outs) = client.connect(SimTime::ZERO, 4000, 81, TcpConfig::linux());
        for seg in sends(&outs) {
            assert!(server.on_segment(SimTime::ZERO, seg, false).is_none());
        }
    }

    #[test]
    fn multiple_connections_demux() {
        let mut client = TcpStack::new();
        let mut server = TcpStack::new();
        server.listen(80, TcpConfig::lwip());
        let (a, outs_a) = client.connect(SimTime::ZERO, 4000, 80, TcpConfig::linux());
        let (b, outs_b) = client.connect(SimTime::ZERO, 4001, 80, TcpConfig::linux());
        pump(&mut client, &mut server, sends(&outs_a));
        pump(&mut client, &mut server, sends(&outs_b));
        let outs = client.conn_mut(a).expect("conn").write(SimTime::ZERO, 500);
        pump(&mut client, &mut server, sends(&outs));
        assert_eq!(server.conn((80, 4000)).expect("conn").readable_bytes(), 500);
        assert_eq!(server.conn((80, 4001)).expect("conn").readable_bytes(), 0);
        assert_ne!(a, b);
        assert_eq!(server.len(), 2);
    }

    #[test]
    fn reap_removes_failed() {
        let mut client = TcpStack::new();
        let (id, outs) = client.connect(SimTime::ZERO, 4000, 80, TcpConfig::linux());
        // Never deliver anything; fire the timer past the SYN retry limit.
        let mut deadline = outs
            .iter()
            .find_map(|o| match o {
                TcpOutput::SetTimer(t) => Some(*t),
                _ => None,
            })
            .expect("timer");
        for _ in 0..10 {
            let outs = client.on_timer(deadline, id);
            match outs.iter().find_map(|o| match o {
                TcpOutput::SetTimer(t) => Some(*t),
                _ => None,
            }) {
                Some(t) => deadline = t,
                None => break,
            }
        }
        assert_eq!(client.conn(id).expect("conn").state(), TcpState::Failed);
        assert_eq!(client.reap(), 1);
        assert!(client.is_empty());
    }
}
