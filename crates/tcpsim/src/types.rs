//! TCP wire types and configuration.
//!
//! Segments carry logical byte counts, not bytes: the simulation tracks
//! sequence ranges exactly but never materializes payloads.

use simcore::time::SimDuration;

/// Segment control flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Synchronize (connection open).
    pub syn: bool,
    /// Acknowledgment field is valid.
    pub ack: bool,
    /// Sender has finished sending.
    pub fin: bool,
    /// Hard reset.
    pub rst: bool,
    /// ECN echo: the receiver saw a congestion-experienced mark.
    pub ece: bool,
}

impl TcpFlags {
    /// A pure data/ACK segment.
    #[must_use]
    pub fn ack() -> Self {
        TcpFlags {
            ack: true,
            ..TcpFlags::default()
        }
    }

    /// A SYN.
    #[must_use]
    pub fn syn() -> Self {
        TcpFlags {
            syn: true,
            ..TcpFlags::default()
        }
    }

    /// A SYN-ACK.
    #[must_use]
    pub fn syn_ack() -> Self {
        TcpFlags {
            syn: true,
            ack: true,
            ..TcpFlags::default()
        }
    }

    /// An RST.
    #[must_use]
    pub fn rst() -> Self {
        TcpFlags {
            rst: true,
            ..TcpFlags::default()
        }
    }
}

/// A TCP segment (simulation form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// First sequence number covered (SYN/FIN occupy one number each).
    pub seq: u64,
    /// Cumulative acknowledgment (valid when `flags.ack`).
    pub ack: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Advertised receive window in bytes.
    pub window: u64,
    /// Control flags.
    pub flags: TcpFlags,
}

impl TcpSegment {
    /// On-wire size: payload plus 40 bytes of TCP/IP headers + 14 of
    /// Ethernet framing.
    #[must_use]
    pub fn wire_size(&self) -> u64 {
        self.len + 54
    }

    /// The sequence number following this segment (accounting for
    /// SYN/FIN consuming one).
    #[must_use]
    pub fn seq_end(&self) -> u64 {
        self.seq + self.len + u64::from(self.flags.syn) + u64::from(self.flags.fin)
    }
}

/// TCP tuning knobs.
///
/// Two presets match the paper's endpoints: [`TcpConfig::linux`] for the
/// memaslap client machine and [`TcpConfig::lwip`] for the IOuser's
/// user-level stack.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: u64,
    /// Initial congestion window, in segments.
    pub initial_cwnd_segments: u64,
    /// Initial retransmission timeout before any RTT sample (RFC 6298:
    /// 1 second).
    pub rto_initial: SimDuration,
    /// Lower bound on the RTO (Linux: 200 ms).
    pub rto_min: SimDuration,
    /// Upper bound on the RTO backoff.
    pub rto_max: SimDuration,
    /// Consecutive RTOs on the same data before the connection is
    /// declared dead (Linux `tcp_retries2` ≈ 15).
    pub max_data_retries: u32,
    /// SYN retransmissions before `connect` fails (Linux
    /// `tcp_syn_retries` = 6).
    pub max_syn_retries: u32,
    /// Fixed advertised receive window.
    pub receive_window: u64,
    /// React to ECN echoes as to loss (rate halving without retransmit).
    pub ecn: bool,
}

impl TcpConfig {
    /// A Linux 3.x-era sender (the paper's client machine).
    #[must_use]
    pub fn linux() -> Self {
        TcpConfig {
            mss: 1448,
            initial_cwnd_segments: 10,
            rto_initial: SimDuration::from_secs(1),
            rto_min: SimDuration::from_millis(200),
            rto_max: SimDuration::from_secs(120),
            max_data_retries: 15,
            max_syn_retries: 6,
            receive_window: 1 << 20,
            ecn: false,
        }
    }

    /// The lwIP user-level stack the IOuser runs (§5): small initial
    /// window, same standardized timers.
    #[must_use]
    pub fn lwip() -> Self {
        TcpConfig {
            mss: 1448,
            initial_cwnd_segments: 2,
            rto_initial: SimDuration::from_secs(1),
            rto_min: SimDuration::from_millis(200),
            rto_max: SimDuration::from_secs(60),
            max_data_retries: 12,
            max_syn_retries: 6,
            receive_window: 256 * 1024,
            ecn: false,
        }
    }

    /// Initial congestion window in bytes.
    #[must_use]
    pub fn initial_cwnd(&self) -> u64 {
        self.initial_cwnd_segments * self.mss
    }
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig::linux()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_end_counts_syn_and_fin() {
        let mut seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 100,
            ack: 0,
            len: 10,
            window: 0,
            flags: TcpFlags::ack(),
        };
        assert_eq!(seg.seq_end(), 110);
        seg.flags.syn = true;
        assert_eq!(seg.seq_end(), 111);
        seg.flags.fin = true;
        assert_eq!(seg.seq_end(), 112);
    }

    #[test]
    fn wire_size_includes_headers() {
        let seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            len: 1448,
            window: 0,
            flags: TcpFlags::ack(),
        };
        assert_eq!(seg.wire_size(), 1502);
    }

    #[test]
    fn presets_differ_where_it_matters() {
        let linux = TcpConfig::linux();
        let lwip = TcpConfig::lwip();
        assert!(linux.initial_cwnd() > lwip.initial_cwnd());
        assert_eq!(linux.rto_initial, lwip.rto_initial);
    }
}
