//! # tcpsim — a sans-IO TCP implementation
//!
//! A faithful-enough TCP for reproducing the paper's Ethernet results:
//! the **cold ring problem** (Figure 4) is an emergent property of slow
//! start, retransmission timeouts with exponential backoff, duplicate-ACK
//! fast retransmit, and the maximum-retry abort — all implemented here.
//!
//! The state machine ([`conn::TcpConnection`]) is pure: it consumes
//! segments and timer expirations and returns [`conn::TcpOutput`]
//! effects. [`stack::TcpStack`] adds port demultiplexing and listeners.
//! Payload bytes are *logical* (counts, not contents).
//!
//! # Examples
//!
//! ```
//! use tcpsim::{TcpConfig, TcpStack, TcpOutput};
//! use simcore::SimTime;
//!
//! let mut server = TcpStack::new();
//! server.listen(80, TcpConfig::lwip());
//!
//! let mut client = TcpStack::new();
//! let (_id, outs) = client.connect(SimTime::ZERO, 4000, 80, TcpConfig::linux());
//! // The first effect is the SYN to put on the wire.
//! assert!(matches!(outs[0], TcpOutput::Send(seg) if seg.flags.syn));
//! ```

pub mod conn;
pub mod stack;
pub mod types;

pub use conn::{FailReason, TcpConnection, TcpOutput, TcpState};
pub use stack::{ConnId, TcpStack};
pub use types::{TcpConfig, TcpFlags, TcpSegment};
