//! MPI collective execution over the InfiniBand cluster (§6.2,
//! Figure 9 / Table 6).
//!
//! Executes a [`Collective`] schedule round by round: receives are
//! posted first, sends are delayed by the registration strategy's
//! preparation cost (pinning, cache lookups, or copying), and a round
//! barrier waits for every completion. The same runner executes every
//! strategy, so differences in runtime come only from registration
//! economics and page faults.

use std::collections::HashMap;

use memsim::types::{PageRange, VirtAddr};
use npf_core::pinning::{Registrar, Strategy};
use rdmasim::types::{QpId, SendOp, WcOpcode};
use simcore::time::SimDuration;
use simcore::units::ByteSize;
use workloads::mpi::{BufferPool, Collective};

use crate::ib::{IbCluster, IbConfig};

/// Configuration of one collective run.
#[derive(Debug, Clone, Copy)]
pub struct MpiRunConfig {
    /// Ranks (= cluster nodes).
    pub ranks: u32,
    /// Message bytes per rank.
    pub message_bytes: u64,
    /// Measured iterations (IMB style).
    pub iterations: u32,
    /// Unmeasured warm-up iterations (buffers become hot / registered,
    /// as in a long IMB run's steady state).
    pub warmup_iterations: u32,
    /// Registration strategy under test.
    pub strategy: Strategy,
    /// Buffers rotated per rank (IMB `off_cache`: > 1 forces fresh
    /// buffers each iteration; 1 reuses one hot buffer).
    pub off_cache_buffers: u64,
    /// The collective.
    pub collective: Collective,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MpiRunConfig {
    fn default() -> Self {
        MpiRunConfig {
            ranks: 8,
            message_bytes: 64 * 1024,
            iterations: 10,
            warmup_iterations: 0,
            strategy: Strategy::Odp,
            off_cache_buffers: 16,
            collective: Collective::SendRecv,
            seed: 1,
        }
    }
}

/// Result of a collective run.
#[derive(Debug, Clone, Copy)]
pub struct MpiRunResult {
    /// Total simulated time.
    pub total: SimDuration,
    /// Mean time per iteration.
    pub per_iteration: SimDuration,
    /// NPF events across all nodes.
    pub npf_events: u64,
    /// Bytes moved end-to-end (payload).
    pub bytes_moved: u64,
}

impl MpiRunResult {
    /// Aggregate bandwidth in MB/s (the beff metric).
    #[must_use]
    pub fn bandwidth_mb_s(&self) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        self.bytes_moved as f64 / 1e6 / self.total.as_secs_f64()
    }
}

/// Executes one collective benchmark.
///
/// # Panics
///
/// Panics if the cluster deadlocks (event budget exhausted) — a bug,
/// not a measurement.
pub fn run_collective(config: MpiRunConfig) -> MpiRunResult {
    let mut cluster = IbCluster::new(
        IbConfig::default()
            .with_nodes(config.ranks)
            .with_seed(config.seed),
    );

    // Connect every (src, dst) pair the schedule uses, sharing each
    // node's protection domain.
    let schedule = config
        .collective
        .schedule(config.ranks, config.message_bytes);
    let mut qps: HashMap<(u32, u32), (QpId, QpId)> = HashMap::new();
    for t in &schedule {
        qps.entry((t.src, t.dst))
            .or_insert_with(|| cluster.connect_shared(t.src, t.dst));
    }

    // Per-rank buffer pools (send + recv halves) and registrars.
    let mut send_pools = Vec::new();
    let mut recv_pools = Vec::new();
    let mut registrars = Vec::new();
    for r in 0..config.ranks {
        let pool_bytes = ByteSize::bytes_exact(
            (config.message_bytes.div_ceil(memsim::PAGE_SIZE) * memsim::PAGE_SIZE)
                * config.off_cache_buffers.max(1)
                * 2,
        );
        let base = cluster.alloc_buffers(r, pool_bytes);
        let half = pool_bytes.bytes() / 2;
        send_pools.push(BufferPool::new(
            base.0,
            config.message_bytes,
            config.off_cache_buffers,
        ));
        recv_pools.push(BufferPool::new(
            base.0 + half,
            config.message_bytes,
            config.off_cache_buffers,
        ));
        let domain = cluster.node(r).default_domain();
        let mut reg = Registrar::new(config.strategy, domain);
        // Register the whole pool region up front (what MPI does with
        // its communication buffers).
        let range = PageRange::covering(base, pool_bytes.bytes());
        reg.register_region(cluster.node_mut(r).engine_mut(), range)
            .expect("registration");
        registrars.push(reg);
    }

    let mut start = cluster.now();
    let mut bytes_moved = 0u64;
    let rounds = config.collective.rounds(config.ranks);
    // CPU-side reduction bandwidth for allreduce (data must cross the
    // CPU caches, §6.2).
    let reduce_bw_bytes_per_sec: f64 = 3.0e9;
    let mut wr_id = 0u64;

    for iter in 0..config.warmup_iterations + config.iterations {
        if iter == config.warmup_iterations {
            start = cluster.now();
            bytes_moved = 0;
        }
        for round in 0..rounds {
            let transfers: Vec<_> = schedule.iter().filter(|t| t.round == round).collect();
            let mut expected_sends: HashMap<u32, usize> = HashMap::new();
            let mut expected_recvs: HashMap<u32, usize> = HashMap::new();

            let mut finishes: Vec<(u32, VirtAddr, u64)> = Vec::new();
            for t in &transfers {
                let (q_src, q_dst) = qps[&(t.src, t.dst)];
                let recv_addr = VirtAddr(recv_pools[t.dst as usize].next_buffer());
                let send_addr = VirtAddr(send_pools[t.src as usize].next_buffer());
                finishes.push((t.src, send_addr, t.bytes));
                finishes.push((t.dst, recv_addr, t.bytes));

                // Receive side preparation (pinning strategies must make
                // the receive buffer DMA-able too).
                let dst_prep = registrars[t.dst as usize]
                    .prepare_transfer(cluster.node_mut(t.dst).engine_mut(), recv_addr, t.bytes)
                    .expect("recv prepare");
                cluster.post_recv(t.dst, q_dst, wr_id, recv_addr, t.bytes.max(1));

                // Send side preparation.
                let src_prep = registrars[t.src as usize]
                    .prepare_transfer(cluster.node_mut(t.src).engine_mut(), send_addr, t.bytes)
                    .expect("send prepare");

                cluster.post_send_after(
                    src_prep + dst_prep,
                    t.src,
                    q_src,
                    wr_id,
                    SendOp::Send {
                        local: send_addr,
                        len: t.bytes,
                    },
                );
                wr_id += 1;
                bytes_moved += t.bytes;
                *expected_sends.entry(t.src).or_default() += 1;
                *expected_recvs.entry(t.dst).or_default() += 1;
            }

            // Round barrier: wait for all completions.
            let mut budget = 50_000_000u64;
            loop {
                let done = expected_sends.iter().all(|(&n, &want)| {
                    cluster
                        .completions(n)
                        .iter()
                        .filter(|c| c.opcode == WcOpcode::Send)
                        .count()
                        >= want
                }) && expected_recvs.iter().all(|(&n, &want)| {
                    cluster
                        .completions(n)
                        .iter()
                        .filter(|c| c.opcode == WcOpcode::Recv)
                        .count()
                        >= want
                });
                if done {
                    break;
                }
                assert!(cluster.step(), "cluster deadlocked mid-round");
                budget -= 1;
                assert!(budget > 0, "event budget exhausted");
            }

            // Post-round cleanup: fine-grained unpinning / copy-out, and
            // the allreduce CPU reduction.
            let mut max_finish = SimDuration::ZERO;
            for t in &transfers {
                let finish_dst = registrars[t.dst as usize]
                    .finish_transfer(cluster.node_mut(t.dst).engine_mut(), VirtAddr(0), 0, false)
                    .expect("noop finish");
                max_finish = max_finish.max(finish_dst);
            }
            if config.collective.reduces_on_cpu()
                && config.strategy != npf_core::pinning::Strategy::Copy
            {
                // Zero-copy strategies pay the CPU reduction separately;
                // the Copy strategy's bounce copies already stream the
                // data through the CPU (which is why the paper sees
                // little difference for allreduce).
                let reduce = SimDuration::from_secs_f64(
                    config.message_bytes as f64 / reduce_bw_bytes_per_sec,
                );
                max_finish = max_finish.max(reduce);
            }
            for (n, _) in expected_sends.iter().chain(expected_recvs.iter()) {
                cluster.drain_completions(*n);
            }
            // Advance the barrier by the finish costs: a sentinel no-op
            // event keeps the clock honest.
            if !max_finish.is_zero() {
                let target = cluster.now() + max_finish;
                cluster.run_idle_until(target);
            }
        }
    }

    let total = cluster.now().saturating_since(start);
    let npf_events = (0..config.ranks)
        .map(|n| cluster.node(n).engine().counters().get("npf_events"))
        .sum();
    MpiRunResult {
        total,
        per_iteration: total / u64::from(config.iterations.max(1)),
        npf_events,
        bytes_moved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(strategy: Strategy, collective: Collective) -> MpiRunResult {
        run_collective(MpiRunConfig {
            ranks: 4,
            message_bytes: 64 * 1024,
            iterations: 4,
            warmup_iterations: 0,
            strategy,
            off_cache_buffers: 4,
            collective,
            seed: 3,
        })
    }

    #[test]
    fn all_collectives_complete_under_odp() {
        for c in [
            Collective::SendRecv,
            Collective::Bcast,
            Collective::AllToAll,
            Collective::AllReduce,
        ] {
            let r = quick(Strategy::Odp, c);
            assert!(r.total > SimDuration::ZERO, "{}", c.name());
            assert!(r.bytes_moved > 0, "{}", c.name());
        }
    }

    #[test]
    fn odp_faults_then_stops_faulting() {
        // Once the pool has been cycled, no further faults occur.
        let few_iters = run_collective(MpiRunConfig {
            iterations: 4,
            off_cache_buffers: 4,
            ranks: 4,
            ..MpiRunConfig::default()
        });
        let many_iters = run_collective(MpiRunConfig {
            iterations: 40,
            off_cache_buffers: 4,
            ranks: 4,
            ..MpiRunConfig::default()
        });
        assert_eq!(
            few_iters.npf_events, many_iters.npf_events,
            "faults are first-touch only"
        );
    }

    #[test]
    fn copy_is_slower_than_pinning_for_large_messages() {
        let copy = run_collective(MpiRunConfig {
            message_bytes: 128 * 1024,
            strategy: Strategy::Copy,
            ranks: 4,
            iterations: 6,
            warmup_iterations: 16,
            ..MpiRunConfig::default()
        });
        let pin = run_collective(MpiRunConfig {
            message_bytes: 128 * 1024,
            strategy: Strategy::PinDownCache {
                capacity: ByteSize::mib(64),
            },
            ranks: 4,
            iterations: 6,
            warmup_iterations: 16,
            ..MpiRunConfig::default()
        });
        assert!(
            copy.per_iteration > pin.per_iteration,
            "copy {} vs pin {}",
            copy.per_iteration,
            pin.per_iteration
        );
    }

    #[test]
    fn odp_close_to_pindown_cache() {
        // Steady state (after both have cycled the pool once).
        let odp = run_collective(MpiRunConfig {
            message_bytes: 64 * 1024,
            iterations: 12,
            warmup_iterations: 16,
            ranks: 4,
            ..MpiRunConfig::default()
        });
        let pin = run_collective(MpiRunConfig {
            message_bytes: 64 * 1024,
            iterations: 12,
            warmup_iterations: 16,
            ranks: 4,
            strategy: Strategy::PinDownCache {
                capacity: ByteSize::mib(64),
            },
            ..MpiRunConfig::default()
        });
        let ratio = odp.per_iteration.as_secs_f64() / pin.per_iteration.as_secs_f64();
        assert!(
            (0.8..1.3).contains(&ratio),
            "ODP should match the pin-down cache in steady state: {ratio:.2}"
        );
    }
}
