//! # testbed — experiment drivers
//!
//! Deterministic event-loop testbeds mirroring the paper's two setups:
//!
//! * [`eth::EthTestbed`] — the Ethernet pair: a Linux-TCP client machine
//!   back-to-back with a 12 Gb/s NPF-prototype server hosting memcached
//!   IOusers over direct channels (§5–6: cold ring, overcommit, dynamic
//!   working sets).
//! * [`ib::IbCluster`] — the 8-node, 56 Gb/s InfiniBand cluster with RC
//!   QPs whose DMAs consult each node's NPF engine (§4, §6).
//! * [`mpi_run`] — IMB-style collective execution over the cluster
//!   (Figure 9, Table 6).
//! * [`storage_bed`] — the tgt/fio storage experiment (Figure 8).
//! * [`stream_eth`] — the Netperf-style what-if stream with synthetic
//!   rNPF injection (Figure 10 left).
//!
//! Testbeds own the event loops; every substrate stays sans-IO. All
//! runs are deterministic in their seeds (asserted by integration
//! tests).
//!
//! Scenarios are constructed through [`builder::ScenarioBuilder`], the
//! typed, validated entry point for both testbeds; the legacy
//! `EthTestbed::new` / `IbCluster::new` constructors delegate to it.
//!
//! # Examples
//!
//! ```
//! use testbed::builder::ScenarioBuilder;
//! use testbed::eth::RxMode;
//! use simcore::{ByteSize, SimTime};
//! use workloads::memcached::MemcachedConfig;
//!
//! let mut bed = ScenarioBuilder::ethernet()
//!     .mode(RxMode::Backup)
//!     .conns_per_instance(4)
//!     .host_memory(ByteSize::mib(256))
//!     .memcached(MemcachedConfig {
//!         max_bytes: ByteSize::mib(32),
//!         ..MemcachedConfig::default()
//!     })
//!     .working_set_keys(500)
//!     .build()
//!     .expect("host memory suffices");
//! bed.run_until(SimTime::from_millis(200));
//! assert!(bed.total_ops() > 0);
//! ```

pub mod builder;
pub mod cpu;
pub mod eth;
pub mod ib;
pub mod mpi_run;
pub mod storage_bed;
pub mod stream_eth;

pub use builder::{EthScenario, IbScenario, ScenarioBuilder, ScenarioError};
pub use cpu::CpuPool;
pub use eth::{EthConfig, EthTestbed, InstanceMetrics, RxMode, TenantReport};
pub use ib::{IbCluster, IbConfig, IbNode};
pub use mpi_run::{run_collective, MpiRunConfig, MpiRunResult};
pub use storage_bed::{run_storage, StorageBedConfig, StorageBedResult};
pub use stream_eth::{run_stream, StreamBedConfig, StreamBedResult, StreamMode};
