//! The InfiniBand cluster testbed (§6's 8-node, 56 Gb/s setup).
//!
//! Each node owns an [`NpfEngine`] (its host memory + NIC IOMMU) and a
//! set of RC QPs. Every QP DMA consults the engine through a gate: a
//! miss starts an NPF whose completion is a scheduled event, so fault
//! latency, RNR NACK timing, and transport retries all interleave on
//! one deterministic clock.

use std::collections::HashMap;

use memsim::manager::{MemConfig, MemoryManager, TierConfig};
use memsim::space::Backing;
use memsim::swap::DiskConfig;
use memsim::types::{SpaceId, VirtAddr};
use netsim::fabric::{ChaosSendOutcome, Fabric};
use netsim::link::{LinkConfig, SendOutcome};
use netsim::packet::NodeId;
use netsim::profile::{FabricProfile, TransportConfig};
use npf_core::npf::{NpfConfig, NpfEngine};
use rdmasim::rc::RcQp;
use rdmasim::types::{
    Completion, DmaGate, GateDecision, MessageRange, QpId, QpOutput, QpTimer, RcConfig, RcPacket,
    RecvWqe, SendOp, WrId,
};
use simcore::chaos::{invariant, ChaosConfig, ChaosEngine, IommuFate, MemoryFate, PauseFate};
use simcore::event::{EventQueue, EventToken};
use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};
use simcore::trace;
use simcore::units::{Bandwidth, ByteSize};
use workloads::stream::SyntheticFaults;

use iommu::DomainId;

/// Cluster configuration.
///
/// Construct via [`IbConfig::default`] plus the `with_*` setters, or
/// through [`crate::builder::ScenarioBuilder::infiniband`] (which also
/// validates cross-field constraints). The struct is `#[non_exhaustive]`
/// so new knobs can be added without breaking downstream crates.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct IbConfig {
    /// Number of nodes (the paper uses eight).
    pub nodes: u32,
    /// Per-node physical memory (the paper's nodes have 128 GB).
    pub node_memory: ByteSize,
    /// Link rate (56 Gb/s FDR).
    pub bandwidth: Bandwidth,
    /// Switch store-and-forward latency.
    pub switch_latency: SimDuration,
    /// RC transport tuning.
    pub rc: RcConfig,
    /// NPF engine configuration.
    pub npf: NpfConfig,
    /// Secondary-storage model of every node.
    pub disk: DiskConfig,
    /// Optional NVM backing tier of every node (cold dirty pages
    /// demote there before the swap device).
    pub tier: Option<TierConfig>,
    /// RNG seed.
    pub seed: u64,
    /// Fault injection (disabled by default; a disabled config draws
    /// nothing from any RNG, so traces stay byte-identical).
    pub chaos: ChaosConfig,
    /// What the wire does: loss, PFC, ECN. Defaults to the paper's
    /// idealised lossless fabric, keeping legacy goldens byte-identical.
    pub profile: FabricProfile,
}

impl Default for IbConfig {
    fn default() -> Self {
        IbConfig {
            nodes: 8,
            node_memory: ByteSize::gib(8),
            bandwidth: Bandwidth::gbps(56),
            switch_latency: SimDuration::from_nanos(200),
            rc: RcConfig::default(),
            npf: NpfConfig::default(),
            disk: DiskConfig::hard_drive(),
            tier: None,
            seed: 1,
            chaos: ChaosConfig::disabled(),
            profile: FabricProfile::default(),
        }
    }
}

impl IbConfig {
    /// Sets the node count.
    #[must_use]
    pub fn with_nodes(mut self, nodes: u32) -> Self {
        self.nodes = nodes;
        self
    }

    /// Sets the per-node physical memory.
    #[must_use]
    pub fn with_node_memory(mut self, memory: ByteSize) -> Self {
        self.node_memory = memory;
        self
    }

    /// Sets the link rate.
    #[must_use]
    pub fn with_bandwidth(mut self, bandwidth: Bandwidth) -> Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Sets the switch store-and-forward latency.
    #[must_use]
    pub fn with_switch_latency(mut self, latency: SimDuration) -> Self {
        self.switch_latency = latency;
        self
    }

    /// Sets the RC transport tuning.
    #[must_use]
    pub fn with_rc(mut self, rc: RcConfig) -> Self {
        self.rc = rc;
        self
    }

    /// Sets the NPF engine configuration.
    #[must_use]
    pub fn with_npf(mut self, npf: NpfConfig) -> Self {
        self.npf = npf;
        self
    }

    /// Sets the secondary-storage model.
    #[must_use]
    pub fn with_disk(mut self, disk: DiskConfig) -> Self {
        self.disk = disk;
        self
    }

    /// Sets (or clears) the NVM backing tier.
    #[must_use]
    pub fn with_tier(mut self, tier: Option<TierConfig>) -> Self {
        self.tier = tier;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fault-injection configuration.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }

    /// Sets the fabric profile (loss, PFC, ECN).
    #[must_use]
    pub fn with_profile(mut self, profile: FabricProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Applies a typed transport configuration onto the RC tuning: the
    /// loss-recovery discipline and its BDP cap. Equivalent to editing
    /// [`IbConfig::rc`] directly; last writer wins.
    #[must_use]
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.rc.transport = transport.transport;
        self.rc.bdp_packets = transport.bdp_packets;
        self
    }
}

/// Synthetic receive-fault injection for one node (Figure 10's IB
/// side).
#[derive(Debug)]
struct SyntheticInjector {
    generator: SyntheticFaults,
    /// Resolution latency of an injected fault.
    delay: SimDuration,
    next_id: u64,
}

/// One cluster node.
pub struct IbNode {
    engine: NpfEngine,
    space: SpaceId,
    default_domain: DomainId,
    qps: HashMap<QpId, RcQp>,
    domains: HashMap<QpId, DomainId>,
    timers: HashMap<(QpId, QpTimer), EventToken>,
    completions: Vec<Completion>,
    synthetic: Option<SyntheticInjector>,
}

impl IbNode {
    /// The node's NPF engine.
    #[must_use]
    pub fn engine(&self) -> &NpfEngine {
        &self.engine
    }

    /// Mutable engine access.
    pub fn engine_mut(&mut self) -> &mut NpfEngine {
        &mut self.engine
    }

    /// The node's application address space.
    #[must_use]
    pub fn space(&self) -> SpaceId {
        self.space
    }

    /// The IOMMU domain of a QP's channel.
    #[must_use]
    pub fn domain_of(&self, qp: QpId) -> DomainId {
        self.domains[&qp]
    }

    /// The node's shared protection-domain-like channel (all QPs
    /// created with [`IbCluster::connect_shared`] use it).
    #[must_use]
    pub fn default_domain(&self) -> DomainId {
        self.default_domain
    }

    /// A QP's transport statistics.
    #[must_use]
    pub fn qp_stats(&self, qp: QpId) -> rdmasim::rc::RcStats {
        *self.qps[&qp].stats()
    }
}

/// Cluster events.
#[derive(Debug)]
enum IbEvent {
    Deliver {
        node: u32,
        pkt: RcPacket,
    },
    QpTimer {
        node: u32,
        qp: QpId,
        timer: QpTimer,
    },
    FaultDone {
        node: u32,
        fault: u64,
    },
    SynthDone {
        node: u32,
        fault: u64,
    },
    PostSend {
        node: u32,
        qp: QpId,
        wr_id: WrId,
        op: SendOp,
    },
    /// Clock sentinel (used to advance simulated time across CPU-side
    /// work that produces no packets).
    Nop,
    /// Periodic chaos heartbeat driving memory-pressure and IOTLB
    /// shootdown injections. Re-arms itself while work is pending.
    ChaosTick,
}

/// The gate wiring a QP's DMAs to a node's NPF engine.
struct EngineGate<'a> {
    engine: &'a mut NpfEngine,
    domain: DomainId,
    now: SimTime,
    /// Newly begun engine faults: `(id, ready_at)`.
    new_faults: Vec<(u64, SimTime)>,
    /// Synthetic injector, receive path only.
    synthetic: Option<&'a mut SyntheticInjector>,
    /// Synthetic faults injected by this call: `(id, resolve_at)`.
    new_synthetic: Vec<(u64, SimTime)>,
}

impl EngineGate<'_> {
    fn check(
        &mut self,
        addr: VirtAddr,
        len: u64,
        message: MessageRange,
        write: bool,
    ) -> GateDecision {
        if self.engine.dma_ready(self.domain, addr, len.max(1), write) {
            return GateDecision::Ok;
        }
        if let Some(id) = self
            .engine
            .pending_fault_covering(self.domain, addr, len.max(1))
        {
            return GateDecision::Fault { fault_id: id };
        }
        // Batched pre-fault: the driver parses the work request and
        // resolves the *whole* message buffer in one event (§4).
        match self.engine.begin_fault(
            self.now,
            self.domain,
            message.base,
            message.len.max(len).max(1),
            write,
            None,
        ) {
            Ok(rec) => {
                let (id, ready) = (rec.id, rec.ready_at);
                self.new_faults.push((id, ready));
                GateDecision::Fault { fault_id: id }
            }
            Err(e) => panic!("NPF resolution failed: {e}"),
        }
    }
}

impl DmaGate for EngineGate<'_> {
    fn gather(
        &mut self,
        _qp: QpId,
        addr: VirtAddr,
        len: u64,
        message: MessageRange,
    ) -> GateDecision {
        self.check(addr, len, message, false)
    }

    fn scatter(
        &mut self,
        _qp: QpId,
        addr: VirtAddr,
        len: u64,
        message: MessageRange,
    ) -> GateDecision {
        if let Some(injector) = self.synthetic.as_deref_mut() {
            if injector.generator.should_fault() {
                // Synthetic rNPF: the page is actually present; the NIC
                // behaves as if it were not, and "resolution" is a pure
                // delay.
                injector.next_id += 1;
                let id = u64::MAX - injector.next_id;
                let at = self.now + injector.delay;
                self.new_synthetic.push((id, at));
                return GateDecision::Fault { fault_id: id };
            }
        }
        self.check(addr, len, message, true)
    }
}

/// The 8-node cluster.
pub struct IbCluster {
    config: IbConfig,
    queue: EventQueue<IbEvent>,
    fabric: Fabric,
    nodes: Vec<IbNode>,
    next_qp: u32,
    /// Master fault injector (None when chaos is disabled). Owns the
    /// packet-fate stream; each node's NPF engine holds a fork.
    chaos: Option<ChaosEngine>,
    chaos_tick_armed: bool,
}

impl IbCluster {
    /// Builds the cluster, validating the configuration first.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails validation (e.g. zero
    /// nodes). Use [`crate::builder::ScenarioBuilder::infiniband`] to
    /// get the validation outcome as a typed
    /// [`crate::builder::ScenarioError`] instead.
    #[must_use]
    pub fn new(config: IbConfig) -> Self {
        match crate::builder::validate_ib(&config) {
            Ok(()) => Self::build(config),
            Err(e) => panic!("invalid IbConfig: {e}"),
        }
    }

    /// Constructs the cluster from an already-validated configuration.
    pub(crate) fn build(config: IbConfig) -> Self {
        // A new cluster starts a new timeline at t=0; tell the (possibly
        // process-global) invariant checker so monotonicity tracking
        // does not span testbeds.
        invariant::note_timeline_reset();
        let mut rng = SimRng::new(config.seed);
        let mut link = config
            .profile
            .apply_link(LinkConfig::datacenter(config.bandwidth));
        // Queues never tail-drop: IB's credit-based flow control means
        // the only losses are the profile's random loss (and chaos).
        link.queue_capacity = u64::MAX / 4;
        let mut fabric = Fabric::star(link, config.nodes, config.switch_latency, &mut rng);
        if config.profile.pfc {
            fabric.set_pfc(config.profile.pfc_xoff, config.profile.pfc_xon);
        }
        let mut nodes: Vec<IbNode> = (0..config.nodes)
            .map(|i| {
                let mm = MemoryManager::new(MemConfig {
                    total_memory: config.node_memory,
                    disk: config.disk,
                    tier: config.tier,
                    ..MemConfig::default()
                });
                let mut engine = NpfEngine::new(config.npf, mm, rng.fork(u64::from(i)));
                let space = engine.memory_mut().create_space();
                let default_domain = engine.create_channel(space);
                IbNode {
                    engine,
                    space,
                    default_domain,
                    qps: HashMap::new(),
                    domains: HashMap::new(),
                    timers: HashMap::new(),
                    completions: Vec::new(),
                    synthetic: None,
                }
            })
            .collect();
        let chaos = if config.chaos.enabled() {
            let mut master = ChaosEngine::new(config.chaos);
            for (i, node) in nodes.iter_mut().enumerate() {
                node.engine.set_chaos(master.fork(0x100 + i as u64));
            }
            Some(master)
        } else {
            None
        };
        let mut cluster = IbCluster {
            config,
            queue: EventQueue::new(),
            fabric,
            nodes,
            next_qp: 0,
            chaos,
            chaos_tick_armed: false,
        };
        cluster.arm_chaos_tick();
        cluster
    }

    /// The master fault injector, when chaos is enabled.
    #[must_use]
    pub fn chaos(&self) -> Option<&ChaosEngine> {
        self.chaos.as_ref()
    }

    /// Packets the chaos injector dropped on the otherwise lossless
    /// fabric.
    #[must_use]
    pub fn chaos_drops(&self) -> u64 {
        self.fabric.chaos_drops()
    }

    /// The switched fabric: drop/mark/PFC-pause tallies for the lossy
    /// experiments.
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Schedules the next chaos heartbeat, if chaos is on and none is
    /// pending.
    fn arm_chaos_tick(&mut self) {
        if self.chaos.is_some() && !self.chaos_tick_armed {
            self.chaos_tick_armed = true;
            self.queue
                .schedule_in(self.config.chaos.tick, IbEvent::ChaosTick);
        }
    }

    /// Applies one round of memory-pressure, IOTLB-shootdown, and PFC
    /// pause-storm chaos to every node.
    fn chaos_tick(&mut self, now: SimTime) {
        let Some(engine) = self.chaos.as_mut() else {
            return;
        };
        for (i, node) in self.nodes.iter_mut().enumerate() {
            match engine.memory_fate() {
                MemoryFate::Calm => {}
                MemoryFate::PressureBurst { pages } | MemoryFate::EvictionStorm { pages } => {
                    node.engine.chaos_evict(pages);
                }
            }
            match engine.iommu_fate() {
                IommuFate::None => {}
                IommuFate::ShootdownAll => {
                    node.engine.chaos_shootdown();
                }
            }
            match engine.pause_fate() {
                PauseFate::Calm => {}
                PauseFate::Storm { pause } => {
                    // A rogue peer sprays pause frames at this node's
                    // ingress: the switch downlink stalls, backing
                    // traffic up behind it.
                    self.fabric.pause_toward(NodeId(i as u32), now + pause);
                }
            }
        }
    }

    /// The cluster configuration.
    #[must_use]
    pub fn config(&self) -> &IbConfig {
        &self.config
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// A node.
    #[must_use]
    pub fn node(&self, n: u32) -> &IbNode {
        &self.nodes[n as usize]
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, n: u32) -> &mut IbNode {
        &mut self.nodes[n as usize]
    }

    /// Allocates an anonymous buffer region of `bytes` in node `n`'s
    /// space, returning its base address.
    pub fn alloc_buffers(&mut self, n: u32, bytes: ByteSize) -> VirtAddr {
        let node = &mut self.nodes[n as usize];
        let range = node
            .engine
            .memory_mut()
            .mmap(node.space, bytes, Backing::Anonymous)
            .expect("buffer mmap");
        range.start.base()
    }

    /// Connects nodes `a` and `b` with an RC QP pair, returning
    /// `(qp_at_a, qp_at_b)`. Each QP gets its own page-fault-capable
    /// IOMMU domain (its IOchannel).
    pub fn connect(&mut self, a: u32, b: u32) -> (QpId, QpId) {
        let qa = QpId(self.next_qp);
        let qb = QpId(self.next_qp + 1);
        self.next_qp += 2;
        {
            let node = &mut self.nodes[a as usize];
            let dom = node.engine.create_channel(node.space);
            node.qps
                .insert(qa, RcQp::new(self.config.rc, qa, qb, NodeId(b)));
            node.domains.insert(qa, dom);
        }
        {
            let node = &mut self.nodes[b as usize];
            let dom = node.engine.create_channel(node.space);
            node.qps
                .insert(qb, RcQp::new(self.config.rc, qb, qa, NodeId(a)));
            node.domains.insert(qb, dom);
        }
        (qa, qb)
    }

    /// Like [`IbCluster::connect`] but both QPs share their node's
    /// default domain (one protection domain per process, as MPI
    /// libraries do).
    pub fn connect_shared(&mut self, a: u32, b: u32) -> (QpId, QpId) {
        let qa = QpId(self.next_qp);
        let qb = QpId(self.next_qp + 1);
        self.next_qp += 2;
        {
            let node = &mut self.nodes[a as usize];
            let dom = node.default_domain;
            node.qps
                .insert(qa, RcQp::new(self.config.rc, qa, qb, NodeId(b)));
            node.domains.insert(qa, dom);
        }
        {
            let node = &mut self.nodes[b as usize];
            let dom = node.default_domain;
            node.qps
                .insert(qb, RcQp::new(self.config.rc, qb, qa, NodeId(a)));
            node.domains.insert(qb, dom);
        }
        (qa, qb)
    }

    /// Arms synthetic receive faults on node `n` (Figure 10 IB).
    pub fn set_synthetic_faults(&mut self, n: u32, frequency: f64, delay: SimDuration, seed: u64) {
        let mut generator = SyntheticFaults::new(frequency, SimRng::new(seed));
        generator.arm();
        self.nodes[n as usize].synthetic = Some(SyntheticInjector {
            generator,
            delay,
            next_id: 0,
        });
    }

    /// Posts a receive buffer on `(node, qp)`.
    pub fn post_recv(&mut self, node: u32, qp: QpId, wr_id: WrId, addr: VirtAddr, capacity: u64) {
        self.nodes[node as usize]
            .qps
            .get_mut(&qp)
            .expect("unknown qp")
            .post_recv(RecvWqe {
                wr_id,
                addr,
                capacity,
            });
    }

    /// Posts a send-queue operation immediately.
    pub fn post_send(&mut self, node: u32, qp: QpId, wr_id: WrId, op: SendOp) {
        let now = self.queue.now();
        self.arm_chaos_tick();
        self.drive_qp(now, node, qp, QpDrive::PostSend { wr_id, op });
    }

    /// Schedules a send-queue post after `delay` (modelling CPU-side
    /// preparation such as registration work).
    pub fn post_send_after(
        &mut self,
        delay: SimDuration,
        node: u32,
        qp: QpId,
        wr_id: WrId,
        op: SendOp,
    ) {
        self.arm_chaos_tick();
        self.queue.schedule_in(
            delay,
            IbEvent::PostSend {
                node,
                qp,
                wr_id,
                op,
            },
        );
    }

    /// Drains completions collected at `node`.
    pub fn drain_completions(&mut self, node: u32) -> Vec<Completion> {
        std::mem::take(&mut self.nodes[node as usize].completions)
    }

    /// Completions currently collected at `node` (without draining).
    #[must_use]
    pub fn completions(&self, node: u32) -> &[Completion] {
        &self.nodes[node as usize].completions
    }

    /// Advances the clock to `target`, processing any events due before
    /// it (models CPU-side work between rounds).
    pub fn run_idle_until(&mut self, target: SimTime) {
        self.queue.schedule_at(target, IbEvent::Nop);
        while let Some((_, ev)) = {
            // Pop only events at or before the target.
            match self.queue.next_time() {
                Some(t) if t <= target => self.queue.pop(),
                _ => None,
            }
        } {
            self.dispatch(ev);
        }
    }

    /// Runs until no events remain or `max_events` were processed.
    /// Returns the number of events handled.
    pub fn run_until_quiescent(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events {
            if !self.step() {
                break;
            }
            n += 1;
        }
        n
    }

    /// Processes one event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((_, event)) = self.queue.pop() else {
            return false;
        };
        self.dispatch(event);
        true
    }

    fn dispatch(&mut self, event: IbEvent) {
        let now = self.queue.now();
        // Advance the trace clock so instrumentation in substrates
        // without their own `now` stamps with the event time.
        trace::set_clock(now);
        // Global invariants are checked at every dispatch boundary.
        invariant::checkpoint(now);
        match event {
            IbEvent::Deliver { node, pkt } => {
                self.drive_qp(now, node, pkt.dst_qp, QpDrive::Packet(pkt));
            }
            IbEvent::QpTimer { node, qp, timer } => {
                self.nodes[node as usize].timers.remove(&(qp, timer));
                self.drive_qp(now, node, qp, QpDrive::Timer(timer));
            }
            IbEvent::FaultDone { node, fault } => {
                let n = &mut self.nodes[node as usize];
                if n.engine.pending_fault(fault).is_some() {
                    n.engine.complete_fault(fault);
                }
                // Wake every QP that might be paused on this fault.
                let qpids: Vec<QpId> = n.qps.keys().copied().collect();
                for qp in qpids {
                    self.drive_qp(now, node, qp, QpDrive::FaultResolved(fault));
                }
            }
            IbEvent::SynthDone { node, fault } => {
                let qpids: Vec<QpId> = self.nodes[node as usize].qps.keys().copied().collect();
                for qp in qpids {
                    self.drive_qp(now, node, qp, QpDrive::FaultResolved(fault));
                }
            }
            IbEvent::PostSend {
                node,
                qp,
                wr_id,
                op,
            } => {
                self.drive_qp(now, node, qp, QpDrive::PostSend { wr_id, op });
            }
            IbEvent::Nop => {}
            IbEvent::ChaosTick => {
                self.chaos_tick_armed = false;
                self.chaos_tick(now);
                // Keep ticking only while other work is pending, so
                // quiescence is still reachable.
                if !self.queue.is_empty() {
                    self.arm_chaos_tick();
                }
            }
        }
    }

    /// Drives one QP with one stimulus and performs its effects.
    fn drive_qp(&mut self, now: SimTime, node_idx: u32, qp: QpId, drive: QpDrive) {
        let node = &mut self.nodes[node_idx as usize];
        let Some(queue_pair) = node.qps.get_mut(&qp) else {
            return;
        };
        let domain = node.domains[&qp];
        let mut gate = EngineGate {
            engine: &mut node.engine,
            domain,
            now,
            new_faults: Vec::new(),
            synthetic: node.synthetic.as_mut(),
            new_synthetic: Vec::new(),
        };
        let outputs = match drive {
            QpDrive::Packet(pkt) => queue_pair.on_packet(now, pkt, &mut gate),
            QpDrive::Timer(t) => queue_pair.on_timer(now, t, &mut gate),
            QpDrive::PostSend { wr_id, op } => queue_pair.post_send(now, wr_id, op, &mut gate),
            QpDrive::FaultResolved(id) => queue_pair.fault_resolved(now, id, &mut gate),
        };
        let new_faults = std::mem::take(&mut gate.new_faults);
        let new_synth = std::mem::take(&mut gate.new_synthetic);
        drop(gate);

        // Speculative pre-faults issued alongside the demand faults
        // complete through the same FaultDone path (the handler
        // tolerates ids no QP is waiting on).
        let spawned = self.nodes[node_idx as usize]
            .engine
            .drain_spawned_prefetches();
        for (id, ready) in new_faults.into_iter().chain(spawned) {
            self.queue.schedule_at(
                ready,
                IbEvent::FaultDone {
                    node: node_idx,
                    fault: id,
                },
            );
        }
        for (id, at) in new_synth {
            self.queue.schedule_at(
                at,
                IbEvent::SynthDone {
                    node: node_idx,
                    fault: id,
                },
            );
        }

        for out in outputs {
            match out {
                QpOutput::Send { to, packet } => {
                    let size = packet.wire_size();
                    if let Some(chaos) = self.chaos.as_mut() {
                        match self
                            .fabric
                            .send_chaos(now, NodeId(node_idx), to, size, chaos)
                        {
                            ChaosSendOutcome::Dropped { injected } => {
                                // Only the injector or a lossy profile
                                // drops; transport-level retransmission
                                // recovers either way.
                                assert!(
                                    injected || self.config.profile.loss > 0.0,
                                    "lossless IB fabric dropped a packet"
                                );
                            }
                            ChaosSendOutcome::Delivered {
                                arrives_at,
                                corrupted,
                                duplicate_at,
                                ..
                            } => {
                                // A corrupted packet burns the wire but
                                // fails the receiver's CRC, so it is
                                // never delivered to the QP.
                                if !corrupted {
                                    self.queue.schedule_at(
                                        arrives_at,
                                        IbEvent::Deliver {
                                            node: to.0,
                                            pkt: packet,
                                        },
                                    );
                                }
                                if let Some(at) = duplicate_at {
                                    self.queue.schedule_at(
                                        at,
                                        IbEvent::Deliver {
                                            node: to.0,
                                            pkt: packet,
                                        },
                                    );
                                }
                            }
                        }
                    } else {
                        match self.fabric.send(now, NodeId(node_idx), to, size) {
                            SendOutcome::Delivered { arrives_at, .. } => {
                                self.queue.schedule_at(
                                    arrives_at,
                                    IbEvent::Deliver {
                                        node: to.0,
                                        pkt: packet,
                                    },
                                );
                            }
                            SendOutcome::Dropped => {
                                // Random loss from a lossy profile: the
                                // packet vanishes and the transport's
                                // timeout/NAK machinery recovers.
                                assert!(
                                    self.config.profile.loss > 0.0,
                                    "lossless IB fabric dropped a packet"
                                );
                            }
                        }
                    }
                }
                QpOutput::SetTimer(timer, at) => {
                    let node = &mut self.nodes[node_idx as usize];
                    if let Some(tok) = node.timers.remove(&(qp, timer)) {
                        self.queue.cancel(tok);
                    }
                    let tok = self.queue.schedule_at(
                        at,
                        IbEvent::QpTimer {
                            node: node_idx,
                            qp,
                            timer,
                        },
                    );
                    self.nodes[node_idx as usize]
                        .timers
                        .insert((qp, timer), tok);
                }
                QpOutput::CancelTimer(timer) => {
                    let node = &mut self.nodes[node_idx as usize];
                    if let Some(tok) = node.timers.remove(&(qp, timer)) {
                        self.queue.cancel(tok);
                    }
                }
                QpOutput::Complete(c) => {
                    self.nodes[node_idx as usize].completions.push(c);
                }
                QpOutput::RnrIssued { .. } => {
                    // The gate already started resolution (or it is
                    // synthetic); nothing further to do.
                }
            }
        }
    }
}

#[derive(Debug)]
enum QpDrive {
    Packet(RcPacket),
    Timer(QpTimer),
    PostSend { wr_id: WrId, op: SendOp },
    FaultResolved(u64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdmasim::types::{WcOpcode, WcStatus};

    fn two_node_cluster() -> IbCluster {
        IbCluster::new(IbConfig::default().with_nodes(2))
    }

    #[test]
    fn send_recv_over_cold_odp_buffers_completes() {
        let mut c = two_node_cluster();
        let (qa, qb) = c.connect(0, 1);
        let src = c.alloc_buffers(0, ByteSize::mib(8));
        let dst = c.alloc_buffers(1, ByteSize::mib(8));
        c.post_recv(1, qb, 100, dst, 8 << 20);
        c.post_send(
            0,
            qa,
            1,
            SendOp::Send {
                local: src,
                len: 1 << 20,
            },
        );
        c.run_until_quiescent(1_000_000);
        let ca = c.drain_completions(0);
        let cb = c.drain_completions(1);
        assert_eq!(ca.len(), 1, "send completion");
        assert_eq!(ca[0].status, WcStatus::Success);
        assert_eq!(cb.len(), 1, "recv completion");
        assert_eq!(cb[0].len, 1 << 20);
        // Cold buffers mean both sides faulted at least once.
        assert!(
            c.node(0).engine().counters().get("npf_events") >= 1,
            "send-side NPF"
        );
        assert!(c.node(1).engine().counters().get("npf_events") >= 1, "rNPF");
        assert!(
            c.node(1).qp_stats(qb).rnr_nacks_sent >= 1,
            "rNPF sent RNR NACK"
        );
    }

    #[test]
    fn warm_buffers_transfer_without_faults() {
        let mut c = two_node_cluster();
        let (qa, qb) = c.connect(0, 1);
        let src = c.alloc_buffers(0, ByteSize::mib(1));
        let dst = c.alloc_buffers(1, ByteSize::mib(1));
        // Pin both sides (the static-pinning baseline).
        let da = c.node(0).domain_of(qa);
        let db = c.node(1).domain_of(qb);
        let ra = memsim::types::PageRange::covering(src, 1 << 20);
        let rb = memsim::types::PageRange::covering(dst, 1 << 20);
        c.node_mut(0)
            .engine_mut()
            .pin_and_map(da, ra)
            .expect("pin src");
        c.node_mut(1)
            .engine_mut()
            .pin_and_map(db, rb)
            .expect("pin dst");
        c.post_recv(1, qb, 5, dst, 1 << 20);
        c.post_send(
            0,
            qa,
            6,
            SendOp::Send {
                local: src,
                len: 1 << 20,
            },
        );
        c.run_until_quiescent(1_000_000);
        assert_eq!(c.node(0).engine().counters().get("npf_events"), 0);
        assert_eq!(c.node(1).engine().counters().get("npf_events"), 0);
        assert_eq!(c.drain_completions(1).len(), 1);
    }

    #[test]
    fn pinned_transfer_is_faster_than_cold_odp() {
        // Same message, warm vs cold: the cold one pays fault latency.
        let mut warm = two_node_cluster();
        let (qa, qb) = warm.connect(0, 1);
        let src = warm.alloc_buffers(0, ByteSize::mib(1));
        let dst = warm.alloc_buffers(1, ByteSize::mib(1));
        let da = warm.node(0).domain_of(qa);
        let db = warm.node(1).domain_of(qb);
        warm.node_mut(0)
            .engine_mut()
            .pin_and_map(da, memsim::types::PageRange::covering(src, 1 << 20))
            .expect("pin");
        warm.node_mut(1)
            .engine_mut()
            .pin_and_map(db, memsim::types::PageRange::covering(dst, 1 << 20))
            .expect("pin");
        warm.post_recv(1, qb, 1, dst, 1 << 20);
        warm.post_send(
            0,
            qa,
            2,
            SendOp::Send {
                local: src,
                len: 1 << 20,
            },
        );
        warm.run_until_quiescent(1_000_000);
        let warm_done = warm.now();

        let mut cold = two_node_cluster();
        let (qa, qb) = cold.connect(0, 1);
        let src = cold.alloc_buffers(0, ByteSize::mib(1));
        let dst = cold.alloc_buffers(1, ByteSize::mib(1));
        cold.post_recv(1, qb, 1, dst, 1 << 20);
        cold.post_send(
            0,
            qa,
            2,
            SendOp::Send {
                local: src,
                len: 1 << 20,
            },
        );
        cold.run_until_quiescent(1_000_000);
        let cold_done = cold.now();
        assert!(
            cold_done > warm_done + SimDuration::from_micros(100),
            "cold {cold_done} vs warm {warm_done}"
        );
        assert_eq!(cold.drain_completions(1).len(), 1, "cold still completes");
    }

    #[test]
    fn rdma_write_and_read_complete() {
        let mut c = two_node_cluster();
        let (qa, _qb) = c.connect(0, 1);
        let local = c.alloc_buffers(0, ByteSize::mib(2));
        let remote = c.alloc_buffers(1, ByteSize::mib(2));
        c.post_send(
            0,
            qa,
            11,
            SendOp::Write {
                local,
                remote,
                len: 256 * 1024,
            },
        );
        c.run_until_quiescent(1_000_000);
        let comps = c.drain_completions(0);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].opcode, WcOpcode::Write);
        // Now read it back.
        c.post_send(
            0,
            qa,
            12,
            SendOp::Read {
                local: VirtAddr(local.0 + (1 << 20)),
                remote,
                len: 256 * 1024,
            },
        );
        c.run_until_quiescent(1_000_000);
        let comps = c.drain_completions(0);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].opcode, WcOpcode::Read);
        assert_eq!(comps[0].status, WcStatus::Success);
    }

    #[test]
    fn synthetic_faults_slow_but_do_not_stop_the_stream() {
        // Two identical streams; one receiver injects faults.
        let run = |freq: f64| -> SimTime {
            let mut c = two_node_cluster();
            let (qa, qb) = c.connect(0, 1);
            let src = c.alloc_buffers(0, ByteSize::mib(8));
            let dst = c.alloc_buffers(1, ByteSize::mib(8));
            // Warm both sides (the benchmark pre-faults, §6.4).
            let da = c.node(0).domain_of(qa);
            let db = c.node(1).domain_of(qb);
            c.node_mut(0)
                .engine_mut()
                .pin_and_map(da, memsim::types::PageRange::covering(src, 8 << 20))
                .expect("pin");
            c.node_mut(1)
                .engine_mut()
                .pin_and_map(db, memsim::types::PageRange::covering(dst, 8 << 20))
                .expect("pin");
            if freq > 0.0 {
                c.set_synthetic_faults(1, freq, SimDuration::from_micros(220), 42);
            }
            for i in 0..64 {
                c.post_recv(1, qb, 100 + i, dst, 8 << 20);
            }
            for i in 0..64 {
                c.post_send(
                    0,
                    qa,
                    i,
                    SendOp::Send {
                        local: src,
                        len: 64 * 1024,
                    },
                );
            }
            c.run_until_quiescent(10_000_000);
            assert_eq!(
                c.drain_completions(1).len(),
                64,
                "all messages delivered at freq {freq}"
            );
            c.now()
        };
        let clean = run(0.0);
        let faulty = run(1.0 / 64.0);
        assert!(
            faulty > clean,
            "faults must cost time: clean {clean}, faulty {faulty}"
        );
    }
}
