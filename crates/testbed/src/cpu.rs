//! A k-core CPU pool.
//!
//! Models the server's cores (the paper's Ethernet testbed has four) as
//! a set of next-free horizons: a work item starts on the earliest-free
//! core, no earlier than `now`, and runs for its duration. Contention
//! emerges as later start times.

use simcore::time::{SimDuration, SimTime};

/// A pool of identical cores.
#[derive(Debug, Clone)]
pub struct CpuPool {
    next_free: Vec<SimTime>,
    busy_total: SimDuration,
}

impl CpuPool {
    /// Creates a pool of `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics when `cores == 0`.
    #[must_use]
    pub fn new(cores: u32) -> Self {
        assert!(cores > 0, "a host needs at least one core");
        CpuPool {
            next_free: vec![SimTime::ZERO; cores as usize],
            busy_total: SimDuration::ZERO,
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.next_free.len()
    }

    /// Total CPU time consumed.
    #[must_use]
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Runs a work item of `duration` submitted at `now`; returns its
    /// completion time.
    pub fn run(&mut self, now: SimTime, duration: SimDuration) -> SimTime {
        let core = self
            .next_free
            .iter_mut()
            .min()
            .expect("pool has at least one core");
        let start = (*core).max(now);
        let end = start + duration;
        *core = end;
        self.busy_total += duration;
        end
    }

    /// Utilization over `[0, now]` in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.busy_total.as_secs_f64() / (now.as_secs_f64() * self.next_free.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_work_uses_all_cores() {
        let mut p = CpuPool::new(2);
        let d = SimDuration::from_micros(10);
        let a = p.run(SimTime::ZERO, d);
        let b = p.run(SimTime::ZERO, d);
        let c = p.run(SimTime::ZERO, d);
        assert_eq!(a, SimTime::from_micros(10));
        assert_eq!(b, SimTime::from_micros(10));
        assert_eq!(c, SimTime::from_micros(20), "third item queues");
    }

    #[test]
    fn idle_cores_start_at_now() {
        let mut p = CpuPool::new(1);
        p.run(SimTime::ZERO, SimDuration::from_micros(5));
        let end = p.run(SimTime::from_micros(100), SimDuration::from_micros(5));
        assert_eq!(end, SimTime::from_micros(105));
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let mut p = CpuPool::new(4);
        p.run(SimTime::ZERO, SimDuration::from_micros(100));
        let u = p.utilization(SimTime::from_micros(100));
        assert!((u - 0.25).abs() < 1e-9, "one of four cores busy: {u}");
    }
}
