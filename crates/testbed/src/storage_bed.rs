//! The storage experiment (§6.1 "Storage", Figure 8).
//!
//! A tgt-like iSER target (node 0) serves random reads from a 4 GB LUN
//! to an initiator (node 1) over RC RDMA writes. The target's
//! communication buffers are either statically pinned (the tgt
//! baseline: the whole chunk pool locked forever) or ODP-registered
//! (pages materialize on use). Whatever memory the buffers do not
//! occupy, the page cache uses — that competition is Figure 8(a).

use memsim::manager::{MemError, TierConfig};
use memsim::space::Backing;
use memsim::swap::DiskConfig;
use memsim::types::{PageRange, VirtAddr};
use npf_core::npf::NpfConfig;
use rdmasim::types::{QpId, SendOp, WcOpcode};
use simcore::time::{SimDuration, SimTime};
use simcore::units::{Bandwidth, ByteSize};
use workloads::storage::{FioClient, StorageConfig, StorageTarget};

use simcore::rng::SimRng;

use crate::ib::{IbCluster, IbConfig};

/// Configuration of one storage run.
#[derive(Debug, Clone, Copy)]
pub struct StorageBedConfig {
    /// Target host memory (the Figure 8(a) x-axis).
    pub target_memory: ByteSize,
    /// Memory the OS and daemon occupy before any buffers (pinned).
    pub reserved: ByteSize,
    /// Random-read block size (512 KB in Figure 8(a); 64 KB vs 512 KB
    /// in 8(b)).
    pub block_size: u64,
    /// Initiator sessions.
    pub sessions: u32,
    /// Outstanding requests per session.
    pub queue_depth: u32,
    /// Total reads to perform.
    pub total_ios: u64,
    /// `true` for ODP communication buffers, `false` for the pinned
    /// baseline.
    pub odp: bool,
    /// Free memory the pinned tgt needs besides its locked pool (heap,
    /// per-initiator structures, kernel watermarks). Calibrated so the
    /// pinned service "fails to load" below 5 GB, as §6.1 reports.
    pub pinned_headroom: ByteSize,
    /// Storage/tgt parameters.
    pub storage: StorageConfig,
    /// Disk model (the paper's "high-performance hard drive").
    pub disk: DiskConfig,
    /// Optional NVM backing tier in front of the swap disk.
    pub tier: Option<TierConfig>,
    /// NPF engine configuration (huge pages, prefetch, backend).
    pub npf: NpfConfig,
    /// Warm the page cache to steady state before measuring (fio runs
    /// for minutes; the measured window is steady state).
    pub warm_cache: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StorageBedConfig {
    fn default() -> Self {
        StorageBedConfig {
            target_memory: ByteSize::gib(6),
            reserved: ByteSize::mib(900),
            block_size: 512 * 1024,
            sessions: 1,
            queue_depth: 16,
            total_ios: 2000,
            odp: true,
            pinned_headroom: ByteSize::gib(3),
            storage: StorageConfig::default(),
            disk: DiskConfig::hard_drive(),
            tier: None,
            npf: NpfConfig::default(),
            warm_cache: false,
            seed: 1,
        }
    }
}

/// Result of one storage run.
#[derive(Debug, Clone, Copy)]
pub struct StorageBedResult {
    /// Read bandwidth in GB/s.
    pub bandwidth_gb_s: f64,
    /// Target process resident memory at the end (Figure 8(b)).
    pub resident: ByteSize,
    /// Target pinned memory at the end.
    pub pinned: ByteSize,
    /// Page-cache hit ratio.
    pub cache_hit_ratio: f64,
    /// NPF events at the target.
    pub npf_events: u64,
    /// Total simulated time.
    pub elapsed: SimDuration,
}

/// Runs the storage benchmark.
///
/// # Errors
///
/// Returns the pinning failure when the pinned configuration does not
/// fit in memory — the paper's "fails to load the tgt service" outcome
/// below 5 GB.
pub fn run_storage(config: StorageBedConfig) -> Result<StorageBedResult, MemError> {
    let mut cluster = IbCluster::new(
        IbConfig::default()
            .with_nodes(2)
            .with_node_memory(config.target_memory)
            .with_seed(config.seed)
            .with_npf(config.npf)
            .with_disk(config.disk)
            .with_tier(config.tier),
    );

    // OS + daemon baseline: pinned, unreclaimable.
    {
        let node = cluster.node_mut(0);
        let space = node.space();
        let range =
            node.engine_mut()
                .memory_mut()
                .mmap(space, config.reserved, Backing::Anonymous)?;
        node.engine_mut().memory_mut().pin_range(space, range)?;
    }

    // Communication chunk pool.
    let mut target = StorageTarget::new(config.storage, config.sessions);
    let pool_bytes = target.comm_pool_bytes();
    {
        let node = cluster.node_mut(0);
        let space = node.space();
        node.engine_mut().memory_mut().mmap_fixed(
            space,
            PageRange::new(config.storage.comm_base.vpn(), pool_bytes.pages()),
            Backing::Anonymous,
        )?;
    }
    let (q_target, _q_init) = cluster.connect_shared(0, 1);
    if !config.odp {
        // tgt baseline: the entire pool pinned up front. The daemon
        // needs headroom beyond the pool; without it the service fails
        // to load (the paper's <5 GB outcome).
        let free_after = config
            .target_memory
            .saturating_sub(config.reserved)
            .saturating_sub(pool_bytes);
        if free_after < config.pinned_headroom {
            return Err(MemError::OutOfMemory);
        }
        let domain = cluster.node(0).default_domain();
        cluster.node_mut(0).engine_mut().pin_and_map(
            domain,
            PageRange::new(config.storage.comm_base.vpn(), pool_bytes.pages()),
        )?;
    }

    // Initiator-side landing buffers: pinned (unmodified initiator).
    let init_buf = cluster.alloc_buffers(1, ByteSize::bytes_exact(config.block_size * 64));
    let init_domain = cluster.node(1).default_domain();
    cluster.node_mut(1).engine_mut().pin_and_map(
        init_domain,
        PageRange::covering(init_buf, config.block_size * 64),
    )?;

    if config.warm_cache {
        // Fill the cache to its steady-state content: one sequential
        // pass over the LUN (LRU keeps the tail up to capacity). Wall
        // time only; the simulated clock does not advance.
        let node = cluster.node_mut(0);
        let pages = config.storage.lun_size.bytes() / memsim::PAGE_SIZE;
        let chunk = 1024;
        let mut p = 0;
        while p < pages {
            let n = chunk.min(pages - p);
            let _ = node
                .engine_mut()
                .memory_mut()
                .read_file_block(config.storage.lun_file, p, n);
            p += n;
        }
    }

    let mut fio = FioClient::new(
        config.block_size,
        config.storage.lun_size,
        SimRng::new(config.seed ^ 0xf10),
    );

    // The single disk serializes.
    let mut disk_free = SimTime::ZERO;
    let mut chunk_of_wr: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut issued = 0u64;
    let mut completed = 0u64;
    let mut outstanding = 0u32;
    let start = cluster.now();
    let depth = config.queue_depth * config.sessions.max(1);

    let issue = |cluster: &mut IbCluster,
                 target: &mut StorageTarget,
                 fio: &mut FioClient,
                 disk_free: &mut SimTime,
                 chunk_of_wr: &mut std::collections::HashMap<u64, u64>,
                 issued: &mut u64| {
        let (offset, len) = fio.next_read();
        let session = (*issued % u64::from(config.sessions.max(1))) as u32;
        let plan = target.plan_read(session, offset, len);
        chunk_of_wr.insert(*issued, plan.chunk);
        let now = cluster.now();
        // Page-cache read (single disk serializes misses).
        let node = cluster.node_mut(0);
        let read = node
            .engine_mut()
            .memory_mut()
            .read_file_block(config.storage.lun_file, plan.first_page, plan.pages)
            .expect("LUN read");
        let mut delay = plan.cpu;
        if !read.hit {
            let io_start = (*disk_free).max(now);
            let io_end = io_start + read.cost;
            *disk_free = io_end;
            delay += io_end.saturating_since(now);
        }
        // Stage the payload into the communication chunk (CPU copy;
        // demand-allocates chunk pages under ODP).
        let space = node.space();
        let touch = node
            .engine_mut()
            .touch_range(space, plan.comm_buffer, plan.touch_len, true)
            .expect("comm buffer touch");
        delay += touch + node.engine_mut().config().cost.memcpy(plan.touch_len);
        // RDMA-write the block to the initiator.
        let remote = VirtAddr(init_buf.0 + (*issued % 64) * config.block_size);
        cluster.post_send_after(
            delay,
            0,
            q_target,
            *issued,
            SendOp::Write {
                local: plan.comm_buffer,
                remote,
                len: plan.touch_len,
            },
        );
        *issued += 1;
    };

    while completed < config.total_ios {
        while outstanding < depth && issued < config.total_ios {
            issue(
                &mut cluster,
                &mut target,
                &mut fio,
                &mut disk_free,
                &mut chunk_of_wr,
                &mut issued,
            );
            outstanding += 1;
        }
        // Wait for at least one write completion at the target.
        loop {
            let done = cluster
                .completions(0)
                .iter()
                .filter(|c| c.opcode == WcOpcode::Write)
                .count();
            if done > 0 {
                break;
            }
            assert!(cluster.step(), "storage bed deadlocked");
        }
        let comps = cluster.drain_completions(0);
        let mut n = 0u32;
        for c in &comps {
            if c.opcode == WcOpcode::Write {
                n += 1;
                if let Some(chunk) = chunk_of_wr.remove(&c.wr_id) {
                    target.release_chunk(chunk);
                }
            }
        }
        outstanding -= n;
        completed += u64::from(n);
    }

    let elapsed = cluster.now().saturating_since(start);
    let bytes = completed * config.block_size;
    let node = cluster.node(0);
    let space = node.space();
    Ok(StorageBedResult {
        bandwidth_gb_s: bytes as f64 / 1e9 / elapsed.as_secs_f64().max(1e-12),
        resident: node
            .engine()
            .memory()
            .resident_bytes(space)
            .unwrap_or(ByteSize::ZERO),
        pinned: node
            .engine()
            .memory()
            .pinned_bytes(space)
            .unwrap_or(ByteSize::ZERO),
        cache_hit_ratio: node.engine().memory().cache_hit_ratio(),
        npf_events: node.engine().counters().get("npf_events"),
        elapsed,
    })
}

/// The QP identifier type re-exported for callers inspecting stats.
pub type TargetQp = QpId;

/// Link rate helper for documentation parity with the paper's setup.
#[must_use]
pub fn paper_link_rate() -> Bandwidth {
    Bandwidth::gbps(56)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(memory_gib: u64, odp: bool) -> Result<StorageBedResult, MemError> {
        run_storage(StorageBedConfig {
            target_memory: ByteSize::gib(memory_gib),
            reserved: ByteSize::mib(900),
            total_ios: 2500,
            odp,
            pinned_headroom: ByteSize::ZERO,
            storage: StorageConfig {
                lun_size: ByteSize::mib(256),
                total_chunks: 64,
                ..StorageConfig::default()
            },
            ..StorageBedConfig::default()
        })
    }

    #[test]
    fn odp_runs_in_low_memory_where_pinning_fails() {
        // Pool: 8 chunks x 512 KB = 4 MiB — tiny; shrink memory so the
        // pinned baseline cannot start.
        let r = run_storage(StorageBedConfig {
            target_memory: ByteSize::gib(1),
            reserved: ByteSize::mib(900),
            total_ios: 50,
            odp: false,
            pinned_headroom: ByteSize::mib(256),
            storage: StorageConfig {
                lun_size: ByteSize::mib(256),
                total_chunks: 512,
                ..StorageConfig::default()
            },
            sessions: 4,
            ..StorageBedConfig::default()
        });
        // 4 sessions x 64 chunks x 512 KB = 128 MiB pinned on top of
        // 900 MiB reserved in a 1 GiB host leaves no headroom: fails.
        assert!(r.is_err(), "pinned pool must not fit");
        let r = run_storage(StorageBedConfig {
            target_memory: ByteSize::gib(1),
            reserved: ByteSize::mib(900),
            total_ios: 50,
            odp: true,
            pinned_headroom: ByteSize::mib(256),
            storage: StorageConfig {
                lun_size: ByteSize::mib(256),
                total_chunks: 512,
                ..StorageConfig::default()
            },
            sessions: 4,
            ..StorageBedConfig::default()
        });
        assert!(r.is_ok(), "ODP must run: {r:?}");
    }

    #[test]
    fn more_memory_means_more_bandwidth() {
        // 1 GiB host: ~124 MiB of cache for a 256 MiB LUN (~50% hits).
        // 2 GiB host: the whole LUN fits.
        let small = quick(1, true).expect("small run");
        let large = quick(2, true).expect("large run");
        assert!(
            large.bandwidth_gb_s > small.bandwidth_gb_s,
            "cache economics: {} vs {}",
            large.bandwidth_gb_s,
            small.bandwidth_gb_s
        );
        assert!(large.cache_hit_ratio > small.cache_hit_ratio);
    }

    #[test]
    fn odp_beats_pinned_at_equal_memory() {
        // The pinned pool steals page-cache memory; with 64 KB reads
        // into 512 KB chunks, ODP backs only the touched eighth of the
        // pool, leaving far more cache.
        let cfg = |odp| StorageBedConfig {
            target_memory: ByteSize::mib(512),
            reserved: ByteSize::mib(64),
            total_ios: 12_000,
            odp,
            pinned_headroom: ByteSize::ZERO,
            block_size: 64 * 1024,
            storage: StorageConfig {
                lun_size: ByteSize::mib(256),
                total_chunks: 512,
                ..StorageConfig::default()
            },
            sessions: 8,
            ..StorageBedConfig::default()
        };
        let pinned = run_storage(cfg(false)).expect("pinned run");
        let odp = run_storage(cfg(true)).expect("odp run");
        assert!(
            odp.bandwidth_gb_s > pinned.bandwidth_gb_s,
            "odp {} vs pinned {}",
            odp.bandwidth_gb_s,
            pinned.bandwidth_gb_s
        );
        assert!(odp.pinned < pinned.pinned);
    }

    #[test]
    fn small_blocks_leave_chunks_unbacked() {
        // 64 KB reads into 512 KB chunks: ODP backs only what is
        // touched.
        let small_blocks = run_storage(StorageBedConfig {
            block_size: 64 * 1024,
            total_ios: 300,
            odp: true,
            target_memory: ByteSize::gib(6),
            storage: StorageConfig {
                lun_size: ByteSize::mib(512),
                ..StorageConfig::default()
            },
            ..StorageBedConfig::default()
        })
        .expect("64k run");
        let large_blocks = run_storage(StorageBedConfig {
            block_size: 512 * 1024,
            total_ios: 300,
            odp: true,
            target_memory: ByteSize::gib(6),
            storage: StorageConfig {
                lun_size: ByteSize::mib(512),
                ..StorageConfig::default()
            },
            ..StorageBedConfig::default()
        })
        .expect("512k run");
        // Figure 8(b): memory usage with 64 KB blocks is far below the
        // 512 KB configuration. Compare comm-pool residency via pinned
        // == 0 and resident dominated by... the page cache is not in
        // `resident`, so resident reflects touched chunk pages.
        assert!(small_blocks.resident < large_blocks.resident);
    }
}
