//! The Ethernet testbed: memcached IOusers behind a direct-I/O NIC
//! (§5's running example, §6.1's memory experiments).
//!
//! Topology matches the paper: one client machine (unmodified Linux
//! TCP, memaslap load generators) connected back-to-back to one server
//! machine whose NIC is the 12 Gb/s NPF prototype. Each memcached
//! instance is an IOuser: a lightweight VM with its own address space,
//! lwIP user-level stack, SR-IOV IOchannel (receive ring + IOMMU
//! domain), steered by TCP port.
//!
//! The receive path is exact: packets DMA into IOuser ring buffers; a
//! non-present buffer is an rNPF handled per the configured
//! [`RxMode`] — pinned (never faults), drop (the Figure 4 strawman), or
//! the backup ring.

use simcore::fxhash::FxHashMap;
use std::collections::VecDeque;

use memsim::manager::{MemConfig, MemError, MemoryManager, TierConfig};
use memsim::space::Backing;
use memsim::swap::DiskConfig;
use memsim::types::{PageRange, SpaceId, VirtAddr};
use netsim::link::{Link, LinkConfig, SendOutcome};
use netsim::profile::FabricProfile;
use nicsim::interrupt::{InterruptDecision, InterruptModerator};
use nicsim::rx::{BackupPolicy, RingId, RxDescriptor, RxEngine, RxFaultMode, RxVerdict};
use nicsim::sriov::ChannelTable;
use npf_core::backup_driver::{BackupDriver, ResolveStep};
use npf_core::npf::{NpfConfig, NpfEngine};
use npf_core::{BackendKind, RX_BUFFER_BASE};
use simcore::chaos::{invariant, ChaosConfig, ChaosEngine, IommuFate, MemoryFate, PacketFate};
use simcore::event::{EventQueue, EventToken};
use simcore::journal::{self, CauseId};
use simcore::rng::SimRng;
use simcore::stats::{DurationHistogram, ThroughputMeter};
use simcore::time::{SimDuration, SimTime};
use simcore::trace;
use simcore::units::{Bandwidth, ByteSize};
use tcpsim::{ConnId, TcpConfig, TcpOutput, TcpSegment, TcpStack};
use workloads::memcached::{KvOp, Memaslap, Memcached, MemcachedConfig, TenantPopularity};

use crate::builder::ScenarioError;
use crate::cpu::CpuPool;

/// Receive-fault policy of the server NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxMode {
    /// Statically pin every IOuser's memory (the production baseline).
    Pin,
    /// Drop faulting packets (resolving the fault in the background).
    Drop,
    /// The paper's backup ring.
    Backup,
}

/// Testbed configuration.
///
/// Construct via [`EthConfig::default`] plus the `with_*` setters, or
/// through [`crate::builder::ScenarioBuilder::ethernet`] (which also
/// validates cross-field constraints). The struct is `#[non_exhaustive]`
/// so new knobs can be added without breaking downstream crates.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct EthConfig {
    /// Fault policy.
    pub mode: RxMode,
    /// memcached instances (IOusers / lightweight VMs).
    pub instances: u32,
    /// Concurrent closed-loop connections per instance.
    pub conns_per_instance: u32,
    /// RX ring entries per IOchannel.
    pub ring_entries: u64,
    /// Per-ring rNPF budget (`bm_size`).
    pub bm_size: u64,
    /// Backup ring capacity (packets).
    pub backup_capacity: u64,
    /// Server physical memory.
    pub host_memory: ByteSize,
    /// Secondary-storage model of the server (swap-in cost of a major
    /// re-fault).
    pub disk: DiskConfig,
    /// Per-instance memcached configuration (its `max_bytes` is the
    /// VM's memory allocation).
    pub memcached: MemcachedConfig,
    /// Keys in each instance's working set.
    pub working_set_keys: u64,
    /// Optional cgroup limit shared by *all* instances (Figure 7).
    pub cgroup_limit: Option<ByteSize>,
    /// Link rate (12 Gb/s: the duplication prototype's effective rate).
    pub bandwidth: Bandwidth,
    /// Interrupt moderation holdoff.
    pub interrupt_holdoff: SimDuration,
    /// Server cores.
    pub cores: u32,
    /// Pre-fault the receive rings at startup (used by the what-if
    /// stream runs; Figure 4 wants them cold).
    pub prefault_rings: bool,
    /// Pre-populate each instance's cache with its working set
    /// (memaslap's warmup phase); steady-state experiments want this.
    pub preload: bool,
    /// §3's pre-faulting optimization: on an rNPF, resolve this many
    /// *subsequent* ring buffers in the same fault event (0 disables).
    /// Helps cold sequences; the paper notes it is not a complete
    /// solution on its own.
    pub prefault_window: u64,
    /// RNG seed.
    pub seed: u64,
    /// Fault injection (disabled by default; a disabled config draws
    /// nothing from any RNG, so traces stay byte-identical).
    pub chaos: ChaosConfig,
    /// NPF engine configuration (cost model, per-channel concurrency,
    /// cross-channel fault arbiter).
    pub npf: NpfConfig,
    /// Optional NVM backing tier in front of the swap disk (cold dirty
    /// pages demote there first; re-faults promote them back cheaply).
    pub tier: Option<TierConfig>,
    /// Per-tenant backup-ring quota: `Some(q)` partitions the shared
    /// backup ring so no IOchannel holds more than `q` entries at once;
    /// `None` keeps the ring fully shared (first-come first-served).
    pub backup_quota: Option<u64>,
    /// Zipf exponent of tenant popularity: `Some(s)` skews the client's
    /// connection allocation so low-numbered instances receive more
    /// load; `None` spreads connections uniformly.
    pub tenant_skew: Option<f64>,
    /// Fabric profile (loss regime / ECN marking). The Ethernet testbed
    /// models a flow-controlled datacenter edge, so the default is
    /// lossless; PFC thresholds are ignored on this point-to-point link.
    pub profile: FabricProfile,
}

impl Default for EthConfig {
    fn default() -> Self {
        EthConfig {
            mode: RxMode::Backup,
            instances: 1,
            conns_per_instance: 16,
            ring_entries: 64,
            bm_size: 128,
            backup_capacity: 512,
            host_memory: ByteSize::gib(8),
            disk: DiskConfig::hard_drive(),
            memcached: MemcachedConfig::default(),
            working_set_keys: 100_000,
            cgroup_limit: None,
            bandwidth: Bandwidth::gbps(12),
            // Calibrated: NAPI-style moderation dominating the
            // client-visible RTT (~85 us), matching the paper's
            // per-instance throughput.
            interrupt_holdoff: SimDuration::from_micros(85),
            cores: 4,
            prefault_rings: false,
            preload: true,
            prefault_window: 0,
            seed: 1,
            chaos: ChaosConfig::disabled(),
            npf: NpfConfig::default(),
            tier: None,
            backup_quota: None,
            tenant_skew: None,
            profile: FabricProfile::default(),
        }
    }
}

impl EthConfig {
    /// Sets the receive-fault policy.
    #[must_use]
    pub fn with_mode(mut self, mode: RxMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the number of memcached instances (IOusers).
    #[must_use]
    pub fn with_instances(mut self, instances: u32) -> Self {
        self.instances = instances;
        self
    }

    /// Sets the closed-loop connections per instance.
    #[must_use]
    pub fn with_conns_per_instance(mut self, conns: u32) -> Self {
        self.conns_per_instance = conns;
        self
    }

    /// Sets the RX ring entries per IOchannel.
    #[must_use]
    pub fn with_ring_entries(mut self, entries: u64) -> Self {
        self.ring_entries = entries;
        self
    }

    /// Sets the per-ring rNPF budget (`bm_size`).
    #[must_use]
    pub fn with_bm_size(mut self, bm_size: u64) -> Self {
        self.bm_size = bm_size;
        self
    }

    /// Sets the backup ring capacity (packets).
    #[must_use]
    pub fn with_backup_capacity(mut self, capacity: u64) -> Self {
        self.backup_capacity = capacity;
        self
    }

    /// Sets (or clears) the per-tenant backup-ring quota.
    #[must_use]
    pub fn with_backup_quota(mut self, quota: Option<u64>) -> Self {
        self.backup_quota = quota;
        self
    }

    /// Sets the server's physical memory.
    #[must_use]
    pub fn with_host_memory(mut self, memory: ByteSize) -> Self {
        self.host_memory = memory;
        self
    }

    /// Sets the secondary-storage model.
    #[must_use]
    pub fn with_disk(mut self, disk: DiskConfig) -> Self {
        self.disk = disk;
        self
    }

    /// Sets the per-instance memcached configuration.
    #[must_use]
    pub fn with_memcached(mut self, memcached: MemcachedConfig) -> Self {
        self.memcached = memcached;
        self
    }

    /// Sets the working-set size in keys.
    #[must_use]
    pub fn with_working_set_keys(mut self, keys: u64) -> Self {
        self.working_set_keys = keys;
        self
    }

    /// Sets (or clears) the shared cgroup limit.
    #[must_use]
    pub fn with_cgroup_limit(mut self, limit: Option<ByteSize>) -> Self {
        self.cgroup_limit = limit;
        self
    }

    /// Sets the link rate.
    #[must_use]
    pub fn with_bandwidth(mut self, bandwidth: Bandwidth) -> Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Sets the interrupt moderation holdoff.
    #[must_use]
    pub fn with_interrupt_holdoff(mut self, holdoff: SimDuration) -> Self {
        self.interrupt_holdoff = holdoff;
        self
    }

    /// Sets the server core count.
    #[must_use]
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = cores;
        self
    }

    /// Pre-faults the receive rings at startup.
    #[must_use]
    pub fn with_prefault_rings(mut self, prefault: bool) -> Self {
        self.prefault_rings = prefault;
        self
    }

    /// Pre-populates each instance's cache with its working set.
    #[must_use]
    pub fn with_preload(mut self, preload: bool) -> Self {
        self.preload = preload;
        self
    }

    /// Sets §3's pre-faulting window (0 disables).
    #[must_use]
    pub fn with_prefault_window(mut self, window: u64) -> Self {
        self.prefault_window = window;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fault-injection configuration.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }

    /// Sets the NPF engine configuration.
    #[must_use]
    pub fn with_npf(mut self, npf: NpfConfig) -> Self {
        self.npf = npf;
        self
    }

    /// Sets (or clears) the NVM backing tier.
    #[must_use]
    pub fn with_tier(mut self, tier: Option<TierConfig>) -> Self {
        self.tier = tier;
        self
    }

    /// Sets (or clears) the Zipf tenant-popularity exponent.
    #[must_use]
    pub fn with_tenant_skew(mut self, skew: Option<f64>) -> Self {
        self.tenant_skew = skew;
        self
    }

    /// Sets the fabric profile (loss regime / ECN marking).
    #[must_use]
    pub fn with_profile(mut self, profile: FabricProfile) -> Self {
        self.profile = profile;
        self
    }
}

/// Events of the Ethernet testbed.
#[derive(Debug)]
enum EthEvent {
    ToServer(TcpSegment),
    ToClient(TcpSegment),
    ClientTimer(ConnId),
    ServerTimer(u32, ConnId),
    IoUserInterrupt(u32),
    BackupInterrupt,
    ResolverStep(RingId),
    FaultDone(u64),
    OpDone {
        instance: u32,
        conn: ConnId,
        response_bytes: u64,
        hit: bool,
    },
    Sample,
    /// Periodic chaos heartbeat driving memory-pressure and IOTLB
    /// shootdown injections. Re-arms itself while work is pending.
    ChaosTick,
}

/// One memcached IOuser instance.
struct Instance {
    space: SpaceId,
    domain: iommu::DomainId,
    ring: RingId,
    stack: TcpStack,
    app: Memcached,
    rx_moderator: InterruptModerator,
    timers: FxHashMap<ConnId, EventToken>,
    /// Oracle framing: per-connection queue of `(request_bytes, op)` the
    /// client has written (stands in for protocol parsing).
    req_oracle: FxHashMap<ConnId, VecDeque<(u64, KvOp)>>,
    /// Descriptors posted so far (absolute).
    posted: u64,
}

/// Per-connection client state.
struct ClientConn {
    instance: u32,
    alive: bool,
}

/// The client machine.
struct Client {
    stack: TcpStack,
    timers: FxHashMap<ConnId, EventToken>,
    conns: FxHashMap<ConnId, ClientConn>,
    /// Oracle framing: per-connection queue of `(response_bytes, hit)`.
    resp_oracle: FxHashMap<ConnId, VecDeque<(u64, bool)>>,
    /// Issue timestamps of in-flight requests, per connection (closed
    /// loop: at most one outstanding, but a queue keeps it robust).
    issue_times: FxHashMap<ConnId, VecDeque<SimTime>>,
    generators: Vec<Memaslap>,
}

/// Per-instance measurements.
#[derive(Debug, Default, Clone)]
pub struct InstanceMetrics {
    /// Completed operations per second over time.
    pub ops: ThroughputMeter,
    /// GET hits per second over time (Figure 7's metric).
    pub hits: ThroughputMeter,
    /// Connections that failed (TCP gave up).
    pub failed_conns: u32,
    /// Client-observed request latency (issue to response).
    pub latency: DurationHistogram,
    /// rNPF events this instance's channel raised.
    pub faults: u64,
    /// Packets the NIC dropped on this instance's ring (fault-policy
    /// drops, including backup-quota rejections).
    pub drops: u64,
}

/// Per-tenant rollup for the multi-tenant scale-out experiments.
#[derive(Debug, Clone, Default)]
pub struct TenantReport {
    /// Closed-loop connections this tenant was allocated.
    pub conns: u32,
    /// Completed operations.
    pub ops: u64,
    /// GET hits.
    pub hits: u64,
    /// rNPF events raised by this tenant's channel.
    pub faults: u64,
    /// Packets dropped on this tenant's ring.
    pub drops: u64,
    /// Backup-ring entries this tenant currently holds.
    pub backup_occupancy: u64,
    /// High-water mark of backup-ring entries held.
    pub backup_hwm: u64,
    /// Faults granted by the cross-channel arbiter.
    pub arb_grants: u64,
    /// Faults the arbiter queued behind a busy slot pool.
    pub arb_queued: u64,
    /// Worst arbiter queueing delay.
    pub arb_max_wait: SimDuration,
    /// Median request latency.
    pub p50: SimDuration,
    /// Tail request latency.
    pub p99: SimDuration,
    /// Extreme-tail request latency.
    pub p999: SimDuration,
    /// Worst single request latency.
    pub max: SimDuration,
}

/// The Ethernet testbed.
pub struct EthTestbed {
    config: EthConfig,
    queue: EventQueue<EthEvent>,
    engine: NpfEngine,
    rx: RxEngine<TcpSegment>,
    driver: BackupDriver<TcpSegment>,
    channels: ChannelTable,
    instances: Vec<Instance>,
    client: Client,
    metrics: Vec<InstanceMetrics>,
    link_c2s: Link,
    link_s2c: Link,
    cpu: CpuPool,
    backup_moderator: InterruptModerator,
    sample_every: SimDuration,
    sampling: bool,
    /// Master fault injector (None when chaos is disabled). Owns the
    /// packet and interrupt fate streams; the NPF engine holds a fork.
    chaos: Option<ChaosEngine>,
    chaos_tick_armed: bool,
    /// Connections allocated per instance (skewed under
    /// `tenant_skew`, uniform otherwise).
    conn_alloc: Vec<u32>,
    /// Monotonic packet sequence for journal provenance; only advanced
    /// while a journal recorder is installed.
    packet_seq: u64,
}

impl EthTestbed {
    /// Builds the testbed, validating the configuration first. This is
    /// shorthand for [`crate::builder::ScenarioBuilder::ethernet`] with
    /// the configuration pre-filled.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] when the configuration fails
    /// cross-field validation, or — under [`RxMode::Pin`] — when the
    /// host cannot pin every instance's memory (wrapped as
    /// [`ScenarioError::Mem`]; this is exactly the Table 5 "N/A"
    /// outcome).
    pub fn new(config: EthConfig) -> Result<Self, ScenarioError> {
        crate::builder::validate_eth(&config)?;
        Self::build(config).map_err(ScenarioError::from)
    }

    /// Constructs the testbed from an already-validated configuration.
    pub(crate) fn build(config: EthConfig) -> Result<Self, MemError> {
        // A new testbed starts a new timeline at t=0; tell the (possibly
        // process-global) invariant checker so monotonicity tracking
        // does not span testbeds.
        invariant::note_timeline_reset();
        let mut rng = SimRng::new(config.seed);
        let mm = MemoryManager::new(MemConfig {
            total_memory: config.host_memory,
            disk: config.disk,
            tier: config.tier,
            ..MemConfig::default()
        });
        let mut engine = NpfEngine::new(config.npf, mm, rng.fork(1));
        let chaos = if config.chaos.enabled() {
            let mut master = ChaosEngine::new(config.chaos);
            engine.set_chaos(master.fork(0x200));
            Some(master)
        } else {
            None
        };
        let fault_mode = match config.mode {
            RxMode::Backup => RxFaultMode::BackupRing {
                capacity: config.backup_capacity,
            },
            _ => RxFaultMode::Drop,
        };
        let mut rx = RxEngine::new(fault_mode);
        if let Some(quota) = config.backup_quota {
            rx.set_backup_policy(BackupPolicy::Partitioned { quota });
        }
        let mut driver = BackupDriver::new();
        let mut channels = ChannelTable::new();

        let cgroup = config
            .cgroup_limit
            .map(|limit| engine.memory_mut().create_cgroup(limit));

        let mut instances = Vec::new();
        for i in 0..config.instances {
            let space = engine.memory_mut().create_space();
            if let Some(g) = cgroup {
                engine.memory_mut().attach_to_cgroup(space, g);
            }
            // RX buffer array: one page per ring slot at the well-known
            // base.
            let rx_range = PageRange::new(VirtAddr(RX_BUFFER_BASE).vpn(), config.ring_entries);
            engine
                .memory_mut()
                .mmap_fixed(space, rx_range, Backing::Anonymous)?;
            // Item slab: the VM's memory allocation.
            let app = Memcached::new(config.memcached);
            let slab_pages = app.slab_bytes().pages();
            engine.memory_mut().mmap_fixed(
                space,
                PageRange::new(config.memcached.slab_base.vpn(), slab_pages.max(1)),
                Backing::Anonymous,
            )?;

            let domain = engine.create_channel(space);
            let ring = RingId(i);
            rx.create_ring(ring, config.ring_entries, config.bm_size);
            driver.bind_ring(ring, domain, config.ring_entries);
            let ch = channels.create(space, domain, ring);
            channels.steer_port(11211 + i as u16, ch);

            if config.mode == RxMode::Pin {
                // Static pinning: the IOprovider pins the entire IOuser
                // address space (RX buffers and slab).
                engine.pin_and_map(domain, rx_range)?;
                engine.pin_and_map(
                    domain,
                    PageRange::new(config.memcached.slab_base.vpn(), slab_pages.max(1)),
                )?;
            } else if config.prefault_rings {
                // Warm the ring: touch and map each buffer page.
                for vpn in rx_range.iter() {
                    engine.touch(space, vpn, true)?;
                    let frame = engine
                        .memory()
                        .space(space)?
                        .frame_of(vpn)
                        .expect("just touched");
                    engine.iommu_mut().map(domain, vpn, frame, true);
                }
            }

            let mut app = app;
            if config.preload {
                app.reserve_keys(config.working_set_keys);
                // memaslap warmup: populate the working set so GETs hit
                // from the start (steady state).
                for key in 0..config.working_set_keys {
                    let outcome = app.process(KvOp::Set { key });
                    if let Some((addr, len, write)) = outcome.touch {
                        let _ = engine.touch_range(space, addr, len, write);
                    }
                }
            }
            let mut stack = TcpStack::new();
            stack.listen(11211 + i as u16, TcpConfig::lwip());
            let mut inst = Instance {
                space,
                domain,
                ring,
                stack,
                app,
                rx_moderator: InterruptModerator::new(config.interrupt_holdoff),
                timers: FxHashMap::default(),
                req_oracle: FxHashMap::default(),
                posted: 0,
            };
            // IOuser posts its whole ring at startup.
            for _ in 0..config.ring_entries {
                Self::post_one(&mut rx, &mut inst, config.ring_entries);
            }
            instances.push(inst);
        }

        let generators = (0..config.instances)
            .map(|i| {
                Memaslap::new(
                    config.working_set_keys,
                    config.memcached.value_size,
                    rng.fork(100 + u64::from(i)),
                )
            })
            .collect();

        let popularity = match config.tenant_skew {
            Some(s) => TenantPopularity::zipf(config.instances, s),
            None => TenantPopularity::uniform(config.instances),
        };
        let conn_alloc = popularity.allocate(config.instances * config.conns_per_instance);

        let link_cfg = config.profile.apply_link(LinkConfig {
            bandwidth: config.bandwidth,
            propagation: SimDuration::from_micros(1),
            // Flow control enabled (§6): queues absorb bursts instead of
            // dropping.
            queue_capacity: 8 << 20,
            ecn_threshold: None,
            loss_probability: 0.0,
        });
        let metrics = vec![InstanceMetrics::default(); config.instances as usize];

        let mut bed = EthTestbed {
            queue: EventQueue::new(),
            engine,
            rx,
            driver,
            channels,
            instances,
            client: Client {
                stack: TcpStack::new(),
                timers: FxHashMap::default(),
                conns: FxHashMap::default(),
                resp_oracle: FxHashMap::default(),
                issue_times: FxHashMap::default(),
                generators,
            },
            metrics,
            link_c2s: Link::new(link_cfg, rng.fork(7)),
            link_s2c: Link::new(link_cfg, rng.fork(8)),
            cpu: CpuPool::new(config.cores),
            backup_moderator: InterruptModerator::new(config.interrupt_holdoff),
            sample_every: SimDuration::from_millis(250),
            sampling: false,
            chaos,
            chaos_tick_armed: false,
            conn_alloc,
            packet_seq: 0,
            config,
        };
        bed.open_connections();
        bed.arm_chaos_tick();
        Ok(bed)
    }

    /// The master fault injector, when chaos is enabled.
    #[must_use]
    pub fn chaos(&self) -> Option<&ChaosEngine> {
        self.chaos.as_ref()
    }

    /// `(lost, delayed)` interrupt injections across every moderator.
    #[must_use]
    pub fn irq_chaos_counts(&self) -> (u64, u64) {
        let mut lost = self.backup_moderator.chaos_lost();
        let mut delayed = self.backup_moderator.chaos_delayed();
        for inst in &self.instances {
            lost += inst.rx_moderator.chaos_lost();
            delayed += inst.rx_moderator.chaos_delayed();
        }
        (lost, delayed)
    }

    /// Schedules the next chaos heartbeat, if chaos is on and none is
    /// pending.
    fn arm_chaos_tick(&mut self) {
        if self.chaos.is_some() && !self.chaos_tick_armed {
            self.chaos_tick_armed = true;
            self.queue
                .schedule_in(self.config.chaos.tick, EthEvent::ChaosTick);
        }
    }

    /// Applies one round of memory-pressure and IOTLB-shootdown chaos
    /// to the server.
    fn chaos_tick(&mut self) {
        let Some(engine) = self.chaos.as_mut() else {
            return;
        };
        match engine.memory_fate() {
            MemoryFate::Calm => {}
            MemoryFate::PressureBurst { pages } | MemoryFate::EvictionStorm { pages } => {
                self.engine.chaos_evict(pages);
            }
        }
        match engine.iommu_fate() {
            IommuFate::None => {}
            IommuFate::ShootdownAll => {
                self.engine.chaos_shootdown();
            }
        }
    }

    /// Sends one segment over a link, applying the chaos packet fate.
    /// `to_server` selects the client→server link.
    fn link_send(&mut self, now: SimTime, seg: TcpSegment, to_server: bool) {
        let wire = seg.wire_size();
        let fate = self
            .chaos
            .as_mut()
            .map_or(PacketFate::Deliver, ChaosEngine::packet_fate);
        if fate == PacketFate::Drop {
            // Injected loss: TCP retransmission recovers.
            return;
        }
        let link = if to_server {
            &mut self.link_c2s
        } else {
            &mut self.link_s2c
        };
        let event = |seg| {
            if to_server {
                EthEvent::ToServer(seg)
            } else {
                EthEvent::ToClient(seg)
            }
        };
        match link.send(now, wire) {
            SendOutcome::Delivered { arrives_at, .. } => match fate {
                PacketFate::Deliver => {
                    self.queue.schedule_at(arrives_at, event(seg));
                }
                // Corruption burns the wire but fails the CRC; the
                // stack never sees the segment.
                PacketFate::Corrupt => {}
                PacketFate::Duplicate { extra } => {
                    self.queue.schedule_at(arrives_at, event(seg));
                    self.queue.schedule_at(arrives_at + extra, event(seg));
                }
                PacketFate::Reorder { extra } => {
                    self.queue.schedule_at(arrives_at + extra, event(seg));
                }
                PacketFate::Drop => unreachable!("drop handled above"),
            },
            SendOutcome::Dropped => {}
        }
    }

    fn post_one(rx: &mut RxEngine<TcpSegment>, inst: &mut Instance, ring_entries: u64) -> bool {
        let addr = VirtAddr(RX_BUFFER_BASE + (inst.posted % ring_entries) * memsim::PAGE_SIZE);
        inst.posted += 1;
        rx.post_descriptor(
            inst.ring,
            RxDescriptor {
                addr,
                capacity: memsim::PAGE_SIZE,
            },
        )
    }

    fn open_connections(&mut self) {
        let now = self.queue.now();
        let mut next_local: u32 = 20000;
        for i in 0..self.config.instances {
            for _ in 0..self.conn_alloc[i as usize] {
                let local = u16::try_from(next_local).expect("validated port space");
                next_local += 1;
                let remote = 11211 + i as u16;
                let (cid, outs) = self
                    .client
                    .stack
                    .connect(now, local, remote, TcpConfig::linux());
                self.client.conns.insert(
                    cid,
                    ClientConn {
                        instance: i,
                        alive: true,
                    },
                );
                self.handle_client_outputs(now, cid, outs);
            }
        }
    }

    /// The testbed's configuration.
    #[must_use]
    pub fn config(&self) -> &EthConfig {
        &self.config
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Timestamp of the next pending event, if any (the shard executor
    /// uses this to compute epoch horizons).
    #[must_use]
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.next_time()
    }

    /// Lifetime event-queue counters:
    /// `(scheduled, popped, cancelled, pending)`.
    #[must_use]
    pub fn queue_stats(&self) -> (u64, u64, u64, usize) {
        (
            self.queue.scheduled_total(),
            self.queue.popped_total(),
            self.queue.cancelled_total(),
            self.queue.len(),
        )
    }

    /// Per-instance metrics.
    #[must_use]
    pub fn metrics(&self) -> &[InstanceMetrics] {
        &self.metrics
    }

    /// The NPF engine (for counters and memory state).
    #[must_use]
    pub fn engine(&self) -> &NpfEngine {
        &self.engine
    }

    /// The NIC receive engine counters.
    #[must_use]
    pub fn rx_counters(&self) -> &simcore::stats::Counters {
        self.rx.counters()
    }

    /// Connections allocated to instance `i` (skewed under
    /// `tenant_skew`).
    #[must_use]
    pub fn conns_of(&self, i: u32) -> u32 {
        self.conn_alloc[i as usize]
    }

    /// Per-tenant rollup: throughput, faults, drops, backup-ring
    /// occupancy, arbiter queueing, and latency percentiles.
    pub fn tenant_report(&mut self, i: u32) -> TenantReport {
        let idx = i as usize;
        let ring = self.instances[idx].ring;
        let domain = self.instances[idx].domain;
        let arb = self.engine.arbiter().stats(domain);
        let m = &mut self.metrics[idx];
        TenantReport {
            conns: self.conn_alloc[idx],
            ops: m.ops.total(),
            hits: m.hits.total(),
            faults: m.faults,
            drops: m.drops,
            backup_occupancy: self.rx.backup_occupancy(ring),
            backup_hwm: self.rx.backup_hwm(ring),
            arb_grants: arb.grants,
            arb_queued: arb.queued,
            arb_max_wait: arb.max_wait,
            p50: m.latency.percentile(0.50),
            p99: m.latency.percentile(0.99),
            p999: m.latency.percentile(0.999),
            max: m.latency.max(),
        }
    }

    /// Emits per-tenant gauges into the metrics registry (no-op unless
    /// metrics recording is enabled).
    fn emit_tenant_metrics(&self) {
        trace::metrics(|m| {
            for (i, inst) in self.instances.iter().enumerate() {
                let ops = m.metric_id(&format!("tenant{i}.ops"));
                m.gauge_set_id(ops, self.metrics[i].ops.total() as f64);
                let faults = m.metric_id(&format!("tenant{i}.faults"));
                m.gauge_set_id(faults, self.metrics[i].faults as f64);
                let drops = m.metric_id(&format!("tenant{i}.drops"));
                m.gauge_set_id(drops, self.metrics[i].drops as f64);
                let occ = m.metric_id(&format!("tenant{i}.backup_occupancy"));
                m.gauge_set_id(occ, self.rx.backup_occupancy(inst.ring) as f64);
            }
        });
    }

    /// Total operations completed across all instances.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.metrics.iter().map(|m| m.ops.total()).sum()
    }

    /// Total failed connections.
    #[must_use]
    pub fn total_failed_conns(&self) -> u32 {
        self.metrics.iter().map(|m| m.failed_conns).sum()
    }

    /// Resident bytes of instance `i`'s space.
    #[must_use]
    pub fn resident_bytes(&self, i: u32) -> ByteSize {
        self.engine
            .memory()
            .resident_bytes(self.instances[i as usize].space)
            .unwrap_or(ByteSize::ZERO)
    }

    /// Sets instance `i`'s weight in the cross-channel fault arbiter
    /// (only meaningful under [`npf_core::ArbiterPolicy::WeightedFair`]).
    pub fn set_tenant_weight(&mut self, i: u32, weight: u32) {
        let domain = self.instances[i as usize].domain;
        self.engine.set_channel_weight(domain, weight);
    }

    /// Changes instance `i`'s working set (Figure 7).
    pub fn resize_working_set(&mut self, i: u32, keys: u64) {
        self.client.generators[i as usize].resize_working_set(keys);
    }

    /// Populates `keys` items into instance `i`'s cache and touches
    /// their memory (a manual warmup for experiments with per-instance
    /// initial sets; pair with `preload: false`).
    pub fn preload_instance(&mut self, i: u32, keys: u64) {
        let inst = &mut self.instances[i as usize];
        let space = inst.space;
        for key in 0..keys {
            let outcome = inst.app.process(KvOp::Set { key });
            if let Some((addr, len, write)) = outcome.touch {
                let _ = self.engine.touch_range(space, addr, len, write);
            }
        }
    }

    /// Enables periodic throughput sampling.
    pub fn start_sampling(&mut self) {
        if !self.sampling {
            self.sampling = true;
            self.queue.schedule_in(self.sample_every, EthEvent::Sample);
        }
    }

    /// Runs until simulated time `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.next_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
    }

    /// Runs until `ops` total operations completed or `deadline`
    /// passes; returns the completion time if reached.
    pub fn run_until_ops(&mut self, ops: u64, deadline: SimTime) -> Option<SimTime> {
        while self.total_ops() < ops {
            let t = self.queue.next_time()?;
            if t > deadline {
                return None;
            }
            self.step();
        }
        Some(self.queue.now())
    }

    fn step(&mut self) {
        let Some((now, event)) = self.queue.pop() else {
            return;
        };
        // Advance the trace clock so instrumentation in substrates
        // without their own `now` stamps with the event time.
        trace::set_clock(now);
        journal::set_clock(now);
        // Global invariants are checked at every dispatch boundary.
        invariant::checkpoint(now);
        match event {
            EthEvent::ToServer(seg) => self.server_rx(now, seg),
            EthEvent::ToClient(seg) => self.client_rx(now, seg),
            EthEvent::ClientTimer(cid) => {
                self.client.timers.remove(&cid);
                let outs = self.client.stack.on_timer(now, cid);
                self.handle_client_outputs(now, cid, outs);
            }
            EthEvent::ServerTimer(i, cid) => {
                self.instances[i as usize].timers.remove(&cid);
                let outs = self.instances[i as usize].stack.on_timer(now, cid);
                self.handle_server_outputs(now, i, cid, outs);
            }
            EthEvent::IoUserInterrupt(i) => self.iouser_interrupt(now, i),
            EthEvent::BackupInterrupt => {
                self.backup_moderator.fired(now);
                let (woken, cost) = self.driver.on_backup_interrupt(&self.engine, &mut self.rx);
                for ring in woken {
                    self.queue.schedule_in(cost, EthEvent::ResolverStep(ring));
                }
            }
            EthEvent::ResolverStep(ring) => self.resolver_step(now, ring),
            EthEvent::FaultDone(id) => {
                if self.engine.pending_fault(id).is_some() {
                    self.engine.complete_fault(id);
                }
            }
            EthEvent::OpDone {
                instance,
                conn,
                response_bytes,
                hit,
            } => {
                // The server writes the response; tell the client's
                // framing oracle.
                let client_cid = (conn.1, conn.0);
                self.client
                    .resp_oracle
                    .entry(client_cid)
                    .or_default()
                    .push_back((response_bytes, hit));
                let outs = match self.instances[instance as usize].stack.conn_mut(conn) {
                    Some(c) => c.write(now, response_bytes),
                    None => Vec::new(),
                };
                self.handle_server_outputs(now, instance, conn, outs);
            }
            EthEvent::Sample => {
                for m in &mut self.metrics {
                    m.ops.sample(now);
                    m.hits.sample(now);
                }
                self.emit_tenant_metrics();
                if self.sampling {
                    self.queue.schedule_in(self.sample_every, EthEvent::Sample);
                }
            }
            EthEvent::ChaosTick => {
                self.chaos_tick_armed = false;
                self.chaos_tick();
                // Keep ticking only while other work is pending, so
                // the run can still drain.
                if !self.queue.is_empty() {
                    self.arm_chaos_tick();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Server side.
    // ------------------------------------------------------------------

    fn server_rx(&mut self, now: SimTime, seg: TcpSegment) {
        let Some(channel) = self.channels.lookup_port(seg.dst_port) else {
            return; // no such IOuser
        };
        let idx = channel.id.0;
        // Causal provenance: every fault, NIC verdict, and memory event
        // this packet triggers is journalled under its (tenant, packet)
        // cause. The sequence counter only advances while journalling,
        // so the disabled path stays free.
        if journal::enabled() {
            self.packet_seq += 1;
            journal::set_cause(CauseId {
                tenant: idx,
                packet: self.packet_seq,
            });
        }
        let inst = &mut self.instances[idx as usize];
        let wire = seg.wire_size();

        // Presence check: is there a posted descriptor whose buffer
        // translates?
        let present = match self.rx.target_descriptor(inst.ring) {
            Some(d) => {
                if self.config.mode == RxMode::Pin {
                    true
                } else {
                    let len = wire.min(d.capacity);
                    let ready = self.engine.dma_ready(inst.domain, d.addr, len, true);
                    if !ready
                        && self
                            .engine
                            .pending_fault_covering(inst.domain, d.addr, len)
                            .is_none()
                    {
                        // The NIC raises the page request; the driver
                        // resolves it in the background. With §3's
                        // pre-faulting optimization it also resolves the
                        // next `prefault_window` ring buffers (the
                        // page-per-slot array is contiguous).
                        let span = if self.config.prefault_window > 0 {
                            let slot_page = (d.addr.0 - RX_BUFFER_BASE) / memsim::PAGE_SIZE;
                            let remaining = self.config.ring_entries - slot_page;
                            (1 + self.config.prefault_window).min(remaining) * memsim::PAGE_SIZE
                        } else {
                            len
                        };
                        match self
                            .engine
                            .begin_fault(now, inst.domain, d.addr, span, true, None)
                        {
                            Ok(rec) => {
                                let (id, ready_at) = (rec.id, rec.ready_at);
                                self.metrics[idx as usize].faults += 1;
                                if self.engine.backend_kind() == BackendKind::SoftEmu {
                                    self.rx.note_bounced_fault();
                                }
                                self.queue.schedule_at(ready_at, EthEvent::FaultDone(id));
                                for (pid, at) in self.engine.drain_spawned_prefetches() {
                                    self.queue.schedule_at(at, EthEvent::FaultDone(pid));
                                }
                            }
                            Err(_) => { /* OOM under pressure: stays faulted */ }
                        }
                    }
                    ready
                }
            }
            None => false,
        };

        match self.rx.recv(inst.ring, seg, wire, present) {
            RxVerdict::Stored { notify_iouser, .. } => {
                if notify_iouser {
                    self.request_iouser_irq(now, idx);
                }
            }
            RxVerdict::Backup { .. } => {
                let decision = match self.chaos.as_mut() {
                    Some(chaos) => self.backup_moderator.request_chaos(now, chaos),
                    None => self.backup_moderator.request(now),
                };
                if let InterruptDecision::FireAt(at) = decision {
                    self.queue.schedule_at(at, EthEvent::BackupInterrupt);
                }
            }
            RxVerdict::Dropped { burned_descriptor } => {
                // Lost; TCP will retransmit. A burned descriptor is
                // announced (error completion) so the IOuser reposts.
                self.metrics[idx as usize].drops += 1;
                if burned_descriptor {
                    self.request_iouser_irq(now, idx);
                }
            }
        }
        journal::clear_cause();
    }

    fn request_iouser_irq(&mut self, now: SimTime, idx: u32) {
        let inst = &mut self.instances[idx as usize];
        let decision = match self.chaos.as_mut() {
            Some(chaos) => inst.rx_moderator.request_chaos(now, chaos),
            None => inst.rx_moderator.request(now),
        };
        if let InterruptDecision::FireAt(at) = decision {
            self.queue.schedule_at(at, EthEvent::IoUserInterrupt(idx));
        }
    }

    fn iouser_interrupt(&mut self, now: SimTime, idx: u32) {
        self.instances[idx as usize].rx_moderator.fired(now);
        loop {
            let inst = &mut self.instances[idx as usize];
            // Repost descriptors for drop-mode holes passed over.
            let holes = self.rx.take_skipped_holes(inst.ring);
            for _ in 0..holes {
                Self::post_one(&mut self.rx, inst, self.config.ring_entries);
            }
            let inst = &mut self.instances[idx as usize];
            let Some((seg, _len)) = self.rx.consume(inst.ring) else {
                // A trailing run of holes still needs reposting.
                let holes = self.rx.take_skipped_holes(inst.ring);
                let inst = &mut self.instances[idx as usize];
                for _ in 0..holes {
                    Self::post_one(&mut self.rx, inst, self.config.ring_entries);
                }
                break;
            };
            // Repost a descriptor for the consumed slot.
            let fired_tail = Self::post_one(&mut self.rx, inst, self.config.ring_entries);
            if fired_tail && self.driver.on_tail_interrupt(inst.ring) {
                let ring = inst.ring;
                self.queue.schedule_now(EthEvent::ResolverStep(ring));
            }
            // lwIP processes the packet.
            if let Some((cid, outs)) = self.instances[idx as usize]
                .stack
                .on_segment(now, seg, false)
            {
                self.handle_server_outputs(now, idx, cid, outs);
            }
        }
    }

    fn resolver_step(&mut self, now: SimTime, ring: RingId) {
        // Replay-drain work (and any rNPF it resolves) is attributed to
        // the ring's tenant; the original packet sequence is gone by
        // now, so the cause carries tenant provenance only.
        if journal::enabled() {
            let tenant = self
                .channels
                .by_ring(ring)
                .map_or(CauseId::NO_TENANT, |c| c.id.0);
            journal::set_cause(CauseId::tenant(tenant));
        }
        match self
            .driver
            .resolve_step(now, &mut self.engine, &mut self.rx, ring)
        {
            Ok(ResolveStep::Resolved {
                ring,
                notify_iouser,
                ready_at,
            }) => {
                if notify_iouser {
                    let idx = self
                        .channels
                        .by_ring(ring)
                        .expect("ring belongs to a channel")
                        .id
                        .0;
                    self.request_iouser_irq(ready_at, idx);
                }
                if self.driver.has_work(ring) {
                    self.queue
                        .schedule_at(ready_at, EthEvent::ResolverStep(ring));
                }
            }
            Ok(ResolveStep::WaitingForRing(_) | ResolveStep::Idle) => {}
            Err(_) => {
                // Memory exhaustion: retry after a reclaim-scale delay.
                self.queue
                    .schedule_in(SimDuration::from_millis(1), EthEvent::ResolverStep(ring));
            }
        }
        self.schedule_prefetch_completions();
        journal::clear_cause();
    }

    /// Schedules completion events for any speculative pre-faults the
    /// engine issued while resolving demand faults. The `FaultDone`
    /// handler tolerates already-completed ids, so prefetches reuse the
    /// demand completion path unchanged.
    fn schedule_prefetch_completions(&mut self) {
        for (id, ready_at) in self.engine.drain_spawned_prefetches() {
            self.queue.schedule_at(ready_at, EthEvent::FaultDone(id));
        }
    }

    fn handle_server_outputs(&mut self, now: SimTime, idx: u32, cid: ConnId, outs: Vec<TcpOutput>) {
        for out in outs {
            match out {
                TcpOutput::Send(seg) => self.link_send(now, seg, false),
                TcpOutput::SetTimer(at) => {
                    let inst = &mut self.instances[idx as usize];
                    if let Some(tok) = inst.timers.remove(&cid) {
                        self.queue.cancel(tok);
                    }
                    let tok = self.queue.schedule_at(at, EthEvent::ServerTimer(idx, cid));
                    self.instances[idx as usize].timers.insert(cid, tok);
                }
                TcpOutput::CancelTimer => {
                    if let Some(tok) = self.instances[idx as usize].timers.remove(&cid) {
                        self.queue.cancel(tok);
                    }
                }
                TcpOutput::Readable => self.server_readable(now, idx, cid),
                TcpOutput::Connected | TcpOutput::PeerClosed | TcpOutput::Failed(_) => {}
            }
        }
    }

    fn server_readable(&mut self, now: SimTime, idx: u32, cid: ConnId) {
        loop {
            let inst = &mut self.instances[idx as usize];
            let Some(q) = inst.req_oracle.get_mut(&cid) else {
                return;
            };
            let Some(&(req_bytes, op)) = q.front() else {
                return;
            };
            let Some(conn) = inst.stack.conn_mut(cid) else {
                return;
            };
            if conn.readable_bytes() < req_bytes {
                return;
            }
            conn.read(req_bytes);
            q.pop_front();
            // Process the operation: protocol CPU plus value-memory
            // touches (which may fault, swap, and invalidate under
            // pressure).
            let outcome = inst.app.process(op);
            let mut cpu_cost = outcome.cpu;
            let mut io_cost = SimDuration::ZERO;
            if let Some((addr, len, write)) = outcome.touch {
                let space = inst.space;
                let (cpu, io) = self
                    .engine
                    .touch_range_split(space, addr, len, write)
                    .unwrap_or((SimDuration::from_millis(1), SimDuration::ZERO));
                cpu_cost += cpu;
                io_cost += io;
            }
            // Disk waits block the request, not a core (memcached's
            // worker sleeps on the fault).
            let end = self.cpu.run(now, cpu_cost) + io_cost;
            self.queue.schedule_at(
                end,
                EthEvent::OpDone {
                    instance: idx,
                    conn: cid,
                    response_bytes: outcome.response_bytes,
                    hit: outcome.hit,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Client side.
    // ------------------------------------------------------------------

    fn client_rx(&mut self, now: SimTime, seg: TcpSegment) {
        if let Some((cid, outs)) = self.client.stack.on_segment(now, seg, false) {
            self.handle_client_outputs(now, cid, outs);
        }
    }

    fn handle_client_outputs(&mut self, now: SimTime, cid: ConnId, outs: Vec<TcpOutput>) {
        for out in outs {
            match out {
                TcpOutput::Send(seg) => self.link_send(now, seg, true),
                TcpOutput::SetTimer(at) => {
                    if let Some(tok) = self.client.timers.remove(&cid) {
                        self.queue.cancel(tok);
                    }
                    let tok = self.queue.schedule_at(at, EthEvent::ClientTimer(cid));
                    self.client.timers.insert(cid, tok);
                }
                TcpOutput::CancelTimer => {
                    if let Some(tok) = self.client.timers.remove(&cid) {
                        self.queue.cancel(tok);
                    }
                }
                TcpOutput::Connected => self.issue_op(now, cid),
                TcpOutput::Readable => self.client_readable(now, cid),
                TcpOutput::Failed(_) => {
                    if let Some(c) = self.client.conns.get_mut(&cid) {
                        if c.alive {
                            c.alive = false;
                            self.metrics[c.instance as usize].failed_conns += 1;
                        }
                    }
                }
                TcpOutput::PeerClosed => {}
            }
        }
    }

    fn client_readable(&mut self, now: SimTime, cid: ConnId) {
        loop {
            let Some(q) = self.client.resp_oracle.get_mut(&cid) else {
                return;
            };
            let Some(&(bytes, hit)) = q.front() else {
                return;
            };
            let Some(conn) = self.client.stack.conn_mut(cid) else {
                return;
            };
            if conn.readable_bytes() < bytes {
                return;
            }
            conn.read(bytes);
            q.pop_front();
            let instance = self.client.conns[&cid].instance;
            let m = &mut self.metrics[instance as usize];
            m.ops.record(1);
            if hit {
                m.hits.record(1);
            }
            if let Some(issued) = self
                .client
                .issue_times
                .get_mut(&cid)
                .and_then(VecDeque::pop_front)
            {
                m.latency.record(now.saturating_since(issued));
            }
            self.issue_op(now, cid);
        }
    }

    fn issue_op(&mut self, now: SimTime, cid: ConnId) {
        let Some(conn_state) = self.client.conns.get(&cid) else {
            return;
        };
        if !conn_state.alive {
            return;
        }
        let instance = conn_state.instance;
        self.client
            .issue_times
            .entry(cid)
            .or_default()
            .push_back(now);
        let (op, req_bytes) = self.client.generators[instance as usize].next_op();
        // Tell the server's framing oracle.
        let server_cid = (cid.1, cid.0);
        self.instances[instance as usize]
            .req_oracle
            .entry(server_cid)
            .or_default()
            .push_back((req_bytes, op));
        let outs = match self.client.stack.conn_mut(cid) {
            Some(c) => c.write(now, req_bytes),
            None => Vec::new(),
        };
        self.handle_client_outputs(now, cid, outs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(mode: RxMode) -> EthConfig {
        EthConfig::default()
            .with_mode(mode)
            .with_instances(1)
            .with_conns_per_instance(4)
            .with_ring_entries(64)
            .with_host_memory(ByteSize::mib(512))
            .with_memcached(MemcachedConfig {
                max_bytes: ByteSize::mib(64),
                value_size: 1024,
                ..MemcachedConfig::default()
            })
            .with_working_set_keys(1000)
    }

    #[test]
    fn pinned_testbed_serves_operations() {
        let mut bed = EthTestbed::new(small_config(RxMode::Pin)).expect("setup");
        bed.run_until(SimTime::from_secs(1));
        assert!(
            bed.total_ops() > 1000,
            "pinned mode must serve ops quickly: {}",
            bed.total_ops()
        );
        assert_eq!(bed.engine().counters().get("npf_events"), 0);
        assert_eq!(bed.total_failed_conns(), 0);
    }

    #[test]
    fn backup_testbed_recovers_from_cold_ring() {
        let mut bed = EthTestbed::new(small_config(RxMode::Backup)).expect("setup");
        bed.run_until(SimTime::from_secs(1));
        assert!(
            bed.total_ops() > 1000,
            "backup ring must ride through cold ring: {}",
            bed.total_ops()
        );
        assert!(
            bed.rx_counters().get("backup_stored") > 0,
            "cold ring must have faulted into the backup ring"
        );
        assert_eq!(bed.total_failed_conns(), 0);
    }

    #[test]
    fn drop_testbed_stalls_on_cold_ring() {
        let mut drop_bed = EthTestbed::new(small_config(RxMode::Drop)).expect("setup");
        drop_bed.run_until(SimTime::from_secs(1));
        let mut backup_bed = EthTestbed::new(small_config(RxMode::Backup)).expect("setup");
        backup_bed.run_until(SimTime::from_secs(1));
        assert!(
            drop_bed.total_ops() * 10 < backup_bed.total_ops().max(1),
            "dropping must be far slower during cold start: drop {} vs backup {}",
            drop_bed.total_ops(),
            backup_bed.total_ops()
        );
        assert!(drop_bed.rx_counters().get("dropped_fault") > 0);
    }

    #[test]
    fn prefaulted_drop_ring_behaves_like_pinned() {
        let mut cfg = small_config(RxMode::Drop);
        cfg.prefault_rings = true;
        let mut bed = EthTestbed::new(cfg).expect("setup");
        bed.run_until(SimTime::from_secs(1));
        assert!(
            bed.total_ops() > 1000,
            "a warm ring must not drop: {}",
            bed.total_ops()
        );
    }

    #[test]
    fn pin_mode_fails_when_memory_insufficient() {
        let mut cfg = small_config(RxMode::Pin);
        cfg.memcached.max_bytes = ByteSize::gib(1); // exceeds 512 MiB host
        let err = EthTestbed::new(cfg).err();
        assert!(err.is_some(), "pinning 1 GiB into 512 MiB must fail");
        // The same allocation works with NPFs.
        let mut cfg2 = small_config(RxMode::Backup);
        cfg2.memcached.max_bytes = ByteSize::gib(1);
        assert!(EthTestbed::new(cfg2).is_ok());
    }

    #[test]
    fn latency_percentiles_are_recorded() {
        let mut bed = EthTestbed::new(small_config(RxMode::Pin)).expect("setup");
        bed.run_until(SimTime::from_secs(1));
        let rep = bed.tenant_report(0);
        assert!(rep.ops > 0);
        assert!(rep.p50 > SimDuration::ZERO, "median latency recorded");
        assert!(rep.p99 >= rep.p50, "p99 dominates p50");
        assert_eq!(rep.conns, 4);
    }

    #[test]
    fn tenant_skew_concentrates_connections_and_load() {
        let cfg = small_config(RxMode::Backup)
            .with_instances(4)
            .with_conns_per_instance(4)
            .with_memcached(MemcachedConfig {
                max_bytes: ByteSize::mib(16),
                value_size: 1024,
                ..MemcachedConfig::default()
            })
            .with_tenant_skew(Some(1.2));
        let mut bed = EthTestbed::new(cfg).expect("setup");
        assert_eq!((0..4).map(|i| bed.conns_of(i)).sum::<u32>(), 16);
        assert!(
            bed.conns_of(0) > bed.conns_of(3),
            "skewed allocation: {} vs {}",
            bed.conns_of(0),
            bed.conns_of(3)
        );
        bed.run_until(SimTime::from_millis(500));
        let head = bed.tenant_report(0);
        let tail = bed.tenant_report(3);
        assert!(
            head.ops > tail.ops,
            "hot tenant does more work: {} vs {}",
            head.ops,
            tail.ops
        );
    }

    #[test]
    fn sampling_produces_time_series() {
        let mut bed = EthTestbed::new(small_config(RxMode::Pin)).expect("setup");
        bed.start_sampling();
        bed.run_until(SimTime::from_secs(1));
        let series = bed.metrics()[0].ops.series();
        assert!(series.len() >= 3, "samples recorded: {}", series.len());
        let late = series.window_mean(SimTime::from_millis(500), SimTime::from_secs(1));
        assert!(late > 0.0, "steady-state throughput visible");
    }
}

#[cfg(test)]
mod prefault_tests {
    use super::*;

    #[test]
    fn prefault_window_shortens_cold_sequences() {
        let cfg = |window: u64| {
            EthConfig::default()
                .with_mode(RxMode::Backup)
                .with_instances(1)
                .with_conns_per_instance(8)
                .with_ring_entries(512)
                .with_bm_size(1024)
                .with_host_memory(ByteSize::mib(512))
                .with_memcached(MemcachedConfig {
                    max_bytes: ByteSize::mib(64),
                    ..MemcachedConfig::default()
                })
                .with_working_set_keys(1_000)
                .with_prefault_window(window)
        };
        let run = |window| {
            let mut bed = EthTestbed::new(cfg(window)).expect("setup");
            bed.run_until_ops(2_000, SimTime::from_secs(30))
                .expect("completes")
        };
        let without = run(0);
        let with = run(64);
        assert!(
            with <= without,
            "pre-faulting must not slow the cold ring: {with} vs {without}"
        );
        // And it reduces the number of distinct fault events.
        let events = |window| {
            let mut bed = EthTestbed::new(cfg(window)).expect("setup");
            bed.run_until(SimTime::from_millis(500));
            bed.engine().counters().get("npf_events")
        };
        assert!(events(64) < events(0), "wider resolutions, fewer events");
    }
}
