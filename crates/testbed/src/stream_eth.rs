//! The Ethernet what-if stream benchmark (§6.4, Figure 10 left).
//!
//! A Netperf-style TCP stream from the client (standard Linux stack)
//! into an lwIP IOuser behind the direct channel. The receive ring is
//! pre-faulted ("to eliminate the cold ring problem"), and synthetic
//! rNPFs are injected at a configurable per-packet frequency. Depending
//! on the NIC's policy a faulting packet is either dropped (TCP
//! retransmission recovers it, slowly) or parked in the backup ring and
//! merged once the synthetic fault "resolves".

use std::collections::HashMap;

use memsim::manager::{MemConfig, MemoryManager};
use memsim::space::Backing;
use memsim::types::{PageRange, VirtAddr};
use netsim::link::{Link, LinkConfig, SendOutcome};
use netsim::profile::FabricProfile;
use nicsim::rx::{RingId, RxDescriptor, RxEngine, RxFaultMode, RxVerdict};
use npf_core::npf::{NpfConfig, NpfEngine};
use npf_core::RX_BUFFER_BASE;
use simcore::event::{EventQueue, EventToken};
use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};
use simcore::units::{Bandwidth, ByteSize};
use tcpsim::{ConnId, TcpConfig, TcpOutput, TcpSegment, TcpStack};
use workloads::stream::{StreamReceiver, SyntheticFaults};

/// Fault policy for the stream run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamMode {
    /// Faulting packets are dropped.
    Drop,
    /// Faulting packets park in the backup ring.
    Backup,
}

/// Configuration of a stream run.
#[derive(Debug, Clone, Copy)]
pub struct StreamBedConfig {
    /// Fault policy.
    pub mode: StreamMode,
    /// Per-packet synthetic rNPF probability.
    pub fault_frequency: f64,
    /// Major (disk-latency) or minor fault resolution.
    pub major_faults: bool,
    /// Link rate (the 12 Gb/s prototype NIC).
    pub bandwidth: Bandwidth,
    /// Receive ring entries.
    pub ring_entries: u64,
    /// How long to run.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Fabric profile (loss regime / ECN marking) of the stream link.
    pub profile: FabricProfile,
}

impl Default for StreamBedConfig {
    fn default() -> Self {
        StreamBedConfig {
            mode: StreamMode::Backup,
            fault_frequency: 0.0,
            major_faults: false,
            bandwidth: Bandwidth::gbps(12),
            ring_entries: 512,
            duration: SimDuration::from_secs(2),
            seed: 1,
            profile: FabricProfile::default(),
        }
    }
}

/// Result of a stream run.
#[derive(Debug, Clone, Copy)]
pub struct StreamBedResult {
    /// Application goodput at the receiver, Gb/s.
    pub goodput_gbps: f64,
    /// Synthetic faults injected.
    pub faults_injected: u64,
    /// Packets dropped at the NIC.
    pub nic_drops: u64,
    /// Packets that took the backup path.
    pub backup_packets: u64,
}

#[derive(Debug)]
enum Ev {
    ToServer(TcpSegment),
    ToClient(TcpSegment),
    ClientTimer(ConnId),
    ServerTimer(ConnId),
    /// A synthetic fault resolved: merge the oldest backup entry back.
    Merge,
    /// Announce ring contents to the IOuser.
    Consume,
}

/// Runs the Ethernet stream benchmark.
pub fn run_stream(config: StreamBedConfig) -> StreamBedResult {
    const PORT: u16 = 9000;
    const MSG: u64 = 64 * 1024;
    let mut rng = SimRng::new(config.seed);
    let mut queue: EventQueue<Ev> = EventQueue::new();

    // Server: one IOuser with a pre-faulted ring.
    let mm = MemoryManager::new(MemConfig {
        total_memory: ByteSize::gib(4),
        ..MemConfig::default()
    });
    let mut engine = NpfEngine::new(NpfConfig::default(), mm, rng.fork(1));
    let space = engine.memory_mut().create_space();
    let ring = RingId(0);
    let rx_range = PageRange::new(VirtAddr(RX_BUFFER_BASE).vpn(), config.ring_entries);
    engine
        .memory_mut()
        .mmap_fixed(space, rx_range, Backing::Anonymous)
        .expect("rx mapping");
    let domain = engine.create_channel(space);
    for vpn in rx_range.iter() {
        engine.touch(space, vpn, true).expect("prefault");
        let frame = engine
            .memory()
            .space(space)
            .expect("space")
            .frame_of(vpn)
            .expect("resident");
        engine.iommu_mut().map(domain, vpn, frame, true);
    }
    let mut rx: RxEngine<TcpSegment> = RxEngine::new(match config.mode {
        StreamMode::Drop => RxFaultMode::Drop,
        StreamMode::Backup => RxFaultMode::BackupRing { capacity: 2048 },
    });
    rx.create_ring(ring, config.ring_entries, config.ring_entries * 2);
    let mut posted = 0u64;
    let post_one = |rx: &mut RxEngine<TcpSegment>, posted: &mut u64| {
        let addr = VirtAddr(RX_BUFFER_BASE + (*posted % config.ring_entries) * memsim::PAGE_SIZE);
        *posted += 1;
        rx.post_descriptor(
            ring,
            RxDescriptor {
                addr,
                capacity: memsim::PAGE_SIZE,
            },
        )
    };
    for _ in 0..config.ring_entries {
        post_one(&mut rx, &mut posted);
    }

    let mut synth = SyntheticFaults::new(config.fault_frequency, rng.fork(2));
    synth.arm();
    let fault_delay_base = NpfConfig::default();
    let minor = SimDuration::from_micros(220);
    let major = minor + fault_delay_base.cost.memcpy(0) + SimDuration::from_millis(5);
    let resolve_delay = if config.major_faults { major } else { minor };

    let mut server = TcpStack::new();
    server.listen(PORT, TcpConfig::lwip());
    let mut client = TcpStack::new();
    let link_cfg = config.profile.apply_link(LinkConfig {
        bandwidth: config.bandwidth,
        propagation: SimDuration::from_micros(1),
        queue_capacity: 8 << 20,
        ecn_threshold: None,
        loss_probability: 0.0,
    });
    let mut link_c2s = Link::new(link_cfg, rng.fork(3));
    let mut link_s2c = Link::new(link_cfg, rng.fork(4));

    let mut receiver = StreamReceiver::new();
    let mut client_timers: HashMap<ConnId, EventToken> = HashMap::new();
    let mut server_timers: HashMap<ConnId, EventToken> = HashMap::new();

    let (cid, outs) = client.connect(SimTime::ZERO, 5000, PORT, TcpConfig::linux());
    // Effects helpers are plain closures over the queue + links.
    fn client_effects(
        now: SimTime,
        outs: Vec<TcpOutput>,
        cid: ConnId,
        queue: &mut EventQueue<Ev>,
        link_c2s: &mut Link,
        timers: &mut HashMap<ConnId, EventToken>,
        client: &mut TcpStack,
    ) {
        for out in outs {
            match out {
                TcpOutput::Send(seg) => {
                    if let SendOutcome::Delivered { arrives_at, .. } =
                        link_c2s.send(now, seg.wire_size())
                    {
                        queue.schedule_at(arrives_at, Ev::ToServer(seg));
                    }
                }
                TcpOutput::SetTimer(at) => {
                    if let Some(t) = timers.remove(&cid) {
                        queue.cancel(t);
                    }
                    timers.insert(cid, queue.schedule_at(at, Ev::ClientTimer(cid)));
                }
                TcpOutput::CancelTimer => {
                    if let Some(t) = timers.remove(&cid) {
                        queue.cancel(t);
                    }
                }
                TcpOutput::Connected => {
                    // Start the stream: keep the pipe full.
                    if let Some(conn) = client.conn_mut(cid) {
                        let outs = conn.write(now, MSG * 8);
                        client_effects(now, outs, cid, queue, link_c2s, timers, client);
                    }
                }
                _ => {}
            }
        }
    }
    client_effects(
        SimTime::ZERO,
        outs,
        cid,
        &mut queue,
        &mut link_c2s,
        &mut client_timers,
        &mut client,
    );

    let deadline = SimTime::ZERO + config.duration;
    while let Some(t) = queue.next_time() {
        if t > deadline {
            break;
        }
        let Some((now, ev)) = queue.pop() else { break };
        // Advance the trace clock so instrumentation in substrates
        // without their own `now` stamps with the event time.
        simcore::trace::set_clock(now);
        match ev {
            Ev::ToServer(seg) => {
                // Presence: ring is warm; only synthetic faults fire.
                let posted_desc = rx.target_descriptor(ring).is_some();
                let present = posted_desc && !synth.should_fault();
                match rx.recv(ring, seg, seg.wire_size(), present) {
                    RxVerdict::Stored { notify_iouser, .. } => {
                        if notify_iouser {
                            queue.schedule_in(SimDuration::from_micros(4), Ev::Consume);
                        }
                    }
                    RxVerdict::Backup { .. } => {
                        queue.schedule_in(resolve_delay, Ev::Merge);
                    }
                    RxVerdict::Dropped { burned_descriptor } => {
                        if burned_descriptor {
                            queue.schedule_in(SimDuration::from_micros(4), Ev::Consume);
                        }
                    }
                }
            }
            Ev::Merge => {
                if let Some(entry) = rx.pop_backup() {
                    let placed =
                        rx.place_resolved(ring, entry.target_index, entry.payload, entry.len);
                    if placed && rx.resolve_rnpfs(ring, entry.bit_index) {
                        queue.schedule_in(SimDuration::from_micros(4), Ev::Consume);
                    }
                }
            }
            Ev::Consume => loop {
                for _ in 0..rx.take_skipped_holes(ring) {
                    post_one(&mut rx, &mut posted);
                }
                let Some((seg, _)) = rx.consume(ring) else {
                    for _ in 0..rx.take_skipped_holes(ring) {
                        post_one(&mut rx, &mut posted);
                    }
                    break;
                };
                post_one(&mut rx, &mut posted);
                if let Some((scid, outs)) = server.on_segment(now, seg, false) {
                    for out in outs {
                        match out {
                            TcpOutput::Send(s) => {
                                if let SendOutcome::Delivered { arrives_at, .. } =
                                    link_s2c.send(now, s.wire_size())
                                {
                                    queue.schedule_at(arrives_at, Ev::ToClient(s));
                                }
                            }
                            TcpOutput::SetTimer(at) => {
                                if let Some(t) = server_timers.remove(&scid) {
                                    queue.cancel(t);
                                }
                                server_timers
                                    .insert(scid, queue.schedule_at(at, Ev::ServerTimer(scid)));
                            }
                            TcpOutput::CancelTimer => {
                                if let Some(t) = server_timers.remove(&scid) {
                                    queue.cancel(t);
                                }
                            }
                            TcpOutput::Readable => {
                                if let Some(conn) = server.conn_mut(scid) {
                                    let n = conn.readable_bytes();
                                    conn.read(n);
                                    receiver.deliver(now, n);
                                }
                            }
                            _ => {}
                        }
                    }
                }
            },
            Ev::ToClient(seg) => {
                if let Some((ccid, outs)) = client.on_segment(now, seg, false) {
                    client_effects(
                        now,
                        outs,
                        ccid,
                        &mut queue,
                        &mut link_c2s,
                        &mut client_timers,
                        &mut client,
                    );
                    // Keep the stream saturated.
                    if let Some(conn) = client.conn_mut(ccid) {
                        if conn.send_queue_bytes() < MSG * 4 {
                            let outs = conn.write(now, MSG * 4);
                            client_effects(
                                now,
                                outs,
                                ccid,
                                &mut queue,
                                &mut link_c2s,
                                &mut client_timers,
                                &mut client,
                            );
                        }
                    }
                }
            }
            Ev::ClientTimer(tcid) => {
                client_timers.remove(&tcid);
                let outs = client.on_timer(now, tcid);
                client_effects(
                    now,
                    outs,
                    tcid,
                    &mut queue,
                    &mut link_c2s,
                    &mut client_timers,
                    &mut client,
                );
            }
            Ev::ServerTimer(scid) => {
                server_timers.remove(&scid);
                for out in server.on_timer(now, scid) {
                    if let TcpOutput::Send(s) = out {
                        if let SendOutcome::Delivered { arrives_at, .. } =
                            link_s2c.send(now, s.wire_size())
                        {
                            queue.schedule_at(arrives_at, Ev::ToClient(s));
                        }
                    }
                }
            }
        }
    }

    StreamBedResult {
        goodput_gbps: receiver.bytes() as f64 * 8.0
            / 1e9
            / config.duration.as_secs_f64().max(1e-12),
        faults_injected: synth.injected(),
        nic_drops: rx.counters().get("dropped_fault") + rx.counters().get("dropped_no_buffer"),
        backup_packets: rx.counters().get("backup_stored"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_stream_approaches_line_rate() {
        let r = run_stream(StreamBedConfig {
            duration: SimDuration::from_millis(400),
            ..StreamBedConfig::default()
        });
        assert!(
            r.goodput_gbps > 8.0,
            "a clean 12 Gb/s stream should exceed 8 Gb/s: {}",
            r.goodput_gbps
        );
        assert_eq!(r.faults_injected, 0);
    }

    #[test]
    fn backup_ring_tolerates_frequent_faults() {
        let r = run_stream(StreamBedConfig {
            fault_frequency: 1.0 / 1024.0,
            mode: StreamMode::Backup,
            duration: SimDuration::from_millis(400),
            ..StreamBedConfig::default()
        });
        assert!(r.faults_injected > 0);
        assert!(r.backup_packets > 0);
        assert!(
            r.goodput_gbps > 4.0,
            "backup ring must keep most of the bandwidth: {}",
            r.goodput_gbps
        );
    }

    #[test]
    fn dropping_collapses_under_frequent_faults() {
        let drop = run_stream(StreamBedConfig {
            fault_frequency: 1.0 / 1024.0,
            mode: StreamMode::Drop,
            duration: SimDuration::from_millis(400),
            ..StreamBedConfig::default()
        });
        let backup = run_stream(StreamBedConfig {
            fault_frequency: 1.0 / 1024.0,
            mode: StreamMode::Backup,
            duration: SimDuration::from_millis(400),
            ..StreamBedConfig::default()
        });
        assert!(drop.nic_drops > 0);
        assert!(
            drop.goodput_gbps < backup.goodput_gbps / 2.0,
            "drop {} vs backup {}",
            drop.goodput_gbps,
            backup.goodput_gbps
        );
    }

    #[test]
    fn major_faults_hurt_more_than_minor() {
        let minor = run_stream(StreamBedConfig {
            fault_frequency: 1.0 / 512.0,
            major_faults: false,
            duration: SimDuration::from_millis(400),
            ..StreamBedConfig::default()
        });
        let major = run_stream(StreamBedConfig {
            fault_frequency: 1.0 / 512.0,
            major_faults: true,
            duration: SimDuration::from_millis(400),
            ..StreamBedConfig::default()
        });
        assert!(
            major.goodput_gbps < minor.goodput_gbps,
            "major {} vs minor {}",
            major.goodput_gbps,
            minor.goodput_gbps
        );
    }
}
