//! Unified scenario construction: one typed, validated, `Result`-
//! returning entry point for both testbeds.
//!
//! [`ScenarioBuilder::ethernet`] and [`ScenarioBuilder::infiniband`]
//! return scenario builders with chainable setters mirroring
//! [`EthConfig`] / [`IbConfig`]. `build()` runs cross-field validation
//! (ring geometry vs rNPF budgets, backup capacity vs tenant quotas,
//! host memory vs instance allocations, arbiter pool sizing) and
//! returns a typed [`ScenarioError`] instead of panicking deep inside a
//! substrate.
//!
//! ```
//! use testbed::builder::ScenarioBuilder;
//! use testbed::eth::RxMode;
//! use simcore::{ByteSize, SimTime};
//!
//! let mut bed = ScenarioBuilder::ethernet()
//!     .mode(RxMode::Backup)
//!     .instances(2)
//!     .conns_per_instance(2)
//!     .host_memory(ByteSize::mib(256))
//!     .working_set_keys(200)
//!     .build()
//!     .expect("valid scenario");
//! bed.run_until(SimTime::from_millis(100));
//! assert!(bed.total_ops() > 0);
//! ```

use memsim::manager::{MemError, TierConfig};
use memsim::swap::DiskConfig;
use netsim::profile::{FabricProfile, RdmaTransport, TransportConfig};
use npf_core::npf::{ArbiterPolicy, NpfConfig};
use npf_core::{BackendKind, BackendSelect};
use simcore::chaos::ChaosConfig;
use simcore::time::SimDuration;
use simcore::units::{Bandwidth, ByteSize};
use workloads::memcached::MemcachedConfig;

use crate::eth::{EthConfig, EthTestbed, RxMode};
use crate::ib::{IbCluster, IbConfig};

/// Why a scenario failed validation (or construction).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The Ethernet testbed needs at least one memcached instance.
    NoInstances,
    /// Closed-loop clients need at least one connection per instance.
    NoConnections,
    /// Receive rings need at least one entry.
    EmptyRing,
    /// The per-ring rNPF budget cannot track a full ring.
    BitmapTooSmall {
        /// The configured budget.
        bm_size: u64,
        /// The ring it must cover.
        ring_entries: u64,
    },
    /// Backup mode needs a non-empty backup ring.
    NoBackupCapacity,
    /// A backup quota is meaningless outside [`RxMode::Backup`].
    QuotaWithoutBackup,
    /// A zero quota would drop every faulting packet.
    ZeroQuota,
    /// A per-tenant quota larger than the whole backup ring.
    QuotaExceedsBackup {
        /// The configured per-tenant quota.
        quota: u64,
        /// The backup ring capacity.
        capacity: u64,
    },
    /// Guaranteed-resident allocations exceed host memory.
    InsufficientMemory {
        /// Bytes the scenario must keep resident.
        required: ByteSize,
        /// Physical memory configured.
        available: ByteSize,
    },
    /// The Zipf tenant-popularity exponent must be finite and >= 0.
    InvalidSkew {
        /// The offending exponent (stringified so the error stays `Eq`).
        skew: String,
    },
    /// A cross-channel arbiter with an empty fault-slot pool.
    ArbiterWithoutSlots,
    /// A cross-channel arbiter policy that arbitrates firmware fault
    /// slots, requested under a backend with no firmware NPF path.
    ArbiterNeedsFirmware {
        /// The requested policy.
        policy: ArbiterPolicy,
        /// The backend that cannot honour it.
        backend: BackendKind,
    },
    /// The firmware-bypass fast resume under a backend with no
    /// firmware to bypass.
    BypassNeedsFirmware {
        /// The backend that cannot honour it.
        backend: BackendKind,
    },
    /// A software-emulation backend with a zero-sized bounce pool
    /// (every unmapped DMA would wait forever for a buffer).
    ZeroBounceBuffers,
    /// A tenant weight for an instance the scenario does not create.
    UnknownTenant {
        /// The weighted instance.
        instance: u32,
        /// Instances the scenario creates.
        instances: u32,
    },
    /// The client's 16-bit port space cannot host this many
    /// connections (locals start at 20000) or server listeners
    /// (11211 + instance).
    PortSpaceExhausted {
        /// Total client connections requested.
        connections: u32,
        /// Instances requested.
        instances: u32,
    },
    /// The InfiniBand cluster needs at least one node.
    NoNodes,
    /// PFC emulates a lossless fabric; combining it with random loss
    /// contradicts itself (IRN's lossy regimes must disarm PFC).
    PfcNeedsLossless {
        /// The configured loss probability.
        loss: String,
    },
    /// The selective-repeat transport caps in-flight data at the BDP;
    /// a zero cap would never send anything.
    BdpCapZero,
    /// A loss probability outside `[0, 1)`.
    LossOutOfRange {
        /// The offending probability (stringified so the error stays
        /// `Eq`).
        loss: String,
    },
    /// Construction failed in the memory subsystem (e.g. pinning under
    /// [`RxMode::Pin`] with insufficient host memory — Table 5's "N/A").
    Mem(MemError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::NoInstances => write!(f, "scenario creates zero instances"),
            ScenarioError::NoConnections => write!(f, "zero connections per instance"),
            ScenarioError::EmptyRing => write!(f, "receive ring has zero entries"),
            ScenarioError::BitmapTooSmall {
                bm_size,
                ring_entries,
            } => write!(
                f,
                "rNPF budget bm_size={bm_size} cannot cover a {ring_entries}-entry ring"
            ),
            ScenarioError::NoBackupCapacity => {
                write!(f, "backup mode with a zero-capacity backup ring")
            }
            ScenarioError::QuotaWithoutBackup => {
                write!(f, "backup quota set but the fault policy is not Backup")
            }
            ScenarioError::ZeroQuota => write!(f, "per-tenant backup quota of zero"),
            ScenarioError::QuotaExceedsBackup { quota, capacity } => write!(
                f,
                "per-tenant quota {quota} exceeds backup capacity {capacity}"
            ),
            ScenarioError::InsufficientMemory {
                required,
                available,
            } => write!(
                f,
                "resident allocations need {required} but the host has {available}"
            ),
            ScenarioError::InvalidSkew { skew } => {
                write!(
                    f,
                    "tenant skew {skew} is not a finite non-negative exponent"
                )
            }
            ScenarioError::ArbiterWithoutSlots => {
                write!(f, "cross-channel arbiter enabled with zero fault slots")
            }
            ScenarioError::ArbiterNeedsFirmware { policy, backend } => write!(
                f,
                "arbiter policy {policy:?} arbitrates firmware fault slots but the backend is {}",
                backend.as_str()
            ),
            ScenarioError::BypassNeedsFirmware { backend } => write!(
                f,
                "firmware-bypass resume requested but the backend is {}",
                backend.as_str()
            ),
            ScenarioError::ZeroBounceBuffers => {
                write!(f, "softemu backend with a zero-sized bounce-buffer pool")
            }
            ScenarioError::UnknownTenant {
                instance,
                instances,
            } => write!(
                f,
                "tenant weight for instance {instance} but only {instances} instances exist"
            ),
            ScenarioError::PortSpaceExhausted {
                connections,
                instances,
            } => write!(
                f,
                "{connections} connections across {instances} instances exhaust the port space"
            ),
            ScenarioError::NoNodes => write!(f, "cluster has zero nodes"),
            ScenarioError::PfcNeedsLossless { loss } => write!(
                f,
                "PFC armed on a lossy fabric (loss={loss}); disarm PFC for lossy regimes"
            ),
            ScenarioError::BdpCapZero => {
                write!(f, "selective-repeat transport with a zero BDP cap")
            }
            ScenarioError::LossOutOfRange { loss } => {
                write!(f, "loss probability {loss} is outside [0, 1)")
            }
            ScenarioError::Mem(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for ScenarioError {
    fn from(e: MemError) -> Self {
        ScenarioError::Mem(e)
    }
}

/// Cross-field validation of an Ethernet configuration.
pub(crate) fn validate_eth(cfg: &EthConfig) -> Result<(), ScenarioError> {
    if cfg.instances == 0 {
        return Err(ScenarioError::NoInstances);
    }
    if cfg.conns_per_instance == 0 {
        return Err(ScenarioError::NoConnections);
    }
    if cfg.ring_entries == 0 {
        return Err(ScenarioError::EmptyRing);
    }
    if cfg.bm_size < cfg.ring_entries {
        return Err(ScenarioError::BitmapTooSmall {
            bm_size: cfg.bm_size,
            ring_entries: cfg.ring_entries,
        });
    }
    if cfg.mode == RxMode::Backup && cfg.backup_capacity == 0 {
        return Err(ScenarioError::NoBackupCapacity);
    }
    if let Some(quota) = cfg.backup_quota {
        if cfg.mode != RxMode::Backup {
            return Err(ScenarioError::QuotaWithoutBackup);
        }
        if quota == 0 {
            return Err(ScenarioError::ZeroQuota);
        }
        if quota > cfg.backup_capacity {
            return Err(ScenarioError::QuotaExceedsBackup {
                quota,
                capacity: cfg.backup_capacity,
            });
        }
    }
    if let Some(skew) = cfg.tenant_skew {
        if !skew.is_finite() || skew < 0.0 {
            return Err(ScenarioError::InvalidSkew {
                skew: skew.to_string(),
            });
        }
    }
    validate_profile(&cfg.profile)?;
    validate_npf(&cfg.npf)?;
    // Port-space geometry: server listeners live at 11211 + instance,
    // client locals at 20000 + connection; both must stay within u16
    // and must not collide.
    let connections = cfg.instances.saturating_mul(cfg.conns_per_instance);
    if 11211 + cfg.instances > 20000 || 20000 + connections > u32::from(u16::MAX) {
        return Err(ScenarioError::PortSpaceExhausted {
            connections,
            instances: cfg.instances,
        });
    }
    // Guaranteed-resident bytes: every ring's page-per-slot buffer
    // array, plus — under static pinning — every instance's item slab.
    let ring_bytes = u64::from(cfg.instances) * cfg.ring_entries * memsim::PAGE_SIZE;
    let required = if cfg.mode == RxMode::Pin {
        ring_bytes + u64::from(cfg.instances) * cfg.memcached.max_bytes.bytes()
    } else {
        ring_bytes
    };
    if required > cfg.host_memory.bytes() {
        return Err(ScenarioError::InsufficientMemory {
            required: ByteSize::bytes_exact(required),
            available: cfg.host_memory,
        });
    }
    Ok(())
}

/// Cross-field validation of an InfiniBand configuration.
pub(crate) fn validate_ib(cfg: &IbConfig) -> Result<(), ScenarioError> {
    if cfg.nodes == 0 {
        return Err(ScenarioError::NoNodes);
    }
    if cfg.node_memory == ByteSize::ZERO {
        return Err(ScenarioError::InsufficientMemory {
            required: ByteSize::bytes_exact(memsim::PAGE_SIZE),
            available: ByteSize::ZERO,
        });
    }
    validate_profile(&cfg.profile)?;
    if cfg.rc.transport == RdmaTransport::SelectiveRepeat && cfg.rc.bdp_packets == 0 {
        return Err(ScenarioError::BdpCapZero);
    }
    validate_npf(&cfg.npf)
}

/// Whole-config validation of a fabric profile.
pub(crate) fn validate_profile(profile: &FabricProfile) -> Result<(), ScenarioError> {
    if !profile.loss.is_finite() || profile.loss < 0.0 || profile.loss >= 1.0 {
        return Err(ScenarioError::LossOutOfRange {
            loss: profile.loss.to_string(),
        });
    }
    if profile.pfc && profile.loss > 0.0 {
        return Err(ScenarioError::PfcNeedsLossless {
            loss: profile.loss.to_string(),
        });
    }
    Ok(())
}

fn validate_npf(cfg: &NpfConfig) -> Result<(), ScenarioError> {
    if cfg.arbiter != ArbiterPolicy::ChannelOnly && cfg.total_fault_slots == 0 {
        return Err(ScenarioError::ArbiterWithoutSlots);
    }
    // Cross-channel arbitration and the bypass resume are firmware NIC
    // features; the driver-level backends have neither a shared fault
    // slot pool nor a firmware to bypass.
    let backend = cfg.backend.kind();
    if backend != BackendKind::Firmware {
        if cfg.arbiter != ArbiterPolicy::ChannelOnly {
            return Err(ScenarioError::ArbiterNeedsFirmware {
                policy: cfg.arbiter,
                backend,
            });
        }
        if cfg.firmware_bypass {
            return Err(ScenarioError::BypassNeedsFirmware { backend });
        }
    }
    if let BackendSelect::SoftEmu(se) = cfg.backend {
        if se.bounce_buffers == 0 {
            return Err(ScenarioError::ZeroBounceBuffers);
        }
    }
    Ok(())
}

/// Entry point: picks the testbed family.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScenarioBuilder;

impl ScenarioBuilder {
    /// Starts an Ethernet (memcached-over-NPF) scenario at the
    /// defaults of [`EthConfig`].
    #[must_use]
    pub fn ethernet() -> EthScenario {
        EthScenario {
            config: EthConfig::default(),
            weights: Vec::new(),
        }
    }

    /// Starts an InfiniBand cluster scenario at the defaults of
    /// [`IbConfig`].
    #[must_use]
    pub fn infiniband() -> IbScenario {
        IbScenario {
            config: IbConfig::default(),
        }
    }
}

/// A validated-on-build Ethernet scenario.
#[derive(Debug, Clone)]
pub struct EthScenario {
    config: EthConfig,
    /// Arbiter weights applied after construction: `(instance, weight)`.
    weights: Vec<(u32, u32)>,
}

impl EthScenario {
    /// Seeds the scenario from an existing configuration.
    #[must_use]
    pub fn from_config(config: EthConfig) -> Self {
        EthScenario {
            config,
            weights: Vec::new(),
        }
    }

    /// The configuration as currently set.
    #[must_use]
    pub fn config(&self) -> &EthConfig {
        &self.config
    }

    /// Sets the receive-fault policy.
    #[must_use]
    pub fn mode(mut self, mode: RxMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Sets the number of memcached instances (IOusers / tenants).
    #[must_use]
    pub fn instances(mut self, instances: u32) -> Self {
        self.config.instances = instances;
        self
    }

    /// Sets the closed-loop connections per instance.
    #[must_use]
    pub fn conns_per_instance(mut self, conns: u32) -> Self {
        self.config.conns_per_instance = conns;
        self
    }

    /// Sets the RX ring entries per IOchannel.
    #[must_use]
    pub fn ring_entries(mut self, entries: u64) -> Self {
        self.config.ring_entries = entries;
        self
    }

    /// Sets the per-ring rNPF budget.
    #[must_use]
    pub fn bm_size(mut self, bm_size: u64) -> Self {
        self.config.bm_size = bm_size;
        self
    }

    /// Sets the backup ring capacity.
    #[must_use]
    pub fn backup_capacity(mut self, capacity: u64) -> Self {
        self.config.backup_capacity = capacity;
        self
    }

    /// Partitions the backup ring with a per-tenant quota.
    #[must_use]
    pub fn backup_quota(mut self, quota: u64) -> Self {
        self.config.backup_quota = Some(quota);
        self
    }

    /// Sets the server's physical memory.
    #[must_use]
    pub fn host_memory(mut self, memory: ByteSize) -> Self {
        self.config.host_memory = memory;
        self
    }

    /// Sets the secondary-storage model.
    #[must_use]
    pub fn disk(mut self, disk: DiskConfig) -> Self {
        self.config.disk = disk;
        self
    }

    /// Sets the per-instance memcached configuration.
    #[must_use]
    pub fn memcached(mut self, memcached: MemcachedConfig) -> Self {
        self.config.memcached = memcached;
        self
    }

    /// Sets the working-set size in keys.
    #[must_use]
    pub fn working_set_keys(mut self, keys: u64) -> Self {
        self.config.working_set_keys = keys;
        self
    }

    /// Caps all instances with a shared cgroup limit.
    #[must_use]
    pub fn cgroup_limit(mut self, limit: ByteSize) -> Self {
        self.config.cgroup_limit = Some(limit);
        self
    }

    /// Sets the link rate.
    #[must_use]
    pub fn bandwidth(mut self, bandwidth: Bandwidth) -> Self {
        self.config.bandwidth = bandwidth;
        self
    }

    /// Sets the interrupt moderation holdoff.
    #[must_use]
    pub fn interrupt_holdoff(mut self, holdoff: SimDuration) -> Self {
        self.config.interrupt_holdoff = holdoff;
        self
    }

    /// Sets the server core count.
    #[must_use]
    pub fn cores(mut self, cores: u32) -> Self {
        self.config.cores = cores;
        self
    }

    /// Pre-faults the receive rings at startup.
    #[must_use]
    pub fn prefault_rings(mut self, prefault: bool) -> Self {
        self.config.prefault_rings = prefault;
        self
    }

    /// Pre-populates each instance's cache with its working set.
    #[must_use]
    pub fn preload(mut self, preload: bool) -> Self {
        self.config.preload = preload;
        self
    }

    /// Sets §3's pre-faulting window (0 disables).
    #[must_use]
    pub fn prefault_window(mut self, window: u64) -> Self {
        self.config.prefault_window = window;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the fabric profile (loss regime, ECN marking). The
    /// Ethernet edge is a point-to-point link, so the PFC switch
    /// thresholds have nothing to arm; loss and ECN apply as on IB.
    #[must_use]
    pub fn profile(mut self, profile: FabricProfile) -> Self {
        self.config.profile = profile;
        self
    }

    /// Sets the fault-injection configuration.
    #[must_use]
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.config.chaos = chaos;
        self
    }

    /// Sets the NPF engine configuration (cost model, concurrency
    /// limits, cross-channel fault arbiter).
    #[must_use]
    pub fn npf(mut self, npf: NpfConfig) -> Self {
        self.config.npf = npf;
        self
    }

    /// Adds an NVM backing tier in front of the swap disk.
    #[must_use]
    pub fn tier(mut self, tier: TierConfig) -> Self {
        self.config.tier = Some(tier);
        self
    }

    /// Skews tenant popularity with a Zipf exponent.
    #[must_use]
    pub fn tenant_skew(mut self, skew: f64) -> Self {
        self.config.tenant_skew = Some(skew);
        self
    }

    /// Gives `instance` the arbiter weight `weight` (applied after
    /// construction; meaningful under
    /// [`ArbiterPolicy::WeightedFair`]).
    #[must_use]
    pub fn tenant_weight(mut self, instance: u32, weight: u32) -> Self {
        self.weights.push((instance, weight));
        self
    }

    /// Validates the scenario without building it.
    ///
    /// # Errors
    ///
    /// Returns the first cross-field constraint the configuration
    /// violates.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        validate_eth(&self.config)?;
        for &(instance, _) in &self.weights {
            if instance >= self.config.instances {
                return Err(ScenarioError::UnknownTenant {
                    instance,
                    instances: self.config.instances,
                });
            }
        }
        Ok(())
    }

    /// Validates and builds the testbed.
    ///
    /// # Errors
    ///
    /// Returns a validation error, or [`ScenarioError::Mem`] when
    /// construction fails in the memory subsystem (pinning under
    /// [`RxMode::Pin`]).
    pub fn build(self) -> Result<EthTestbed, ScenarioError> {
        self.validate()?;
        let mut bed = EthTestbed::build(self.config)?;
        for (instance, weight) in self.weights {
            bed.set_tenant_weight(instance, weight);
        }
        Ok(bed)
    }
}

/// A validated-on-build InfiniBand cluster scenario.
#[derive(Debug, Clone, Copy)]
pub struct IbScenario {
    config: IbConfig,
}

impl IbScenario {
    /// Seeds the scenario from an existing configuration.
    #[must_use]
    pub fn from_config(config: IbConfig) -> Self {
        IbScenario { config }
    }

    /// The configuration as currently set.
    #[must_use]
    pub fn config(&self) -> &IbConfig {
        &self.config
    }

    /// Sets the node count.
    #[must_use]
    pub fn nodes(mut self, nodes: u32) -> Self {
        self.config.nodes = nodes;
        self
    }

    /// Sets the per-node physical memory.
    #[must_use]
    pub fn node_memory(mut self, memory: ByteSize) -> Self {
        self.config.node_memory = memory;
        self
    }

    /// Sets the link rate.
    #[must_use]
    pub fn bandwidth(mut self, bandwidth: Bandwidth) -> Self {
        self.config.bandwidth = bandwidth;
        self
    }

    /// Sets the switch store-and-forward latency.
    #[must_use]
    pub fn switch_latency(mut self, latency: SimDuration) -> Self {
        self.config.switch_latency = latency;
        self
    }

    /// Sets the RC transport tuning.
    #[must_use]
    pub fn rc(mut self, rc: rdmasim::types::RcConfig) -> Self {
        self.config.rc = rc;
        self
    }

    /// Sets the NPF engine configuration.
    #[must_use]
    pub fn npf(mut self, npf: NpfConfig) -> Self {
        self.config.npf = npf;
        self
    }

    /// Sets the secondary-storage model.
    #[must_use]
    pub fn disk(mut self, disk: DiskConfig) -> Self {
        self.config.disk = disk;
        self
    }

    /// Adds an NVM backing tier in front of the swap disk on every
    /// node.
    #[must_use]
    pub fn tier(mut self, tier: TierConfig) -> Self {
        self.config.tier = Some(tier);
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the fault-injection configuration.
    #[must_use]
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.config.chaos = chaos;
        self
    }

    /// Sets the fabric profile (loss regime, PFC, ECN).
    #[must_use]
    pub fn profile(mut self, profile: FabricProfile) -> Self {
        self.config = self.config.with_profile(profile);
        self
    }

    /// Sets the RC transport discipline (go-back-N or IRN-style
    /// selective repeat) and its BDP cap.
    #[must_use]
    pub fn transport(mut self, transport: TransportConfig) -> Self {
        self.config = self.config.with_transport(transport);
        self
    }

    /// Validates the scenario without building it.
    ///
    /// # Errors
    ///
    /// Returns the first cross-field constraint the configuration
    /// violates.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        validate_ib(&self.config)
    }

    /// Validates and builds the cluster.
    ///
    /// # Errors
    ///
    /// Returns the validation error — notably
    /// [`ScenarioError::NoNodes`] for an empty cluster, which
    /// previously panicked inside the fabric.
    pub fn build(self) -> Result<IbCluster, ScenarioError> {
        self.validate()?;
        Ok(IbCluster::build(self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_nodes_is_a_typed_error_not_a_panic() {
        let err = ScenarioBuilder::infiniband().nodes(0).build().err();
        assert_eq!(err, Some(ScenarioError::NoNodes));
    }

    #[test]
    fn transport_validation_matrix() {
        // PFC + loss contradict each other.
        assert_eq!(
            ScenarioBuilder::infiniband()
                .profile(FabricProfile::lossless_pfc().with_loss(0.01))
                .validate()
                .err(),
            Some(ScenarioError::PfcNeedsLossless {
                loss: "0.01".to_string()
            })
        );
        // Selective repeat with a zero BDP cap would never send.
        assert_eq!(
            ScenarioBuilder::infiniband()
                .transport(TransportConfig::irn().with_bdp_packets(0))
                .validate()
                .err(),
            Some(ScenarioError::BdpCapZero)
        );
        // Loss probabilities outside [0, 1) are rejected.
        assert_eq!(
            ScenarioBuilder::infiniband()
                .profile(FabricProfile::default().with_loss(1.5))
                .validate()
                .err(),
            Some(ScenarioError::LossOutOfRange {
                loss: "1.5".to_string()
            })
        );
        // The sensible combinations pass.
        assert!(ScenarioBuilder::infiniband()
            .profile(FabricProfile::lossless_pfc())
            .validate()
            .is_ok());
        assert!(ScenarioBuilder::infiniband()
            .profile(FabricProfile::lossy(0.01))
            .transport(TransportConfig::irn())
            .validate()
            .is_ok());
    }

    #[test]
    fn eth_validation_matrix() {
        let base = || {
            ScenarioBuilder::ethernet()
                .instances(1)
                .conns_per_instance(2)
                .host_memory(ByteSize::mib(256))
                .working_set_keys(100)
        };
        assert_eq!(
            base().instances(0).validate().err(),
            Some(ScenarioError::NoInstances)
        );
        assert_eq!(
            base().conns_per_instance(0).validate().err(),
            Some(ScenarioError::NoConnections)
        );
        assert_eq!(
            base().ring_entries(0).validate().err(),
            Some(ScenarioError::EmptyRing)
        );
        assert_eq!(
            base().ring_entries(256).bm_size(64).validate().err(),
            Some(ScenarioError::BitmapTooSmall {
                bm_size: 64,
                ring_entries: 256
            })
        );
        assert_eq!(
            base().backup_capacity(0).validate().err(),
            Some(ScenarioError::NoBackupCapacity)
        );
        assert_eq!(
            base().mode(RxMode::Drop).backup_quota(8).validate().err(),
            Some(ScenarioError::QuotaWithoutBackup)
        );
        assert_eq!(
            base().backup_quota(0).validate().err(),
            Some(ScenarioError::ZeroQuota)
        );
        assert_eq!(
            base().backup_capacity(64).backup_quota(65).validate().err(),
            Some(ScenarioError::QuotaExceedsBackup {
                quota: 65,
                capacity: 64
            })
        );
        assert!(matches!(
            base().tenant_skew(f64::NAN).validate().err(),
            Some(ScenarioError::InvalidSkew { .. })
        ));
        assert_eq!(
            base()
                .npf(
                    NpfConfig::default()
                        .with_arbiter(ArbiterPolicy::RoundRobin)
                        .with_total_fault_slots(0)
                )
                .validate()
                .err(),
            Some(ScenarioError::ArbiterWithoutSlots)
        );
        assert_eq!(
            base().tenant_weight(3, 2).validate().err(),
            Some(ScenarioError::UnknownTenant {
                instance: 3,
                instances: 1
            })
        );
        assert!(base().validate().is_ok());
    }

    #[test]
    fn backend_validation_matrix() {
        use npf_core::SoftEmuConfig;
        let base = || {
            ScenarioBuilder::ethernet()
                .instances(1)
                .conns_per_instance(2)
                .host_memory(ByteSize::mib(256))
                .working_set_keys(100)
        };
        let softemu = || BackendSelect::SoftEmu(SoftEmuConfig::default());
        // Firmware-only knobs are rejected under the driver-level
        // backends...
        assert_eq!(
            base()
                .npf(
                    NpfConfig::default()
                        .with_backend(softemu())
                        .with_arbiter(ArbiterPolicy::RoundRobin)
                        .with_total_fault_slots(8)
                )
                .validate()
                .err(),
            Some(ScenarioError::ArbiterNeedsFirmware {
                policy: ArbiterPolicy::RoundRobin,
                backend: BackendKind::SoftEmu,
            })
        );
        assert_eq!(
            base()
                .npf(
                    NpfConfig::default()
                        .with_backend(BackendSelect::Pinned)
                        .with_arbiter(ArbiterPolicy::WeightedFair)
                        .with_total_fault_slots(8)
                )
                .validate()
                .err(),
            Some(ScenarioError::ArbiterNeedsFirmware {
                policy: ArbiterPolicy::WeightedFair,
                backend: BackendKind::Pinned,
            })
        );
        assert_eq!(
            base()
                .npf(
                    NpfConfig::default()
                        .with_backend(softemu())
                        .with_firmware_bypass(true)
                )
                .validate()
                .err(),
            Some(ScenarioError::BypassNeedsFirmware {
                backend: BackendKind::SoftEmu,
            })
        );
        assert_eq!(
            base()
                .npf(NpfConfig::default().with_backend(BackendSelect::SoftEmu(
                    SoftEmuConfig::default().with_bounce_buffers(0)
                )))
                .validate()
                .err(),
            Some(ScenarioError::ZeroBounceBuffers)
        );
        // ...while the same knobs stay legal under firmware, and the
        // well-formed non-firmware configurations pass.
        assert!(base()
            .npf(
                NpfConfig::default()
                    .with_arbiter(ArbiterPolicy::RoundRobin)
                    .with_total_fault_slots(8)
                    .with_firmware_bypass(true)
            )
            .validate()
            .is_ok());
        assert!(base()
            .npf(NpfConfig::default().with_backend(softemu()))
            .validate()
            .is_ok());
        assert!(base()
            .npf(NpfConfig::default().with_backend(BackendSelect::Pinned))
            .validate()
            .is_ok());
        // The same checks guard the InfiniBand path.
        assert_eq!(
            ScenarioBuilder::infiniband()
                .npf(
                    NpfConfig::default()
                        .with_backend(softemu())
                        .with_firmware_bypass(true)
                )
                .validate()
                .err(),
            Some(ScenarioError::BypassNeedsFirmware {
                backend: BackendKind::SoftEmu,
            })
        );
    }

    #[test]
    fn pinned_allocations_exceeding_memory_fail_validation() {
        let err = ScenarioBuilder::ethernet()
            .mode(RxMode::Pin)
            .instances(8)
            .host_memory(ByteSize::mib(64))
            .memcached(MemcachedConfig {
                max_bytes: ByteSize::mib(64),
                ..MemcachedConfig::default()
            })
            .validate()
            .err();
        assert!(matches!(
            err,
            Some(ScenarioError::InsufficientMemory { .. })
        ));
        // The identical overcommit is exactly what NPFs make legal.
        assert!(ScenarioBuilder::ethernet()
            .mode(RxMode::Backup)
            .instances(8)
            .host_memory(ByteSize::mib(64))
            .memcached(MemcachedConfig {
                max_bytes: ByteSize::mib(64),
                ..MemcachedConfig::default()
            })
            .validate()
            .is_ok());
    }

    #[test]
    fn builder_and_legacy_new_produce_identical_runs() {
        let config = EthConfig::default()
            .with_instances(2)
            .with_conns_per_instance(2)
            .with_host_memory(ByteSize::mib(256))
            .with_memcached(MemcachedConfig {
                max_bytes: ByteSize::mib(16),
                ..MemcachedConfig::default()
            })
            .with_working_set_keys(200);
        let mut a = EthScenario::from_config(config).build().expect("builder");
        let mut b = EthTestbed::new(config).expect("legacy");
        a.run_until(simcore::SimTime::from_millis(100));
        b.run_until(simcore::SimTime::from_millis(100));
        assert_eq!(a.total_ops(), b.total_ops());
        assert!(a.total_ops() > 0);
    }
}
