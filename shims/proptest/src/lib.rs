//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This shim implements the subset of the proptest API the
//! workspace's property tests use — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `any`, integer-range strategies, tuple strategies,
//! and `collection::vec` — on top of a deterministic embedded RNG.
//!
//! Unlike real proptest there is no shrinking: each case is generated
//! from its own seed (a pure function of the test name and case index),
//! and a failing case panics with that seed. Two environment variables
//! steer a run, mirroring real proptest's knobs:
//!
//! * `PROPTEST_CASES=<n>` overrides every test's case count (crank it
//!   up for a soak run, down for a smoke run).
//! * `PROPTEST_SEED=<seed>` replays exactly one case with the seed a
//!   failure printed, skipping the rest of the stream.

use std::fmt;

/// Deterministic generator: xoshiro256++ seeded from the test name, so a
/// test's inputs are stable across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Run configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion (plays the role of proptest's
/// `TestCaseError`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives one property test: owns the RNG and the case budget.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    name_seed: u64,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner whose input stream is derived from `name`. A
    /// `PROPTEST_CASES` environment variable overrides the config's
    /// case count for the whole test binary.
    #[must_use]
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let name_seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
        });
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(config.cases);
        TestRunner {
            cases,
            name_seed,
            rng: TestRng::new(name_seed),
        }
    }

    /// Number of cases to run. Under a `PROPTEST_SEED` replay this is
    /// one: the stream collapses to the single case being reproduced.
    #[must_use]
    pub fn cases(&self) -> u32 {
        if Self::replay_seed().is_some() {
            1
        } else {
            self.cases
        }
    }

    /// The `PROPTEST_SEED` replay override, if set.
    #[must_use]
    pub fn replay_seed() -> Option<u64> {
        std::env::var("PROPTEST_SEED").ok().and_then(|s| {
            s.parse()
                .map_err(|e| eprintln!("warning: unparsable PROPTEST_SEED {s:?}: {e}"))
                .ok()
        })
    }

    /// The seed case number `case` is generated from: a pure function
    /// of the test name and the index, so a failure message's seed
    /// replays identically on any machine.
    #[must_use]
    pub fn case_seed(&self, case: u32) -> u64 {
        // splitmix64 finalizer over (name, case): decorrelates the
        // per-case streams without any cross-case RNG state.
        let mut z = self
            .name_seed
            .wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Re-seeds the generator for case `case` (or for the
    /// `PROPTEST_SEED` replay, when set) and returns the seed in use —
    /// the value to print if the case fails.
    pub fn begin_case(&mut self, case: u32) -> u64 {
        let seed = Self::replay_seed().unwrap_or_else(|| self.case_seed(case));
        self.rng = TestRng::new(seed);
        seed
    }

    /// The generator for the next case's inputs.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// A value generator. The shim's strategies are plain generators: no
/// shrinking tree, just `generate`.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing any value of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
            self.4.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy, F: Strategy> Strategy
    for (A, B, C, D, E, F)
{
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value, F::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
            self.4.generate(rng),
            self.5.generate(rng),
        )
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from the size
    /// range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose elements come from `element` and whose length
    /// comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError, TestRunner,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {:?} != {:?}",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)*);
    }};
}

/// Declares property tests. Each function body runs once per generated
/// case; arguments are drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; ) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                let seed = runner.begin_case(case);
                $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)*
                let mut one_case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                if let Err(e) = one_case() {
                    panic!(
                        "property failed at case {case} (seed {seed}): {e}\n\
                         replay just this case with PROPTEST_SEED={seed}"
                    );
                }
            }
        }
        $crate::__proptest_body!{ $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_stable_and_distinct() {
        let r1 = TestRunner::new(ProptestConfig::with_cases(4), "some_property");
        let r2 = TestRunner::new(ProptestConfig::with_cases(4), "some_property");
        assert_eq!(r1.case_seed(0), r2.case_seed(0), "pure function of name");
        assert_ne!(r1.case_seed(0), r1.case_seed(1), "cases decorrelated");
        let other = TestRunner::new(ProptestConfig::with_cases(4), "other_property");
        assert_ne!(r1.case_seed(0), other.case_seed(0), "names decorrelated");
    }

    #[test]
    fn begin_case_reseeds_reproducibly() {
        let mut r = TestRunner::new(ProptestConfig::with_cases(4), "reseed");
        r.begin_case(3);
        let first: Vec<u64> = (0..4).map(|_| r.rng().next_u64()).collect();
        r.begin_case(3);
        let second: Vec<u64> = (0..4).map(|_| r.rng().next_u64()).collect();
        assert_eq!(first, second, "a case's stream restarts from its seed");
    }

    // One test owns every environment-variable assertion: the process
    // environment is shared across the parallel test threads, so
    // splitting these up would race.
    #[test]
    fn env_overrides_cases_and_replay_seed() {
        assert_eq!(TestRunner::replay_seed(), None);
        let r = TestRunner::new(ProptestConfig::with_cases(7), "env");
        assert_eq!(r.cases(), 7);

        std::env::set_var("PROPTEST_CASES", "13");
        let r = TestRunner::new(ProptestConfig::with_cases(7), "env");
        assert_eq!(r.cases(), 13, "PROPTEST_CASES wins over the config");
        std::env::remove_var("PROPTEST_CASES");

        std::env::set_var("PROPTEST_SEED", "12345");
        let mut r = TestRunner::new(ProptestConfig::with_cases(7), "env");
        assert_eq!(TestRunner::replay_seed(), Some(12345));
        assert_eq!(r.cases(), 1, "a replay runs exactly one case");
        assert_eq!(r.begin_case(0), 12345, "the replayed seed is the env's");
        std::env::remove_var("PROPTEST_SEED");
    }
}
