//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This shim implements the subset of the proptest API the
//! workspace's property tests use — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `any`, integer-range strategies, tuple strategies,
//! and `collection::vec` — on top of a deterministic embedded RNG.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the case number so it can be replayed (generation is a pure function
//! of the test name and case index).

use std::fmt;

/// Deterministic generator: xoshiro256++ seeded from the test name, so a
/// test's inputs are stable across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Run configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion (plays the role of proptest's
/// `TestCaseError`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives one property test: owns the RNG and the case budget.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner whose input stream is derived from `name`.
    #[must_use]
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
        });
        TestRunner {
            cases: config.cases,
            rng: TestRng::new(seed),
        }
    }

    /// Number of cases to run.
    #[must_use]
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The generator for the next case's inputs.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// A value generator. The shim's strategies are plain generators: no
/// shrinking tree, just `generate`.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing any value of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from the size
    /// range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose elements come from `element` and whose length
    /// comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError, TestRunner,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {:?} != {:?}",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)*);
    }};
}

/// Declares property tests. Each function body runs once per generated
/// case; arguments are drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; ) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)*
                let mut one_case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                if let Err(e) = one_case() {
                    panic!("property failed at case {case}: {e}");
                }
            }
        }
        $crate::__proptest_body!{ $cfg; $($rest)* }
    };
}
