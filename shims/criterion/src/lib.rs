//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This shim keeps the workspace's `benches/` sources
//! unchanged: `criterion_group!`/`criterion_main!`/`Criterion::
//! bench_function`/`Bencher::iter` all exist with the same shapes, backed
//! by a simple calibrated wall-clock loop instead of criterion's
//! statistical machinery.
//!
//! Each benchmark warms up briefly, then runs batches until ~0.5 s of
//! samples accumulate and reports the mean time per iteration.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization
/// barrier.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Passed to the closure given to [`Criterion::bench_function`]; drives
/// the measured loop.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it enough times for a stable estimate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call, then estimate a batch size that
        // keeps timer overhead under control.
        hint::black_box(routine());
        let probe_start = Instant::now();
        hint::black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(5).as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;

        let budget = Duration::from_millis(500);
        let run_start = Instant::now();
        while run_start.elapsed() < budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            self.total += t0.elapsed();
            self.iters += batch;
        }
    }
}

/// The benchmark harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a default harness (used by `criterion_main!`).
    #[must_use]
    pub fn new() -> Self {
        Criterion {}
    }

    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        if b.iters == 0 {
            println!("{name}: no iterations recorded");
        } else {
            let per_iter = b.total.as_nanos() as f64 / b.iters as f64;
            println!("{name}: {} iters, mean {:.1} ns/iter", b.iters, per_iter);
        }
        self
    }
}

/// Declares a group of benchmark functions (same shape as criterion's).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
